"""Provenance analysis of a (simulated) BioAID bioinformatics pipeline.

The scenario follows the paper's introduction: a scientist wants to find data
items whose provenance has a particular *shape*, not merely data that is
connected to some source.  Concretely, over executions of the BioAID-like
workflow we ask questions such as

* "which results were produced through repeated fork iterations?"
  (a Kleene-star query over the fork distributor tag of Fig. 14), and
* "which pairs of steps are linked by a path that goes through sequence
  alignment and then through the result aggregator?" (an IFQ),

and we compare the labeling-based engine against the prior-work baselines on
the same questions.

Run with ``python examples/bioinformatics_pipeline.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import ProvenanceQueryEngine, bioaid_specification
from repro.baselines.g1_parse_tree_joins import g1_all_pairs
from repro.baselines.g3_label_index import g3_all_pairs
from repro.datasets.index import EdgeTagIndex
from repro.datasets.myexperiment import BIOAID_KLEENE_TAG, fork_production_indices
from repro.datasets.runs import generate_fork_heavy_run


def timed(label, function):
    started = time.perf_counter()
    result = function()
    elapsed = time.perf_counter() - started
    print(f"  {label:32s} {len(result):6d} pairs   {elapsed * 1000:8.1f} ms")
    return result


def main() -> None:
    spec = bioaid_specification()
    engine = ProvenanceQueryEngine(spec)
    print("=== the (simulated) BioAID workflow ===")
    print(spec.describe())
    print()

    # A provenance graph where the first fork stage iterated many times —
    # the workload of the paper's Fig. 13g.
    forks = fork_production_indices(spec, BIOAID_KLEENE_TAG)
    run = generate_fork_heavy_run(spec, 1500, forks, seed=42)
    index = EdgeTagIndex.from_run(run)
    print("=== a fork-heavy execution ===")
    print(run.describe())
    print(f"fork iterations (edges tagged {BIOAID_KLEENE_TAG!r}): {index.count(BIOAID_KLEENE_TAG)}")
    print()

    # Question 1: fork-iteration provenance (Kleene star).
    kleene = f"{BIOAID_KLEENE_TAG}*"
    print(f"=== question 1: {kleene!r} — data flowing through repeated forks ===")
    print(f"query is safe for the specification: {engine.is_safe(kleene)}")
    distributors = list(run.nodes_named("f1_fork"))
    workers = list(run.nodes_named("f1_work"))
    scope = distributors + workers
    ours = timed("labels (optRPL, Algorithm 2)", lambda: engine.all_pairs(run, kleene, scope, scope))
    baseline = timed("baseline G1 (join fixpoint)", lambda: g1_all_pairs(run, scope, scope, kleene))
    assert ours == baseline
    chained = [(u, v) for u, v in sorted(ours) if u != v][:5]
    print(f"  sample fork chains: {chained}")
    print()

    # Question 2: an IFQ through the first alignment worker and the final
    # publication step of the top-level pipeline.
    ifq = "_* f1_work _* s_step10 _*"
    print(f"=== question 2: {ifq!r} — alignment followed by publication ===")
    print(f"query is safe for the specification: {engine.is_safe(ifq)}")
    sources = list(run.nodes_named("s_step1"))
    sinks = list(run.nodes_named("s_step10"))
    ours = timed("labels (optRPL)", lambda: engine.evaluate(run, ifq, sources + workers, sinks))
    baseline = timed("baseline G3 (index + labels)", lambda: g3_all_pairs(run, sources + workers, sinks, ifq, index=index))
    assert ours == baseline
    print()

    # Question 3: the introduction's query shape x.(a1|a2)+.s._*.p mapped onto
    # this workflow: start at the pipeline input, repeat fork/work steps, pass
    # through the aggregator, end at the publication step.
    intro = f"s_step2 . ({BIOAID_KLEENE_TAG} | f1_work)+ . f1_join . _* . s_step10"
    print(f"=== question 3: the introduction's query, {intro!r} ===")
    plan = engine.plan(intro)
    print(f"  {plan.describe()}")
    answer = engine.evaluate(run, intro)
    print(f"  matching (source, publication) pairs: {len(answer)}")


if __name__ == "__main__":
    main()
