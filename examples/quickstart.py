"""Quickstart: the paper's running example, end to end.

This script builds the specification of Fig. 2a, derives the run of Fig. 2b,
and walks through the paper's worked examples:

* reachability and regular path labels,
* safe vs. unsafe queries (R3 = ``_* e _*`` vs R4 = ``e``),
* pairwise queries answered from labels alone (Algorithm 1),
* all-pairs queries (Algorithm 2) including Example 3.1,
* a general (unsafe) query answered through decomposition.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import ProvenanceQueryEngine, paper_specification
from repro.datasets.paper_example import paper_run
from repro.labeling.labels import format_label


def main() -> None:
    spec = paper_specification()
    print("=== specification (Fig. 2a) ===")
    print(spec.describe())
    print()

    run = paper_run(recursion_depth=2)
    print("=== run (Fig. 2b) ===")
    print(run.describe())
    for node in sorted(run.node_ids()):
        print(f"  {node:6s}  label = {format_label(run.label_of(node)) or '(root)'}")
    print()

    engine = ProvenanceQueryEngine(spec)

    print("=== safety (Section III-C) ===")
    for query in ("_* e _*", "e", "_* a _*", "A+", "_*"):
        verdict = "safe" if engine.is_safe(query) else "NOT safe"
        print(f"  {query:12s} -> {verdict}")
    print()

    print("=== pairwise queries from labels (Algorithm 1) ===")
    for source, target, query in (
        ("c:1", "b:1", "_* e _*"),
        ("c:1", "b:3", "_* e _*"),
        ("d:2", "b:1", "A+"),
        ("d:2", "b:1", "A"),
    ):
        answer = engine.pairwise(run, source, target, query)
        print(f"  {source} -[{query}]-> {target} : {answer}")
    print()

    print("=== all-pairs queries (Algorithm 2, Example 3.1) ===")
    l1 = ["d:1", "d:2", "e:2"]
    l2 = ["b:1", "b:2"]
    print(f"  l1 = {l1}")
    print(f"  l2 = {l2}")
    print(f"  A+ : {sorted(engine.all_pairs(run, 'A+', l1, l2))}")
    print(f"  A  : {sorted(engine.all_pairs(run, 'A', l1, l2))}")
    print()

    print("=== a general (unsafe) query via decomposition ===")
    plan = engine.plan("_* a _*")
    print(f"  {plan.describe()}")
    answer = engine.evaluate(run, "_* a _*", ["c:1"], list(run.node_ids()))
    print(f"  nodes receiving data that passed through an 'a' edge from c:1:")
    print(f"  {sorted(target for _, target in answer)}")


if __name__ == "__main__":
    main()
