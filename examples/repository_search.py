"""Searching a repository of workflow executions by behaviour.

The paper motivates regular path queries with the need "to find workflows
that exhibit certain types of behaviors within shared repositories of
workflows and their executions".  This example builds a small repository of
heterogeneous specifications (the two simulated myExperiment workflows plus
synthetic ones), derives several executions of each, and then answers a
behavioural search across the whole repository:

    "find executions containing a step that was reached through at least two
     consecutive loop iterations"

using per-specification engines, the cost model to pick a strategy per
execution, and query-safety to explain *why* some specifications can answer
from labels alone.

Run with ``python examples/repository_search.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import (
    ProvenanceQueryEngine,
    bioaid_specification,
    generate_synthetic_specification,
    qblast_specification,
)
from repro.core.optimizer import CostModel
from repro.datasets.index import EdgeTagIndex
from repro.datasets.myexperiment import (
    BIOAID_KLEENE_TAG,
    QBLAST_KLEENE_TAG,
    fork_production_indices,
)
from repro.datasets.runs import generate_fork_heavy_run, generate_run


def build_repository():
    """A small repository: specification -> list of runs (+ the loop tag)."""
    repository = []

    bioaid = bioaid_specification()
    forks = fork_production_indices(bioaid, BIOAID_KLEENE_TAG)
    repository.append(
        (
            bioaid,
            BIOAID_KLEENE_TAG,
            [
                generate_fork_heavy_run(bioaid, 400, forks, seed=seed)
                for seed in range(3)
            ],
        )
    )

    qblast = qblast_specification()
    loops = fork_production_indices(qblast, QBLAST_KLEENE_TAG)
    repository.append(
        (
            qblast,
            QBLAST_KLEENE_TAG,
            [
                generate_fork_heavy_run(qblast, 400, loops, seed=seed)
                for seed in range(3)
            ],
        )
    )

    synthetic = generate_synthetic_specification(250, seed=5)
    repository.append(
        (
            synthetic,
            "op1",
            [generate_run(synthetic, 300, seed=seed) for seed in range(2)],
        )
    )
    return repository


def main() -> None:
    repository = build_repository()
    print(f"repository: {sum(len(runs) for _, _, runs in repository)} executions "
          f"of {len(repository)} specifications\n")

    hits = []
    for spec, loop_tag, runs in repository:
        engine = ProvenanceQueryEngine(spec)
        # "at least two consecutive loop iterations"
        query = f"{loop_tag} {loop_tag} {loop_tag}*"
        safe = engine.is_safe(query)
        print(f"--- {spec.name} ---")
        print(f"behavioural query: {query!r}  (safe: {safe})")
        for run in runs:
            index = EdgeTagIndex.from_run(run)
            model = CostModel(spec, index)
            choice = model.choose(
                query, input_pairs=run.node_count**2, run_edges=run.edge_count
            )
            # Scope the behavioural search to the nodes adjacent to loop edges
            # (everything else cannot start or end a loop chain anyway).
            loop_nodes = sorted(
                {node for pair in index.pairs(loop_tag) for node in pair}
            ) or list(run.node_ids())[:80]
            matches = engine.evaluate(run, query, loop_nodes, loop_nodes)
            verdict = "HIT " if matches else "miss"
            hits.extend([(spec.name, run.seed)] if matches else [])
            print(
                f"  run(seed={run.seed}, edges={run.edge_count}): {verdict} "
                f"{len(matches):5d} pairs  [strategy suggested: {choice.strategy}]"
            )
        print()

    print("executions exhibiting the behaviour:")
    for name, seed in hits:
        print(f"  - {name} (seed {seed})")


if __name__ == "__main__":
    main()
