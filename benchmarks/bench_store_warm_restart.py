"""Store warm restarts — cold-start vs warm-start first-query latency.

The persistent store's claim: a restarted ``QueryService(store_dir=...)``
pays JSON reconstruction instead of the per-query overhead of Fig. 13a/b
(minimal DFA + safety fixpoint + transition-matrix sweep) for every
previously-seen query.  Two configurations answer the same first-contact
batch of pairwise queries from a fresh service instance:

* ``cold-restart`` — no store: every query rebuilds its index/plan;
* ``warm-restart`` — a store pre-built by a previous service instance: the
  run registry and all per-query artifacts load from disk, zero rebuilds.

Pairwise requests keep the per-pair decode negligible, so the measured time
is dominated by exactly the work the store elides.  ``test_speedup_…``
additionally asserts the ≥4.5x acceptance bound and that the warm service
rebuilt nothing; CI captures this file's timings as
``BENCH_store_warm_restart.json``.
"""

import time

import pytest

from repro.service import QueryService

# First-contact queries in the Fig. 13b overhead regime (multi-state DFAs):
# the per-query build cost the store elides grows with DFA size, while the
# store's JSON reconstruction is bound by the grammar's table sizes.
QUERIES = [
    "_* B1 _* B2 _* B3 _* B4 _* B5 _*",
    "_* q_prep _* B1 _* B2 _* B3 _* B4 _*",
    "(_* B1 _* q_prep _* B2 _*) | (_* B3 _* B4 _* B5 _*)",
    "(B1 | q_prep)+ . _* . (B2 | B3)+ . _* . (B4 | B5)+",
    "_* B5 _* B4 _* B3 _* B2 _* B1 _*",
    "(_* q_prep _* B5 _*) | (_* B1 _* B2 _* B3 _* B4 _*)",
]
# Store format 2 deflates every artifact (5-10x smaller entries); the warm
# path pays the decompression back, ~10% of its latency, so the asserted
# floor sits a notch under the ~5.5-6x now measured.
MIN_SPEEDUP = 4.5


@pytest.fixture(scope="module")
def first_contact_batch(qblast_run):
    nodes = qblast_run.node_ids()
    return [
        {
            "op": "pairwise",
            "run": "qblast",
            "query": query,
            "source": nodes[position],
            "target": nodes[-1 - position],
        }
        for position, query in enumerate(QUERIES)
    ]


@pytest.fixture(scope="module")
def run_file(tmp_path_factory, qblast_run):
    from repro.workflow.serialization import save_run

    path = tmp_path_factory.mktemp("runs") / "qblast.json"
    save_run(qblast_run, path)
    return path


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory, qblast_run):
    """A store pre-built by a 'previous instance' of the service."""
    path = tmp_path_factory.mktemp("warm") / "store"
    service = QueryService(store_dir=path)
    service.register_run(qblast_run, "qblast")
    statuses = service.warm("qblast", QUERIES)
    assert all(not status.startswith("error") for status in statuses.values())
    return path


def _cold_start(run_file, batch):
    service = QueryService()
    service.load_run_file(run_file, run_id="qblast")
    return service, service.run_batch(batch)


def _warm_start(store_dir, batch):
    service = QueryService(store_dir=store_dir)  # run registry loads from disk
    return service, service.run_batch(batch)


def test_cold_restart(benchmark, run_file, first_contact_batch):
    """Fresh process, no store: first queries pay the full per-query cost."""
    benchmark.group = "store warm restart (first %d queries)" % len(QUERIES)
    benchmark.extra_info["requests"] = len(QUERIES)
    _, results = benchmark(lambda: _cold_start(run_file, first_contact_batch))
    assert all(result.ok for result in results)


def test_warm_restart(benchmark, store_dir, first_contact_batch):
    """Fresh process, pre-built store: first queries are store hits only."""
    benchmark.group = "store warm restart (first %d queries)" % len(QUERIES)
    benchmark.extra_info["requests"] = len(QUERIES)
    _, results = benchmark(lambda: _warm_start(store_dir, first_contact_batch))
    assert all(result.ok for result in results)


def test_speedup_and_zero_rebuilds(run_file, store_dir, first_contact_batch):
    """The acceptance bound: ≥5x cold-vs-warm first-query latency, with the
    warm service rebuilding nothing and answering identically."""

    def best_of(repeats, action):
        elapsed, outcome = [], None
        for _ in range(repeats):
            start = time.perf_counter()
            outcome = action()
            elapsed.append(time.perf_counter() - start)
        return min(elapsed), outcome

    cold_time, (_, cold_results) = best_of(
        3, lambda: _cold_start(run_file, first_contact_batch)
    )
    warm_time, (warm_service, warm_results) = best_of(
        3, lambda: _warm_start(store_dir, first_contact_batch)
    )

    stats = warm_service.cache_stats
    assert stats.index_builds == 0
    assert stats.safety_checks == 0
    assert stats.plan_builds == 0
    assert stats.store_hits > 0
    assert [(r.request_id, r.ok, r.answer) for r in warm_results] == [
        (r.request_id, r.ok, r.answer) for r in cold_results
    ]
    speedup = cold_time / warm_time
    print(
        f"\nstore warm restart: cold {cold_time * 1000:.1f} ms, "
        f"warm {warm_time * 1000:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm restart only {speedup:.1f}x faster than cold ({cold_time:.4f}s vs "
        f"{warm_time:.4f}s); expected >= {MIN_SPEEDUP}x"
    )
