"""Fig. 13g — all-pairs Kleene star (a*) on fork-heavy BioAID runs.

Baseline G1 evaluates the star with a join fixpoint over the run; RPL and
optRPL use the labeling engine.  The gap should widen as the run grows.
"""

import pytest

from repro.baselines.g1_parse_tree_joins import g1_all_pairs
from repro.core.allpairs import AllPairsOptions, all_pairs_safe_query
from repro.core.query_index import build_query_index
from repro.datasets.myexperiment import BIOAID_KLEENE_TAG, fork_production_indices
from repro.datasets.runs import generate_fork_heavy_run, node_lists

RUN_SIZES = [300, 600, 1200]
QUERY = f"{BIOAID_KLEENE_TAG}*"


def _workload(spec, run_edges):
    forks = fork_production_indices(spec, BIOAID_KLEENE_TAG)
    run = generate_fork_heavy_run(spec, run_edges, forks, seed=run_edges)
    l1, l2 = node_lists(run, limit=150, seed=run_edges)
    return run, l1, l2


@pytest.mark.parametrize("run_edges", RUN_SIZES)
def test_baseline_g1(benchmark, bioaid_spec, run_edges):
    run, l1, l2 = _workload(bioaid_spec, run_edges)
    benchmark.group = f"fig13g kleene star (run={run_edges})"
    benchmark(lambda: g1_all_pairs(run, l1, l2, QUERY))


@pytest.mark.parametrize("run_edges", RUN_SIZES)
@pytest.mark.parametrize("engine", ["rpl", "optrpl"])
def test_labeling_engines(benchmark, bioaid_spec, run_edges, engine):
    run, l1, l2 = _workload(bioaid_spec, run_edges)
    index = build_query_index(bioaid_spec, QUERY)
    options = AllPairsOptions(use_reachability_filter=(engine == "optrpl"))
    benchmark.group = f"fig13g kleene star (run={run_edges})"
    benchmark(lambda: all_pairs_safe_query(run, l1, l2, index, options))
