"""Path bootstrap for the benchmark shims.

The files in this directory are thin pytest pointers into the declarative
scenario catalog (:mod:`repro.bench.catalog`); each one runs its catalog
entries at smoke scale so ``pytest benchmarks/`` exercises every ported
workload without timing anything.  Timed runs and regression gating live in
``repro bench run`` / ``repro bench gate``.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
