"""Shared fixtures for the pytest-benchmark suite.

The benchmark files mirror the harness experiments (one file per paper
figure) but run at a reduced, fixed size so the whole suite finishes in a few
minutes of pure-Python time.  The figure-shaped tables — the actual
reproduction artifacts — are produced by ``python -m repro.bench``; these
pytest benchmarks exist for regression tracking of the individual code paths.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datasets.index import EdgeTagIndex  # noqa: E402
from repro.datasets.myexperiment import (  # noqa: E402
    BIOAID_KLEENE_TAG,
    bioaid_specification,
    fork_production_indices,
    qblast_specification,
)
from repro.datasets.runs import generate_fork_heavy_run, generate_run, node_lists  # noqa: E402


@pytest.fixture(scope="session")
def bioaid_spec():
    return bioaid_specification()


@pytest.fixture(scope="session")
def qblast_spec():
    return qblast_specification()


@pytest.fixture(scope="session")
def bioaid_run(bioaid_spec):
    """A medium BioAID run shared by the benchmark files."""
    return generate_run(bioaid_spec, 600, seed=1)


@pytest.fixture(scope="session")
def bioaid_index(bioaid_run):
    return EdgeTagIndex.from_run(bioaid_run)


@pytest.fixture(scope="session")
def bioaid_lists(bioaid_run):
    return node_lists(bioaid_run, limit=150, seed=2)


@pytest.fixture(scope="session")
def qblast_run(qblast_spec):
    return generate_run(qblast_spec, 600, seed=1)


@pytest.fixture(scope="session")
def qblast_index(qblast_run):
    return EdgeTagIndex.from_run(qblast_run)


@pytest.fixture(scope="session")
def qblast_lists(qblast_run):
    return node_lists(qblast_run, limit=150, seed=2)


@pytest.fixture(scope="session")
def bioaid_fork_run(bioaid_spec):
    forks = fork_production_indices(bioaid_spec, BIOAID_KLEENE_TAG)
    return generate_fork_heavy_run(bioaid_spec, 800, forks, seed=3)
