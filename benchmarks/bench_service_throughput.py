"""Service throughput — batched queries/sec with cold vs warm index cache.

The service's claim is architectural rather than a paper figure: once the
per-query index work is shared across a batch (and across batches, for a
long-lived service), throughput is governed by the constant-time per-pair
decode instead of by index rebuilding.  Three configurations are measured
over the same mixed pairwise/reachability batch:

* ``bare-engines``  — a fresh :class:`ProvenanceQueryEngine` per request,
  the pre-service behaviour where every request pays the index build;
* ``service-cold``  — a fresh :class:`QueryService` per round (first-contact
  cost: the batch itself deduplicates builds);
* ``service-warm``  — one long-lived service, cache already hot (steady
  state of a serving deployment).

``extra_info["requests"]`` holds the batch size, so queries/sec is
``requests / mean``.
"""

import itertools

import pytest

from repro.core.engine import ProvenanceQueryEngine
from repro.service import QueryRequest, QueryService

QUERIES = ["_* B1 _*", "_* q_prep _*", "(_* B1 _*) | (_* q_prep _*)"]
BATCH_SIZE = 120


def _batch(run_id, run):
    """A mixed batch cycling through a few distinct (and safe) queries."""
    nodes = run.node_ids()
    sources = nodes[: BATCH_SIZE // 4]
    targets = nodes[-(BATCH_SIZE // 4):]
    queries = itertools.cycle(QUERIES)
    requests = []
    for position in range(BATCH_SIZE):
        source = sources[position % len(sources)]
        target = targets[position % len(targets)]
        if position % 4 == 3:
            requests.append(
                QueryRequest(op="reachability", run=run_id, source=source, target=target)
            )
        else:
            requests.append(
                QueryRequest(
                    op="pairwise",
                    run=run_id,
                    query=next(queries),
                    source=source,
                    target=target,
                )
            )
    return requests


@pytest.fixture(scope="module")
def qblast_batch(qblast_run):
    return _batch("qblast", qblast_run)


def test_bare_engines(benchmark, qblast_run, qblast_batch):
    """Pre-service baseline: every pairwise request rebuilds its index."""

    def evaluate():
        answers = []
        for request in qblast_batch:
            engine = ProvenanceQueryEngine(qblast_run.spec)
            if request.op == "reachability":
                answers.append(
                    engine.reachable(qblast_run, request.source, request.target)
                )
            else:
                answers.append(
                    engine.pairwise(
                        qblast_run, request.source, request.target, request.query
                    )
                )
        return answers

    benchmark.group = "service throughput (batch of %d)" % BATCH_SIZE
    benchmark.extra_info["requests"] = BATCH_SIZE
    benchmark(evaluate)


def test_service_cold(benchmark, qblast_run, qblast_batch):
    """Fresh service per round: batch-level dedup but an empty cache."""

    def evaluate():
        service = QueryService(max_workers=4)
        service.register_run(qblast_run, "qblast")
        return service.run_batch(qblast_batch)

    benchmark.group = "service throughput (batch of %d)" % BATCH_SIZE
    benchmark.extra_info["requests"] = BATCH_SIZE
    benchmark(evaluate)


def test_service_warm(benchmark, qblast_run, qblast_batch):
    """Long-lived service: the steady state where the cache is already hot."""
    service = QueryService(max_workers=4)
    service.register_run(qblast_run, "qblast")
    service.run_batch(qblast_batch)  # warm the cache

    benchmark.group = "service throughput (batch of %d)" % BATCH_SIZE
    benchmark.extra_info["requests"] = BATCH_SIZE
    results = benchmark(lambda: service.run_batch(qblast_batch))
    assert all(result.ok for result in results)
