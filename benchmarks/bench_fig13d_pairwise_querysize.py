"""Fig. 13d — pairwise IFQ time versus query size k (RPL vs G3 vs G2)."""

import random

import pytest

from repro.baselines.g2_rare_labels import g2_pairwise_batch
from repro.baselines.g3_label_index import g3_pairwise_batch
from repro.core.pairwise import answer_pairwise_query
from repro.bench.experiments import _safe_path_ifq
from repro.core.query_index import build_query_index

QUERY_SIZES = [0, 3, 6, 10]
PAIRS = 300


def _pairs(run, count, seed=5):
    rng = random.Random(seed)
    nodes = list(run.node_ids())
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(count)]


@pytest.mark.parametrize("k", QUERY_SIZES)
def test_rpl_pairwise(benchmark, bioaid_spec, bioaid_run, bioaid_index, k):
    query = _safe_path_ifq(bioaid_run, k, bioaid_index, base_seed=11 + k)
    query_index = build_query_index(bioaid_spec, query)
    labels = [
        (bioaid_run.label_of(u), bioaid_run.label_of(v))
        for u, v in _pairs(bioaid_run, PAIRS)
    ]
    benchmark.group = f"fig13d pairwise (k={k})"
    benchmark(lambda: [answer_pairwise_query(query_index, lu, lv) for lu, lv in labels])


@pytest.mark.parametrize("k", QUERY_SIZES)
def test_g3_pairwise(benchmark, bioaid_run, bioaid_index, k):
    query = _safe_path_ifq(bioaid_run, k, bioaid_index, base_seed=11 + k)
    pairs = _pairs(bioaid_run, PAIRS)
    benchmark.group = f"fig13d pairwise (k={k})"
    benchmark(lambda: g3_pairwise_batch(bioaid_run, pairs, query, index=bioaid_index))


@pytest.mark.parametrize("k", QUERY_SIZES)
def test_g2_pairwise(benchmark, bioaid_run, bioaid_index, k):
    query = _safe_path_ifq(bioaid_run, k, bioaid_index, base_seed=11 + k)
    pairs = _pairs(bioaid_run, PAIRS)
    benchmark.group = f"fig13d pairwise (k={k})"
    benchmark(lambda: g2_pairwise_batch(bioaid_run, pairs, query, index=bioaid_index))
