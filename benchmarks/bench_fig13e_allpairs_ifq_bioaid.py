"""Fig. 13e — all-pairs IFQs on BioAID (baseline G3 vs RPL vs optRPL).

Two selectivity regimes are benchmarked: a highly selective IFQ (rare tags,
few matches — the baseline's best case) and a lowly selective IFQ (frequent
tags, many matches — where intermediate results blow up for the baseline).
"""

import pytest

from repro.baselines.g3_label_index import g3_all_pairs
from repro.core.allpairs import AllPairsOptions, all_pairs_safe_query
from repro.core.decomposition import evaluate_general_query, plan_decomposition
from repro.core.query_index import build_query_index
from repro.datasets.queries import generate_ifq_along_path

SELECTIVITIES = ["high", "low"]


def _query(run, index, selectivity):
    prefer = "rare" if selectivity == "high" else "frequent"
    return generate_ifq_along_path(run, 3, seed=2, prefer=prefer, index=index)


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_baseline_g3(benchmark, bioaid_run, bioaid_index, bioaid_lists, selectivity):
    l1, l2 = bioaid_lists
    query = _query(bioaid_run, bioaid_index, selectivity)
    benchmark.group = f"fig13e all-pairs IFQ ({selectivity} selectivity)"
    benchmark(lambda: g3_all_pairs(bioaid_run, l1, l2, query, index=bioaid_index))


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("engine", ["rpl", "optrpl"])
def test_labeling_engines(benchmark, bioaid_run, bioaid_index, bioaid_lists, selectivity, engine):
    l1, l2 = bioaid_lists
    query = _query(bioaid_run, bioaid_index, selectivity)
    use_filter = engine == "optrpl"
    plan = plan_decomposition(bioaid_run.spec, query)
    benchmark.group = f"fig13e all-pairs IFQ ({selectivity} selectivity)"
    if plan.is_fully_safe:
        index = build_query_index(bioaid_run.spec, query)
        options = AllPairsOptions(use_reachability_filter=use_filter)
        benchmark(lambda: all_pairs_safe_query(bioaid_run, l1, l2, index, options))
    else:
        benchmark(
            lambda: evaluate_general_query(
                bioaid_run, query, l1, l2, use_reachability_filter=use_filter
            )
        )
