"""Direction-aware and parallel frontier execution — the executor-layer PR.

Two claims of the planner/executor split are tracked (and asserted) here, on
one QBLast run large enough that frontier searches dominate:

* **direction**: on a small-``l2``/large-``l1`` workload (every node as a
  source, three high-fan-in targets), the backward executor — product
  searches from the targets over the *reversed* macro DFA — beats the
  forward sweep, and ``direction=auto`` actually picks it;
* **parallelism**: the per-seed searches are embarrassingly parallel, so the
  process-pool executor at 4 workers returns the identical pair set at
  ≥ 2x the serial wall-clock (asserted only where ≥ 4 CPUs exist; the
  thread/process merge correctness is asserted everywhere).

CI captures this file's timings as ``BENCH_direction_parallel.json``.
"""

import os
import time

import pytest

from repro.core.decomposition import evaluate_general_query, plan_decomposition
from repro.core.exec import ExecutorConfig, build_physical_plan
from repro.core.query_index import build_query_index
from repro.core.relations import backward_closure_nodes
from repro.datasets.runs import generate_run

#: ``_* qx_b _*`` is unsafe for the QBLast grammar and mentions a frequent
#: tag, so the product search stays alive across the whole run (a rare-tag
#: query would die at the first transition and measure nothing).
QUERY = "_* qx_b _*"
RUN_EDGES = 12_000
MIN_PARALLEL_SPEEDUP = 2.0
PARALLEL_WORKERS = 4


@pytest.fixture(scope="module")
def big_run(qblast_spec):
    return generate_run(qblast_spec, RUN_EDGES, seed=5)


@pytest.fixture(scope="module")
def plan(qblast_spec):
    return plan_decomposition(qblast_spec, QUERY)


@pytest.fixture(scope="module")
def workload(big_run):
    """Large ``l1`` (every node), small ``l2`` (the three targets with the
    biggest backward closures, so the pruned universe stays run-sized and
    the forward sweep has real work to lose)."""
    nodes = list(big_run.node_ids())
    targets = sorted(
        nodes, key=lambda node: len(backward_closure_nodes(big_run, [node])), reverse=True
    )[:3]
    return nodes, targets


def _evaluate(run, plan, l1, l2, **kwargs):
    return evaluate_general_query(
        run, QUERY, l1, l2, plan=plan, strategy="frontier", **kwargs
    )


@pytest.fixture(scope="module", autouse=True)
def warm_dfas(big_run, plan, workload):
    """Memoize forward + reversed macro DFAs so the benchmarks time pure
    execution, not planning."""
    l1, l2 = workload
    _evaluate(big_run, plan, l1[:1], l2, direction="forward")
    _evaluate(big_run, plan, l1[:1], l2, direction="backward")


def test_forward_direction(benchmark, big_run, plan, workload):
    l1, l2 = workload
    benchmark.group = "direction (small l2, large l1)"
    result = benchmark(lambda: _evaluate(big_run, plan, l1, l2, direction="forward"))
    assert result


def test_backward_direction(benchmark, big_run, plan, workload):
    l1, l2 = workload
    benchmark.group = "direction (small l2, large l1)"
    result = benchmark(lambda: _evaluate(big_run, plan, l1, l2, direction="backward"))
    assert result


def test_serial_frontier(benchmark, big_run, plan, workload):
    l1, l2 = workload
    benchmark.group = f"parallel frontier ({PARALLEL_WORKERS} workers)"
    benchmark(lambda: _evaluate(big_run, plan, l1, l2, direction="forward"))


def test_parallel_frontier(benchmark, big_run, plan, workload):
    l1, l2 = workload
    config = ExecutorConfig(workers=PARALLEL_WORKERS)
    benchmark.group = f"parallel frontier ({PARALLEL_WORKERS} workers)"
    benchmark(
        lambda: _evaluate(big_run, plan, l1, l2, direction="forward", executor=config)
    )


def _best_of(repeats, action):
    elapsed, outcome = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = action()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed), outcome


def test_direction_acceptance(big_run, plan, workload):
    """Backward beats forward on the small-``l2`` workload, ``auto`` picks
    backward, and all directions agree pairwise."""
    l1, l2 = workload
    forward_time, forward = _best_of(
        2, lambda: _evaluate(big_run, plan, l1, l2, direction="forward")
    )
    backward_time, backward = _best_of(
        2, lambda: _evaluate(big_run, plan, l1, l2, direction="backward")
    )
    auto = evaluate_general_query(big_run, QUERY, l1, l2, plan=plan)
    assert forward == backward == auto
    physical = build_physical_plan(
        big_run, plan, l1, l2,
        indexes=lambda node: build_query_index(big_run.spec, node),
    )
    assert physical.strategy == "frontier"
    assert physical.direction == "backward"
    print(
        f"\ndirection: forward {forward_time * 1000:.0f} ms, "
        f"backward {backward_time * 1000:.0f} ms "
        f"({forward_time / backward_time:.1f}x), auto picks backward"
    )
    assert backward_time < forward_time, (
        f"backward ({backward_time:.3f}s) should beat forward ({forward_time:.3f}s) "
        f"when |l2|=3 and |l1|={len(l1)}"
    )


def test_parallel_acceptance(big_run, plan, workload):
    """The parallel executor returns the identical pair set at ≥ 2x the
    serial wall-clock with 4 workers (skipped below 4 CPUs, where the
    hardware cannot express the speedup; equality is asserted regardless)."""
    l1, l2 = workload
    serial_time, serial = _best_of(
        2, lambda: _evaluate(big_run, plan, l1, l2, direction="forward")
    )
    config = ExecutorConfig(workers=PARALLEL_WORKERS)
    parallel_time, parallel = _best_of(
        2,
        lambda: _evaluate(
            big_run, plan, l1, l2, direction="forward", executor=config
        ),
    )
    assert parallel == serial  # identical results, always
    cpus = os.cpu_count() or 1
    speedup = serial_time / parallel_time
    print(
        f"\nparallel: serial {serial_time:.2f} s, "
        f"{PARALLEL_WORKERS} workers {parallel_time:.2f} s "
        f"({speedup:.1f}x on {cpus} CPUs)"
    )
    if cpus < PARALLEL_WORKERS:
        pytest.skip(f"only {cpus} CPUs: cannot express a {PARALLEL_WORKERS}-worker speedup")
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"parallel frontier only {speedup:.2f}x faster than serial "
        f"({serial_time:.3f}s vs {parallel_time:.3f}s); expected >= {MIN_PARALLEL_SPEEDUP}x "
        f"at {PARALLEL_WORKERS} workers"
    )
