"""Direction-aware and parallel frontier execution — ported to the scenario catalog.

The workload formerly hand-rolled here is now the declarative catalog
entries ``frontier-forward``, ``frontier-backward``, ``frontier-serial``, ``frontier-parallel-4w`` in :mod:`repro.bench.catalog`.  Timing and
regression gating moved to ``repro bench run`` / ``repro bench gate``
(see ``benchmarks/trajectory/``); the test below only exercises the
catalog entries at smoke scale so ``pytest benchmarks/`` keeps
covering the same code paths.
"""

from repro.bench.shim import scenario_smoke_tests

test_smoke = scenario_smoke_tests(
    "frontier-forward",
    "frontier-backward",
    "frontier-serial",
    "frontier-parallel-4w",
)
