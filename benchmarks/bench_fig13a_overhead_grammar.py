"""Fig. 13a — safety-check overhead as the grammar grows.

The benchmarked operation is the full query-time overhead of the labeling
approach (minimal DFA + safety check + query-index construction) for IFQs of
size k=3 over synthetic workflows of increasing size.
"""

import pytest

from repro.core.query_index import build_query_index
from repro.core.safety import analyze_safety, query_dfa
from repro.datasets.queries import generate_ifq
from repro.datasets.synthetic import generate_synthetic_specification


@pytest.mark.parametrize("grammar_size", [200, 400, 800])
def test_overhead_vs_grammar_size(benchmark, grammar_size):
    spec = generate_synthetic_specification(grammar_size, seed=0)
    query = generate_ifq(spec, 3, seed=1)

    def overhead():
        report = analyze_safety(spec, query_dfa(spec, query))
        if report.is_safe:
            build_query_index(spec, query)
        return report.is_safe

    benchmark.group = "fig13a overhead vs grammar size"
    benchmark(overhead)
