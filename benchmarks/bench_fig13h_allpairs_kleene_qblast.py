"""All-pairs Kleene star on loop-heavy QBLast runs (Fig. 13h) — ported to the scenario catalog.

The workload formerly hand-rolled here is now the declarative catalog
entry ``fig13h-kleene-qblast`` in :mod:`repro.bench.catalog`.  Timing and
regression gating moved to ``repro bench run`` / ``repro bench gate``
(see ``benchmarks/trajectory/``); the test below only exercises the
catalog entry at smoke scale so ``pytest benchmarks/`` keeps
covering the same code paths.
"""

from repro.bench.shim import scenario_smoke_tests

test_smoke = scenario_smoke_tests(
    "fig13h-kleene-qblast",
)
