"""Fig. 15 — general (unsafe) queries: decomposition vs the G1 baseline.

For a fixed set of unsafe queries over BioAID and QBLast runs, benchmark the
join-only baseline (G1) against the safe-subtree decomposition (our
approach).  The improvement percentages of the paper's Fig. 15 are produced
by ``python -m repro.bench fig15a fig15b``.

The ``restricted`` group tracks the restriction-pushdown engine: the same
unsafe queries asked for small (5×5) node lists, once with the pre-pushdown
evaluate-the-whole-run-then-restrict behaviour and once with the pushdown
evaluator, whose work is bounded by the nodes reachable from the requested
sources.  CI captures this file's timings as ``BENCH_general_queries.json``.
"""

import pytest

from repro.baselines.g1_parse_tree_joins import g1_all_pairs
from repro.core.decomposition import evaluate_general_query, plan_decomposition
from repro.datasets.queries import generate_query_suite
from repro.datasets.runs import node_lists


def _unsafe_queries(spec, count=3):
    queries = []
    seed = 0
    while len(queries) < count and seed < 200:
        query = generate_query_suite(spec, count=1, seed=seed, depth=2)[0]
        seed += 1
        plan = plan_decomposition(spec, query)
        if not plan.is_fully_safe and plan.has_safe_parts:
            queries.append(query)
    return queries


def _workload(run):
    return node_lists(run, limit=120, seed=4)


@pytest.mark.parametrize("workflow", ["bioaid", "qblast"])
@pytest.mark.parametrize("query_id", [0, 1, 2])
def test_baseline_g1(benchmark, workflow, query_id, bioaid_run, qblast_run):
    run = bioaid_run if workflow == "bioaid" else qblast_run
    queries = _unsafe_queries(run.spec)
    if query_id >= len(queries):
        pytest.skip("not enough unsafe queries generated")
    l1, l2 = _workload(run)
    benchmark.group = f"fig15 general queries ({workflow}, q{query_id})"
    benchmark(lambda: g1_all_pairs(run, l1, l2, queries[query_id]))


@pytest.mark.parametrize("workflow", ["bioaid", "qblast"])
@pytest.mark.parametrize("query_id", [0, 1, 2])
def test_decomposition(benchmark, workflow, query_id, bioaid_run, qblast_run):
    run = bioaid_run if workflow == "bioaid" else qblast_run
    queries = _unsafe_queries(run.spec)
    if query_id >= len(queries):
        pytest.skip("not enough unsafe queries generated")
    l1, l2 = _workload(run)
    plan = plan_decomposition(run.spec, queries[query_id])
    benchmark.group = f"fig15 general queries ({workflow}, q{query_id})"
    benchmark(lambda: evaluate_general_query(run, queries[query_id], l1, l2, plan=plan))


def _restricted_workload(run):
    l1, l2 = node_lists(run, limit=120, seed=4)
    return l1[:5], l2[:5]


@pytest.mark.parametrize("workflow", ["bioaid", "qblast"])
@pytest.mark.parametrize("query_id", [0, 1, 2])
def test_restricted_pre_pushdown(benchmark, workflow, query_id, bioaid_run, qblast_run):
    """The pre-pushdown evaluator: whole-run relations, then restrict."""
    run = bioaid_run if workflow == "bioaid" else qblast_run
    queries = _unsafe_queries(run.spec)
    if query_id >= len(queries):
        pytest.skip("not enough unsafe queries generated")
    l1, l2 = _restricted_workload(run)
    plan = plan_decomposition(run.spec, queries[query_id])
    benchmark.group = f"fig15 restricted 5x5 ({workflow}, q{query_id})"
    benchmark(
        lambda: evaluate_general_query(
            run, queries[query_id], l1, l2, plan=plan,
            strategy="join", push_restrictions=False,
        )
    )


@pytest.mark.parametrize("workflow", ["bioaid", "qblast"])
@pytest.mark.parametrize("query_id", [0, 1, 2])
def test_restricted_pushdown(benchmark, workflow, query_id, bioaid_run, qblast_run):
    """The restriction-pushdown evaluator on the same 5×5 lists."""
    run = bioaid_run if workflow == "bioaid" else qblast_run
    queries = _unsafe_queries(run.spec)
    if query_id >= len(queries):
        pytest.skip("not enough unsafe queries generated")
    l1, l2 = _restricted_workload(run)
    plan = plan_decomposition(run.spec, queries[query_id])
    benchmark.group = f"fig15 restricted 5x5 ({workflow}, q{query_id})"
    benchmark(lambda: evaluate_general_query(run, queries[query_id], l1, l2, plan=plan))
