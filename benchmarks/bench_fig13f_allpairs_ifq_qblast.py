"""Fig. 13f — all-pairs IFQs on QBLast (baseline G3 vs RPL vs optRPL)."""

import pytest

from repro.baselines.g3_label_index import g3_all_pairs
from repro.core.allpairs import AllPairsOptions, all_pairs_safe_query
from repro.core.decomposition import evaluate_general_query, plan_decomposition
from repro.core.query_index import build_query_index
from repro.datasets.queries import generate_ifq_along_path

SELECTIVITIES = ["high", "low"]


def _query(run, index, selectivity):
    prefer = "rare" if selectivity == "high" else "frequent"
    return generate_ifq_along_path(run, 3, seed=2, prefer=prefer, index=index)


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_baseline_g3(benchmark, qblast_run, qblast_index, qblast_lists, selectivity):
    l1, l2 = qblast_lists
    query = _query(qblast_run, qblast_index, selectivity)
    benchmark.group = f"fig13f all-pairs IFQ ({selectivity} selectivity)"
    benchmark(lambda: g3_all_pairs(qblast_run, l1, l2, query, index=qblast_index))


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("engine", ["rpl", "optrpl"])
def test_labeling_engines(benchmark, qblast_run, qblast_index, qblast_lists, selectivity, engine):
    l1, l2 = qblast_lists
    query = _query(qblast_run, qblast_index, selectivity)
    use_filter = engine == "optrpl"
    plan = plan_decomposition(qblast_run.spec, query)
    benchmark.group = f"fig13f all-pairs IFQ ({selectivity} selectivity)"
    if plan.is_fully_safe:
        index = build_query_index(qblast_run.spec, query)
        options = AllPairsOptions(use_reachability_filter=use_filter)
        benchmark(lambda: all_pairs_safe_query(qblast_run, l1, l2, index, options))
    else:
        benchmark(
            lambda: evaluate_general_query(
                qblast_run, query, l1, l2, use_reachability_filter=use_filter
            )
        )
