"""Fig. 13c — pairwise IFQ time versus run size (RPL vs G3 vs G2).

Each benchmark answers a fixed batch of pairwise queries over BioAID runs of
increasing size; the labeling approach should stay flat while the baselines
grow with the run.
"""

import random

import pytest

from repro.baselines.g2_rare_labels import g2_pairwise_batch
from repro.baselines.g3_label_index import g3_pairwise_batch
from repro.core.pairwise import answer_pairwise_query
from repro.core.query_index import build_query_index
from repro.bench.experiments import _safe_path_ifq
from repro.datasets.index import EdgeTagIndex
from repro.datasets.runs import generate_run

RUN_SIZES = [300, 600, 1200]
PAIRS = 300


def _setup(bioaid_spec, run_edges):
    run = generate_run(bioaid_spec, run_edges, seed=run_edges)
    index = EdgeTagIndex.from_run(run)
    query = _safe_path_ifq(run, 3, index, base_seed=7)
    rng = random.Random(run_edges)
    nodes = list(run.node_ids())
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(PAIRS)]
    return run, index, query, pairs


@pytest.mark.parametrize("run_edges", RUN_SIZES)
def test_rpl_pairwise(benchmark, bioaid_spec, run_edges):
    run, _, query, pairs = _setup(bioaid_spec, run_edges)
    query_index = build_query_index(bioaid_spec, query)
    labels = [(run.label_of(u), run.label_of(v)) for u, v in pairs]

    benchmark.group = f"fig13c pairwise (run={run_edges})"
    benchmark(lambda: [answer_pairwise_query(query_index, lu, lv) for lu, lv in labels])


@pytest.mark.parametrize("run_edges", RUN_SIZES)
def test_g3_pairwise(benchmark, bioaid_spec, run_edges):
    run, index, query, pairs = _setup(bioaid_spec, run_edges)
    benchmark.group = f"fig13c pairwise (run={run_edges})"
    benchmark(lambda: g3_pairwise_batch(run, pairs, query, index=index))


@pytest.mark.parametrize("run_edges", RUN_SIZES)
def test_g2_pairwise(benchmark, bioaid_spec, run_edges):
    run, index, query, pairs = _setup(bioaid_spec, run_edges)
    benchmark.group = f"fig13c pairwise (run={run_edges})"
    benchmark(lambda: g2_pairwise_batch(run, pairs, query, index=index))
