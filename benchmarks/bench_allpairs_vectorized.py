"""Group-at-a-time vectorized decoding (optRPL-G) vs per-pair decodes.

Three all-pairs strategies over the full node universe of synthetic runs at
increasing scale:

* **per-pair S1** — the pairwise decode on every pair of the cross product;
* **per-pair S2** — the reachability filter of Algorithm 2, then the
  pairwise decode on each surviving pair;
* **vectorized S2** — the same structural join, decoded one group at a time
  with memoized per-trie-node state vectors (one matrix-vector product per
  group member, one bitmask intersection per pair).

``test_all_strategies_agree_at_largest_scale`` asserts the answer-set
equivalence of all strategies (including the streaming iterator);
``test_vectorized_speedup_at_largest_scale`` asserts the headline ratio —
vectorized S2 at least 3x faster than per-pair S2 at the largest scale (in
practice the gap is 15-25x) — and is skipped under ``--benchmark-disable``
so smoke runs stay free of wall-clock assertions.
"""

import time

import pytest

from repro.core.allpairs import (
    AllPairsOptions,
    all_pairs_iter,
    all_pairs_safe_query,
)
from repro.core.query_index import build_query_index
from repro.core.safety import is_safe_query
from repro.datasets.synthetic import generate_synthetic_specification
from repro.workflow.derivation import derive_run

SCALES = [100, 200, 400]
LARGEST = SCALES[-1]

_VECTORIZED = AllPairsOptions()
_PER_PAIR_S2 = AllPairsOptions(vectorized=False)
_PER_PAIR_S1 = AllPairsOptions(use_reachability_filter=False)


def _case(target_edges):
    spec = generate_synthetic_specification(300, seed=7, recursion_fraction=0.5)
    run = derive_run(spec, seed=7, target_edges=target_edges)
    query = next(
        q
        for q in ("op1* op2*", "_* op2 _*", "op3*", "_*")
        if is_safe_query(spec, q)
    )
    return run, list(run.node_ids()), build_query_index(spec, query)


@pytest.fixture(scope="module", params=SCALES)
def scale_case(request):
    return request.param, _case(request.param)


@pytest.mark.parametrize("strategy", ["s1", "s2", "vectorized"])
def test_all_pairs_strategies(benchmark, scale_case, strategy):
    scale, (run, nodes, index) = scale_case
    options = {
        "s1": _PER_PAIR_S1,
        "s2": _PER_PAIR_S2,
        "vectorized": _VECTORIZED,
    }[strategy]
    benchmark.group = f"all-pairs decode strategies (target_edges={scale})"
    benchmark(lambda: all_pairs_safe_query(run, nodes, nodes, index, options))


def test_streamed_consumption(benchmark, scale_case):
    """Draining the streaming iterator costs the same as materializing."""
    scale, (run, nodes, index) = scale_case
    benchmark.group = f"all-pairs decode strategies (target_edges={scale})"
    benchmark(lambda: sum(1 for _ in all_pairs_iter(run, nodes, nodes, index)))


def _best_time(fn, repeat):
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_all_strategies_agree_at_largest_scale():
    run, nodes, index = _case(LARGEST)
    vectorized = all_pairs_safe_query(run, nodes, nodes, index, _VECTORIZED)
    per_pair_s2 = all_pairs_safe_query(run, nodes, nodes, index, _PER_PAIR_S2)
    per_pair_s1 = all_pairs_safe_query(run, nodes, nodes, index, _PER_PAIR_S1)
    streamed = list(all_pairs_iter(run, nodes, nodes, index))
    assert vectorized == per_pair_s2 == per_pair_s1 == set(streamed)
    assert len(streamed) == len(set(streamed))


def test_vectorized_speedup_at_largest_scale(request):
    if request.config.getoption("--benchmark-disable"):
        # Smoke runs (CI's "no timing loops" job) must not depend on
        # wall-clock ratios measured on shared, noisy runners.
        pytest.skip("timing assertion skipped when benchmarks are disabled")
    run, nodes, index = _case(LARGEST)
    t_vectorized = _best_time(
        lambda: all_pairs_safe_query(run, nodes, nodes, index, _VECTORIZED), repeat=3
    )
    t_per_pair = _best_time(
        lambda: all_pairs_safe_query(run, nodes, nodes, index, _PER_PAIR_S2), repeat=2
    )
    speedup = t_per_pair / t_vectorized
    assert speedup >= 3.0, (
        f"vectorized S2 only {speedup:.1f}x faster than per-pair S2 "
        f"({t_vectorized * 1000:.1f}ms vs {t_per_pair * 1000:.1f}ms)"
    )
