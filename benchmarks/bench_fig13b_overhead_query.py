"""Fig. 13b — safety-check overhead as the query grows (BioAID / QBLast)."""

import pytest

from repro.core.query_index import build_query_index
from repro.core.safety import analyze_safety, query_dfa
from repro.datasets.queries import generate_ifq


@pytest.mark.parametrize("k", [0, 3, 6, 10])
@pytest.mark.parametrize("workflow", ["bioaid", "qblast"])
def test_overhead_vs_query_size(benchmark, workflow, k, bioaid_spec, qblast_spec):
    spec = bioaid_spec if workflow == "bioaid" else qblast_spec
    query = generate_ifq(spec, k, seed=k)

    def overhead():
        report = analyze_safety(spec, query_dfa(spec, query))
        if report.is_safe:
            build_query_index(spec, query)
        return report.is_safe

    benchmark.group = f"fig13b overhead vs query size ({workflow})"
    benchmark(overhead)
