"""JSON persistence for specifications and labeled runs.

The paper stores simulated runs and their inverted indices on disk as Java
serialized objects (Section V-A); this module provides the equivalent
capability so workloads can be generated once and reused across benchmark
invocations, and so external tools can inspect specifications, runs and
labels.  The format is plain JSON with a small version header.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.labeling.labels import format_label, parse_label
from repro.workflow.run import Run, RunEdge, RunNode
from repro.workflow.simple import Edge, SimpleWorkflow
from repro.workflow.spec import Production, Specification

__all__ = [
    "specification_to_dict",
    "specification_from_dict",
    "save_specification",
    "load_specification",
    "run_to_dict",
    "run_from_dict",
    "save_run",
    "load_run",
]

_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Specifications
# ---------------------------------------------------------------------------


def specification_to_dict(spec: Specification) -> dict[str, Any]:
    """A JSON-ready representation of a specification."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "specification",
        "name": spec.name,
        "start": spec.start,
        "atomic_modules": sorted(spec.atomic_modules),
        "productions": [
            {
                "head": production.head,
                "nodes": list(production.body.nodes),
                "edges": [
                    {"source": edge.source, "target": edge.target, "tag": edge.tag}
                    for edge in production.body.edges
                ],
            }
            for production in spec.productions
        ],
    }


def specification_from_dict(payload: dict[str, Any]) -> Specification:
    """Rebuild a specification from :func:`specification_to_dict` output."""
    if payload.get("kind") != "specification":
        raise ReproError("payload does not describe a specification")
    productions = [
        Production(
            head=entry["head"],
            body=SimpleWorkflow(
                entry["nodes"],
                [Edge(edge["source"], edge["target"], edge["tag"]) for edge in entry["edges"]],
            ),
        )
        for entry in payload["productions"]
    ]
    return Specification(
        start=payload["start"],
        productions=productions,
        atomic_modules=payload.get("atomic_modules", ()),
        name=payload.get("name", "workflow"),
    )


def save_specification(spec: Specification, path: str | Path) -> None:
    Path(path).write_text(json.dumps(specification_to_dict(spec), indent=2))


def load_specification(path: str | Path) -> Specification:
    return specification_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Runs
# ---------------------------------------------------------------------------


def run_to_dict(run: Run) -> dict[str, Any]:
    """A JSON-ready representation of a labeled run (includes its spec)."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "run",
        "specification": specification_to_dict(run.spec),
        "seed": run.seed,
        "derivation_steps": run.derivation_steps,
        "nodes": [
            {"id": node.node_id, "name": node.name, "label": format_label(node.label)}
            for node in run
        ],
        "edges": [
            {"source": edge.source, "target": edge.target, "tag": edge.tag}
            for edge in run.edges
        ],
    }


def run_from_dict(payload: dict[str, Any], spec: Specification | None = None) -> Run:
    """Rebuild a labeled run; ``spec`` overrides the embedded specification."""
    if payload.get("kind") != "run":
        raise ReproError("payload does not describe a run")
    if spec is None:
        spec = specification_from_dict(payload["specification"])
    nodes = [
        RunNode(node_id=entry["id"], name=entry["name"], label=parse_label(entry["label"]))
        for entry in payload["nodes"]
    ]
    edges = [
        RunEdge(source=entry["source"], target=entry["target"], tag=entry["tag"])
        for entry in payload["edges"]
    ]
    return Run.from_parts(
        spec,
        nodes,
        edges,
        derivation_steps=payload.get("derivation_steps", 0),
        seed=payload.get("seed"),
    )


def save_run(run: Run, path: str | Path) -> None:
    Path(path).write_text(json.dumps(run_to_dict(run)))


def load_run(path: str | Path, spec: Specification | None = None) -> Run:
    return run_from_dict(json.loads(Path(path).read_text()), spec=spec)
