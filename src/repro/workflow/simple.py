"""Simple workflows: the right-hand sides of workflow productions.

A simple workflow (Definition 1 of the paper) is a small graph whose nodes
are module occurrences and whose edges are tagged with the name of the data
flowing over them.  In the coarse-grained model used for regular path queries
(Section III-A) every module has a single input and a single output, so we
additionally require production bodies to be

* acyclic,
* single-entry / single-exit (a unique source and a unique sink), and
* *spanning*: every node lies on some path from the source to the sink.

These structural constraints are what make the hierarchical reachability
facts used by the labeling scheme and by Algorithm 2 sound: every node of the
expansion of a composite module is reachable from the expansion's input and
reaches the expansion's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Sequence

from repro.errors import StructureError

__all__ = ["Edge", "SimpleWorkflow"]


@dataclass(frozen=True)
class Edge:
    """A tagged data edge between two positions of a simple workflow.

    ``source`` and ``target`` are 0-based positions into
    :attr:`SimpleWorkflow.nodes`.  ``tag`` names the data flowing on the edge;
    by the convention used in the paper's examples it often equals the name of
    the module at the head of the edge, but any tag is allowed.
    """

    source: int
    target: int
    tag: str


class SimpleWorkflow:
    """An immutable simple workflow (the body ``W`` of a production ``M -> W``).

    Parameters
    ----------
    nodes:
        Module names in a fixed order; the position of a module in this
        sequence is its identity within the body (the ``i`` of the edge labels
        ``(k, i)`` of the compressed parse tree).  Multiple positions may hold
        the same module name.
    edges:
        Tagged edges between positions.  Parallel edges with distinct tags are
        allowed (Definition 1).
    """

    __slots__ = ("_nodes", "_edges", "__dict__")

    def __init__(
        self, nodes: Sequence[str], edges: Iterable[Edge | tuple[int, int, str]] = ()
    ) -> None:
        if not nodes:
            raise StructureError("a simple workflow needs at least one node")
        self._nodes: tuple[str, ...] = tuple(nodes)
        normalized = []
        for edge in edges:
            if not isinstance(edge, Edge):
                edge = Edge(*edge)
            if not (0 <= edge.source < len(self._nodes)):
                raise StructureError(f"edge source {edge.source} out of range")
            if not (0 <= edge.target < len(self._nodes)):
                raise StructureError(f"edge target {edge.target} out of range")
            if edge.source == edge.target:
                raise StructureError("self-loop edges are not allowed in simple workflows")
            normalized.append(edge)
        self._edges: tuple[Edge, ...] = tuple(normalized)
        self._validate()

    # -- basic accessors ------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def edges(self) -> tuple[Edge, ...]:
        return self._edges

    def __len__(self) -> int:
        return len(self._nodes)

    def module_at(self, position: int) -> str:
        return self._nodes[position]

    def positions_of(self, module: str) -> tuple[int, ...]:
        """All positions holding the given module name."""
        return tuple(i for i, name in enumerate(self._nodes) if name == module)

    @cached_property
    def successors(self) -> tuple[tuple[int, ...], ...]:
        out: list[list[int]] = [[] for _ in self._nodes]
        for edge in self._edges:
            out[edge.source].append(edge.target)
        return tuple(tuple(sorted(set(targets))) for targets in out)

    @cached_property
    def predecessors(self) -> tuple[tuple[int, ...], ...]:
        incoming: list[list[int]] = [[] for _ in self._nodes]
        for edge in self._edges:
            incoming[edge.target].append(edge.source)
        return tuple(tuple(sorted(set(sources))) for sources in incoming)

    @cached_property
    def source(self) -> int:
        """The unique entry position (no incoming edges)."""
        sources = [i for i, preds in enumerate(self.predecessors) if not preds]
        return sources[0]

    @cached_property
    def sink(self) -> int:
        """The unique exit position (no outgoing edges)."""
        sinks = [i for i, succs in enumerate(self.successors) if not succs]
        return sinks[0]

    @cached_property
    def topological_order(self) -> tuple[int, ...]:
        """Positions in a topological order of the body DAG."""
        in_degree = [len(preds) for preds in self.predecessors]
        ready = [i for i, degree in enumerate(in_degree) if degree == 0]
        order: list[int] = []
        while ready:
            position = ready.pop()
            order.append(position)
            for successor in self.successors[position]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        return tuple(order)

    @cached_property
    def reachability(self) -> tuple[frozenset[int], ...]:
        """``reachability[i]`` is the set of positions reachable from ``i`` by
        one or more edges (the strict transitive closure of the body DAG)."""
        reach: list[set[int]] = [set() for _ in self._nodes]
        for position in reversed(self.topological_order):
            for successor in self.successors[position]:
                reach[position].add(successor)
                reach[position] |= reach[successor]
        return tuple(frozenset(r) for r in reach)

    def reaches(self, source: int, target: int) -> bool:
        """True when ``target`` is reachable from ``source`` by >= 1 edge."""
        return target in self.reachability[source]

    def edges_between(self, source: int, target: int) -> tuple[Edge, ...]:
        return tuple(e for e in self._edges if e.source == source and e.target == target)

    def tags(self) -> frozenset[str]:
        return frozenset(edge.tag for edge in self._edges)

    def iter_positions(self) -> Iterator[tuple[int, str]]:
        return iter(enumerate(self._nodes))

    # -- validation ------------------------------------------------------------

    def _validate(self) -> None:
        if len(self._nodes) == 1:
            if self._edges:
                raise StructureError("a single-node body cannot have edges")
            return
        sources = [i for i in range(len(self._nodes)) if not any(e.target == i for e in self._edges)]
        sinks = [i for i in range(len(self._nodes)) if not any(e.source == i for e in self._edges)]
        if len(sources) != 1:
            raise StructureError(
                f"a simple workflow must have exactly one source, found {len(sources)}"
            )
        if len(sinks) != 1:
            raise StructureError(
                f"a simple workflow must have exactly one sink, found {len(sinks)}"
            )
        order = self.topological_order
        if len(order) != len(self._nodes):
            raise StructureError("simple workflows must be acyclic")
        # Spanning property: every node reachable from the source and reaching
        # the sink.
        source, sink = self.source, self.sink
        for position in range(len(self._nodes)):
            if position != source and not self.reaches(source, position):
                raise StructureError(
                    f"position {position} ({self._nodes[position]!r}) is not reachable "
                    "from the body's source"
                )
            if position != sink and not self.reaches(position, sink):
                raise StructureError(
                    f"position {position} ({self._nodes[position]!r}) cannot reach "
                    "the body's sink"
                )

    # -- misc -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimpleWorkflow):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._nodes, self._edges))

    def __repr__(self) -> str:
        return f"SimpleWorkflow(nodes={list(self._nodes)!r}, edges={len(self._edges)})"


def chain(modules: Sequence[str], tags: Sequence[str] | None = None) -> SimpleWorkflow:
    """Convenience constructor: a linear chain of modules.

    By default each edge is tagged with the name of the module at its head,
    matching the convention used in the paper's examples.
    """
    edges = []
    for index in range(len(modules) - 1):
        tag = tags[index] if tags is not None else modules[index + 1]
        edges.append(Edge(index, index + 1, tag))
    return SimpleWorkflow(modules, edges)
