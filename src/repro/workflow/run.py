"""Runs: workflow executions (provenance graphs).

A :class:`Run` is the result of deriving a specification to completion: a DAG
whose nodes are *atomic module executions* (e.g. ``a:1``, ``a:2``) and whose
edges carry data tags.  Every node stores the dynamic reachability label
assigned when it was derived (see :mod:`repro.labeling`), which is the only
per-node information the paper's query engine needs at query time.

Regular path queries are evaluated over runs: the baselines traverse the run
graph directly, while the labeling-based engine only touches node labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx

    from repro.core.bitset import PackedRunView
    from repro.labeling.labels import Label
    from repro.workflow.spec import Specification

__all__ = ["RunNode", "RunEdge", "Run"]


@dataclass(frozen=True)
class RunNode:
    """A module execution in a run."""

    node_id: str
    name: str
    label: "Label"


@dataclass(frozen=True)
class RunEdge:
    """A tagged data edge between two module executions."""

    source: str
    target: str
    tag: str


@dataclass
class Run:
    """A completed workflow execution.

    Attributes
    ----------
    spec:
        The specification the run was derived from.
    nodes:
        Mapping from node id to :class:`RunNode`.
    edges:
        All data edges, in insertion order.
    derivation_steps:
        The number of node replacements performed, kept for reporting.
    """

    spec: "Specification"
    nodes: Mapping[str, RunNode]
    edges: tuple[RunEdge, ...]
    derivation_steps: int = 0
    seed: int | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- sizes ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes

    def __iter__(self) -> Iterator[RunNode]:
        return iter(self.nodes.values())

    # -- lookups ----------------------------------------------------------------

    def node(self, node_id: str) -> RunNode:
        return self.nodes[node_id]

    def label_of(self, node_id: str) -> "Label":
        return self.nodes[node_id].label

    def labels_of(self, node_ids: Iterable[str]) -> list["Label"]:
        return [self.nodes[node_id].label for node_id in node_ids]

    def nodes_named(self, name: str) -> tuple[str, ...]:
        """Node ids of all executions of the given module, in id order."""
        return tuple(
            node_id for node_id, node in self.nodes.items() if node.name == name
        )

    def node_ids(self) -> tuple[str, ...]:
        return tuple(self.nodes)

    @cached_property
    def successors(self) -> Mapping[str, tuple[tuple[str, str], ...]]:
        """``successors[u]`` is a tuple of ``(target, tag)`` pairs."""
        out: dict[str, list[tuple[str, str]]] = {node_id: [] for node_id in self.nodes}
        for edge in self.edges:
            out[edge.source].append((edge.target, edge.tag))
        return {node_id: tuple(targets) for node_id, targets in out.items()}

    @cached_property
    def predecessors(self) -> Mapping[str, tuple[tuple[str, str], ...]]:
        """``predecessors[v]`` is a tuple of ``(source, tag)`` pairs."""
        incoming: dict[str, list[tuple[str, str]]] = {node_id: [] for node_id in self.nodes}
        for edge in self.edges:
            incoming[edge.target].append((edge.source, edge.tag))
        return {node_id: tuple(sources) for node_id, sources in incoming.items()}

    @cached_property
    def packed(self) -> "PackedRunView":
        """The run's dense-interned, uint64-packed adjacency view.

        Built once (the service warms it at registration) and reused by every
        query: tag/wildcard rows for both directions plus the node interner,
        so joins and closures never rebuild adjacency per call.  The import
        is deferred because :mod:`repro.core` imports this module.
        """
        from repro.core.bitset import build_run_view

        return build_run_view(self)

    @cached_property
    def edges_by_tag(self) -> Mapping[str, tuple[RunEdge, ...]]:
        """All edges grouped by tag (the basis of the inverted index)."""
        grouped: dict[str, list[RunEdge]] = {}
        for edge in self.edges:
            grouped.setdefault(edge.tag, []).append(edge)
        return {tag: tuple(edges) for tag, edges in grouped.items()}

    def tags(self) -> frozenset[str]:
        return frozenset(edge.tag for edge in self.edges)

    # -- traversal helpers (used by baselines and tests) --------------------------

    def topological_order(self) -> list[str]:
        in_degree = {node_id: 0 for node_id in self.nodes}
        for edge in self.edges:
            in_degree[edge.target] += 1
        ready = [node_id for node_id, degree in in_degree.items() if degree == 0]
        order: list[str] = []
        while ready:
            node_id = ready.pop()
            order.append(node_id)
            for target, _ in self.successors[node_id]:
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    ready.append(target)
        if len(order) != len(self.nodes):
            raise ValueError("run graph contains a cycle; this should be impossible")
        return order

    def reachable_from(self, node_id: str) -> frozenset[str]:
        """All nodes reachable from ``node_id`` (excluding itself unless on a
        cycle, which cannot happen in a run DAG)."""
        seen: set[str] = set()
        stack = [target for target, _ in self.successors[node_id]]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(target for target, _ in self.successors[current])
        return frozenset(seen)

    def to_networkx(self) -> "networkx.MultiDiGraph":
        """Export as a networkx multigraph (tags on the ``tag`` edge attribute)."""
        import networkx

        graph = networkx.MultiDiGraph()
        for node_id, node in self.nodes.items():
            graph.add_node(node_id, name=node.name, label=node.label)
        for edge in self.edges:
            graph.add_edge(edge.source, edge.target, tag=edge.tag)
        return graph

    # -- construction helper -------------------------------------------------------

    @classmethod
    def from_parts(
        cls,
        spec: "Specification",
        nodes: Sequence[RunNode],
        edges: Sequence[RunEdge],
        *,
        derivation_steps: int = 0,
        seed: int | None = None,
    ) -> "Run":
        return cls(
            spec=spec,
            nodes={node.node_id: node for node in nodes},
            edges=tuple(edges),
            derivation_steps=derivation_steps,
            seed=seed,
        )

    def describe(self) -> str:
        """A short human-readable summary (used by the CLI and examples)."""
        return (
            f"run of {self.spec.name!r}: {self.node_count} nodes, "
            f"{self.edge_count} edges, {self.derivation_steps} derivation steps"
        )
