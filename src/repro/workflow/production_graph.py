"""The production graph P(G) and strict-linear-recursion analysis.

The production graph (Definition 5 of the paper) has one vertex per module
and, for the ``k``-th production ``M -> W`` and each position ``i`` of ``W``,
an edge ``M -> W[i]`` identified by the pair ``(k, i)``.  A specification is
*strictly linear-recursive* (Definition 6) when all cycles of this multigraph
are vertex-disjoint; with multi-edges this is equivalent to every non-trivial
strongly connected component being a single elementary cycle in which each
member has exactly one in-SCC outgoing edge and one in-SCC incoming edge.

Each cycle is materialized as a :class:`Cycle`, which records, for every
module around the cycle, the production used to continue the recursion (the
"cycle production") and the position of the next cycle module inside that
production's body (the "recursive position").  These are exactly the pieces
the labeler and the pairwise decoder need to reason about recursion chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workflow.spec import Specification

__all__ = ["Cycle", "ProductionGraph"]


@dataclass(frozen=True)
class Cycle:
    """One cycle of the production graph.

    ``modules[offset]`` is a module on the cycle; its cycle production is
    ``productions[offset]`` and the next module of the cycle,
    ``modules[(offset + 1) % len(modules)]``, sits at position
    ``positions[offset]`` inside that production's body.
    """

    index: int
    modules: tuple[str, ...]
    productions: tuple[int, ...]
    positions: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.modules)

    def offset_of(self, module: str) -> int:
        """The cycle offset of ``module`` (raises ``ValueError`` if absent)."""
        return self.modules.index(module)

    def module_at(self, offset: int) -> str:
        return self.modules[offset % len(self.modules)]

    def step(self, offset: int) -> tuple[int, int]:
        """Return ``(cycle production index, recursive position)`` for the
        module at the given cycle offset."""
        offset %= len(self.modules)
        return self.productions[offset], self.positions[offset]

    def chain_offset(self, start_offset: int, ordinal: int) -> int:
        """Cycle offset of the ``ordinal``-th chain child (0-based) for a chain
        entered at ``start_offset``."""
        return (start_offset + ordinal) % len(self.modules)


class ProductionGraph:
    """The production multigraph of a specification, with recursion analysis."""

    def __init__(self, spec: "Specification") -> None:
        self._spec = spec
        # edges[module] = list of (target module, production index, position)
        edges: dict[str, list[tuple[str, int, int]]] = {m: [] for m in spec.modules}
        for production_index, production in enumerate(spec.productions):
            for position, module in enumerate(production.body.nodes):
                edges[production.head].append((module, production_index, position))
        self._edges = {module: tuple(targets) for module, targets in edges.items()}
        self._analyze()

    # -- basic structure --------------------------------------------------------

    @property
    def spec(self) -> "Specification":
        return self._spec

    def out_edges(self, module: str) -> tuple[tuple[str, int, int], ...]:
        """Outgoing edges of a module: ``(target, production index, position)``."""
        return self._edges.get(module, ())

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._edges.values())

    def __iter__(self) -> Iterator[str]:
        return iter(self._edges)

    # -- recursion analysis -----------------------------------------------------

    def _strongly_connected_components(self) -> list[frozenset[str]]:
        """Tarjan's algorithm (iterative) over the module graph."""
        index_counter = 0
        indices: dict[str, int] = {}
        lowlinks: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[frozenset[str]] = []

        for root in self._edges:
            if root in indices:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                module, child_index = work[-1]
                if child_index == 0:
                    indices[module] = index_counter
                    lowlinks[module] = index_counter
                    index_counter += 1
                    stack.append(module)
                    on_stack.add(module)
                advanced = False
                targets = self._edges.get(module, ())
                while child_index < len(targets):
                    target = targets[child_index][0]
                    child_index += 1
                    if target not in indices:
                        work[-1] = (module, child_index)
                        work.append((target, 0))
                        advanced = True
                        break
                    if target in on_stack:
                        lowlinks[module] = min(lowlinks[module], indices[target])
                if advanced:
                    continue
                work[-1] = (module, child_index)
                if child_index >= len(targets):
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlinks[parent] = min(lowlinks[parent], lowlinks[module])
                    if lowlinks[module] == indices[module]:
                        component = set()
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            component.add(member)
                            if member == module:
                                break
                        components.append(frozenset(component))
        return components

    def _analyze(self) -> None:
        self._cycles: list[Cycle] = []
        self._non_linear: set[str] = set()
        cycle_of_module: dict[str, int] = {}
        offset_of_module: dict[str, int] = {}

        for component in self._strongly_connected_components():
            internal_edges: dict[str, list[tuple[str, int, int]]] = {}
            for module in component:
                internal = [
                    (target, production, position)
                    for target, production, position in self._edges.get(module, ())
                    if target in component
                ]
                if internal:
                    internal_edges[module] = internal
            is_trivial = len(component) == 1 and not internal_edges
            if is_trivial:
                continue
            # Non-trivial SCC: must be a single elementary cycle.
            linear = all(len(targets) == 1 for targets in internal_edges.values()) and len(
                internal_edges
            ) == len(component)
            incoming_counts: dict[str, int] = {module: 0 for module in component}
            for targets in internal_edges.values():
                for target, _, _ in targets:
                    incoming_counts[target] += 1
            linear = linear and all(count == 1 for count in incoming_counts.values())
            if not linear:
                self._non_linear |= component
                continue
            # Walk the cycle starting from the lexicographically smallest module.
            start = min(component)
            modules: list[str] = []
            productions: list[int] = []
            positions: list[int] = []
            current = start
            while True:
                target, production, position = internal_edges[current][0]
                modules.append(current)
                productions.append(production)
                positions.append(position)
                current = target
                if current == start:
                    break
            cycle = Cycle(
                index=len(self._cycles),
                modules=tuple(modules),
                productions=tuple(productions),
                positions=tuple(positions),
            )
            self._cycles.append(cycle)
            for offset, module in enumerate(cycle.modules):
                cycle_of_module[module] = cycle.index
                offset_of_module[module] = offset

        self._cycle_of_module = cycle_of_module
        self._offset_of_module = offset_of_module

    # -- public recursion API ----------------------------------------------------

    @property
    def cycles(self) -> tuple[Cycle, ...]:
        return tuple(self._cycles)

    @property
    def is_strictly_linear_recursive(self) -> bool:
        return not self._non_linear

    @property
    def non_linear_modules(self) -> frozenset[str]:
        """Modules belonging to more than one cycle (empty iff strictly linear)."""
        return frozenset(self._non_linear)

    @property
    def recursive_modules(self) -> frozenset[str]:
        return frozenset(self._cycle_of_module) | frozenset(self._non_linear)

    @property
    def recursive_productions(self) -> frozenset[int]:
        """Indices of productions that extend a recursion cycle."""
        return frozenset(p for cycle in self._cycles for p in cycle.productions)

    def is_cyclic(self) -> bool:
        return bool(self._cycles) or bool(self._non_linear)

    def cycle_of(self, module: str) -> Cycle | None:
        """The cycle a module lies on, or ``None`` for non-recursive modules."""
        index = self._cycle_of_module.get(module)
        if index is None:
            return None
        return self._cycles[index]

    def cycle_offset_of(self, module: str) -> int | None:
        return self._offset_of_module.get(module)
