"""Workflow model: context-free graph grammars and their executions.

This package implements the workflow model of Section II-A of the paper
(following Bao, Davidson & Milo and Beeri et al.):

* a :class:`~repro.workflow.simple.SimpleWorkflow` is a small DAG of module
  occurrences connected by tagged data edges,
* a :class:`~repro.workflow.spec.Production` rewrites a composite module into
  a simple workflow,
* a :class:`~repro.workflow.spec.Specification` is a context-free graph
  grammar (CFGG) whose language is the set of all possible executions,
* the :class:`~repro.workflow.production_graph.ProductionGraph` captures
  recursion structure and is used to validate *strict linear recursion*,
* the derivation engine (:mod:`repro.workflow.derivation`) executes a
  specification by repeated node replacement, producing a
  :class:`~repro.workflow.run.Run` — the provenance graph that queries are
  asked over — and assigning the dynamic reachability labels of
  :mod:`repro.labeling` as nodes are created.
"""

from repro.workflow.production_graph import Cycle, ProductionGraph
from repro.workflow.run import Run, RunEdge, RunNode
from repro.workflow.simple import Edge, SimpleWorkflow
from repro.workflow.spec import Production, Specification
from repro.workflow.derivation import Derivation, derive_run

__all__ = [
    "Cycle",
    "Derivation",
    "Edge",
    "Production",
    "ProductionGraph",
    "Run",
    "RunEdge",
    "RunNode",
    "SimpleWorkflow",
    "Specification",
    "derive_run",
]
