"""Derivation of runs from workflow specifications.

A run is obtained by a sequence of *node replacements* (Definition 4 of the
paper): starting from a single node named ``S``, each step replaces one
composite node with the body of one of its productions, rewiring the node's
incoming edges to the body's source and its outgoing edges to the body's
sink.  The :class:`Derivation` class maintains the partially-derived graph,
assigns reachability labels to nodes as they are created (via
:class:`repro.labeling.labeler.Labeler`) and produces a
:class:`~repro.workflow.run.Run` when no composite node remains.

:func:`derive_run` wraps the step-by-step API in a convenient size-targeting
policy used throughout the test suite and the benchmark workload generators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import DerivationError
from repro.labeling.labeler import ChainContext, Labeler
from repro.labeling.labels import Label
from repro.workflow.run import Run, RunEdge, RunNode
from repro.workflow.spec import Specification

__all__ = ["Derivation", "derive_run", "min_completion_cost"]


@dataclass
class _LiveNode:
    """A node of the partially-derived graph."""

    node_id: str
    name: str
    label: Label
    chain: ChainContext | None
    is_composite: bool


def min_completion_cost(spec: Specification) -> Mapping[str, int]:
    """Minimum number of *additional edges* needed to fully derive one
    occurrence of each module.

    Atomic modules cost 0.  For a composite module the cheapest production is
    the one minimizing ``len(body.edges) + sum(cost of body modules)``.  The
    derivation policy uses these costs to wind a run down once the target
    size has been reached; productivity of the specification guarantees the
    fixpoint below assigns a finite cost to every module.
    """
    costs: dict[str, int] = {module: 0 for module in spec.atomic_modules}
    remaining = set(spec.composite_modules)
    while remaining:
        progressed = False
        for module in sorted(remaining):
            best: int | None = None
            for production_index in spec.productions_of.get(module, ()):
                body = spec.production(production_index).body
                if any(m not in costs for m in body.nodes):
                    continue
                candidate = len(body.edges) + sum(costs[m] for m in body.nodes)
                if best is None or candidate < best:
                    best = candidate
            if best is not None:
                costs[module] = best
                remaining.discard(module)
                progressed = True
        if not progressed:  # pragma: no cover - spec validation prevents this
            raise DerivationError(f"modules are not productive: {sorted(remaining)}")
    return costs


class Derivation:
    """A stepwise derivation of a run from a specification."""

    def __init__(self, spec: Specification, seed: int | None = None) -> None:
        self._spec = spec
        self._labeler = Labeler(spec)
        self._rng = random.Random(seed)
        self._seed = seed
        self._nodes: dict[str, _LiveNode] = {}
        self._out: dict[str, list[tuple[str, str]]] = {}
        self._in: dict[str, list[tuple[str, str]]] = {}
        self._name_counters: dict[str, int] = {}
        self._composite_ids: list[str] = []
        self._steps = 0
        self._edge_count = 0
        root_label, root_chain = self._labeler.root()
        self._add_node(spec.start, root_label, root_chain)

    # -- observers ----------------------------------------------------------------

    @property
    def spec(self) -> Specification:
        return self._spec

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    @property
    def composite_nodes(self) -> tuple[str, ...]:
        """Ids of the composite nodes still awaiting replacement."""
        return tuple(self._composite_ids)

    def is_complete(self) -> bool:
        return not self._composite_ids

    def node_name(self, node_id: str) -> str:
        return self._nodes[node_id].name

    def node_label(self, node_id: str) -> Label:
        return self._nodes[node_id].label

    # -- graph surgery --------------------------------------------------------------

    def _new_id(self, name: str) -> str:
        counter = self._name_counters.get(name, 0) + 1
        self._name_counters[name] = counter
        return f"{name}:{counter}"

    def _add_node(self, name: str, label: Label, chain: ChainContext | None) -> str:
        node_id = self._new_id(name)
        is_composite = self._spec.is_composite(name)
        self._nodes[node_id] = _LiveNode(node_id, name, label, chain, is_composite)
        self._out[node_id] = []
        self._in[node_id] = []
        if is_composite:
            self._composite_ids.append(node_id)
        return node_id

    def _add_edge(self, source: str, target: str, tag: str) -> None:
        self._out[source].append((target, tag))
        self._in[target].append((source, tag))
        self._edge_count += 1

    def _remove_node(self, node_id: str) -> None:
        for target, tag in self._out.pop(node_id):
            self._in[target] = [(s, t) for s, t in self._in[target] if s != node_id]
        for source, tag in self._in.pop(node_id):
            self._out[source] = [(t, g) for t, g in self._out[source] if t != node_id]
        del self._nodes[node_id]

    # -- derivation steps -------------------------------------------------------------

    def step(self, node_id: str, production_index: int) -> tuple[str, ...]:
        """Replace a composite node with the body of the given production.

        Returns the ids of the newly created nodes, in body-position order.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise DerivationError(f"unknown node {node_id!r}")
        if not node.is_composite:
            raise DerivationError(f"node {node_id!r} ({node.name}) is atomic")
        self._labeler.check_production_applicable(node.name, production_index)

        production = self._spec.production(production_index)
        body = production.body
        children = self._labeler.children(node.label, node.chain, production_index)

        incoming = list(self._in[node_id])
        outgoing = list(self._out[node_id])
        self._edge_count -= len(incoming) + len(outgoing)
        self._remove_node(node_id)
        self._composite_ids.remove(node_id)

        new_ids: list[str] = []
        for child in children:
            new_ids.append(self._add_node(child.module, child.label, child.chain))
        for edge in body.edges:
            self._add_edge(new_ids[edge.source], new_ids[edge.target], edge.tag)
        entry = new_ids[body.source]
        exit_ = new_ids[body.sink]
        for source, tag in incoming:
            self._add_edge(source, entry, tag)
        for target, tag in outgoing:
            self._add_edge(exit_, target, tag)

        self._steps += 1
        return tuple(new_ids)

    def random_step(
        self, production_chooser: Callable[[str], int] | None = None
    ) -> tuple[str, ...]:
        """Replace a uniformly chosen composite node.

        ``production_chooser(module_name) -> production index`` selects the
        production; by default one of the module's productions is chosen
        uniformly at random.
        """
        if not self._composite_ids:
            raise DerivationError("derivation already complete")
        node_id = self._rng.choice(self._composite_ids)
        module = self._nodes[node_id].name
        if production_chooser is None:
            production_index = self._rng.choice(self._spec.productions_of[module])
        else:
            production_index = production_chooser(module)
        return self.step(node_id, production_index)

    # -- finishing ----------------------------------------------------------------------

    def to_run(self) -> Run:
        """Freeze the derived graph into a :class:`Run` (must be complete)."""
        if not self.is_complete():
            raise DerivationError(
                f"derivation is not complete: {len(self._composite_ids)} composite "
                "nodes remain"
            )
        nodes = [
            RunNode(node_id=node.node_id, name=node.name, label=node.label)
            for node_id, node in self._nodes.items()
        ]
        edges = [
            RunEdge(source=source, target=target, tag=tag)
            for source, targets in self._out.items()
            for target, tag in targets
        ]
        return Run.from_parts(
            self._spec, nodes, edges, derivation_steps=self._steps, seed=self._seed
        )


def derive_run(
    spec: Specification,
    *,
    seed: int | None = None,
    target_edges: int | None = None,
    max_steps: int = 1_000_000,
    recursion_bias: float = 0.7,
    preferred_productions: Sequence[int] = (),
) -> Run:
    """Derive a complete run, optionally steering its size.

    Parameters
    ----------
    target_edges:
        While the run has fewer edges than this, productions are chosen with a
        bias towards recursive ones (probability ``recursion_bias`` of picking
        a recursive production when the module has one); once the target is
        reached the cheapest-completion production is chosen so the run winds
        down quickly.  ``None`` picks productions uniformly at random.
    preferred_productions:
        Production indices to favour while growing (used by the Kleene-star
        workloads of Section V, which fire one specific fork recursion many
        times and all other recursions only once).
    """
    derivation = Derivation(spec, seed=seed)
    rng = derivation._rng
    recursive = spec.production_graph.recursive_productions
    costs = min_completion_cost(spec)
    preferred = set(preferred_productions)

    def candidates_of(node_id: str, pool: set[int]) -> list[int]:
        module = derivation.node_name(node_id)
        return [index for index in spec.productions_of[module] if index in pool]

    def cheapest(module: str) -> int:
        candidates = spec.productions_of[module]
        return min(
            candidates,
            key=lambda index: len(spec.production(index).body.edges)
            + sum(costs[m] for m in spec.production(index).body.nodes),
        )

    def forced_grow(capable: list[str]) -> None:
        pools = (preferred, recursive) if preferred else (recursive,)
        for pool in pools:
            eligible = [node_id for node_id in capable if candidates_of(node_id, pool)]
            if eligible:
                node_id = rng.choice(eligible)
                derivation.step(node_id, rng.choice(candidates_of(node_id, pool)))
                return

    def grow_step() -> None:
        """One derivation step that keeps the run growing towards the target.

        Nodes able to fire a recursive (or explicitly preferred) production
        form the *growth frontier*.  While the target has not been reached,
        frontier nodes only ever fire recursive productions — terminating one
        early could strand the run far below the requested size — while the
        remaining probability mass expands non-frontier composite nodes
        uniformly so the rest of the specification is explored too.
        """
        growth_pool = (preferred | recursive) if preferred else recursive
        capable = [
            node_id
            for node_id in derivation.composite_nodes
            if candidates_of(node_id, growth_pool)
        ]
        others = [node_id for node_id in derivation.composite_nodes if node_id not in capable]
        if not capable:
            derivation.random_step()
        elif not others or rng.random() < recursion_bias:
            forced_grow(capable)
        else:
            node_id = rng.choice(others)
            module = derivation.node_name(node_id)
            derivation.step(node_id, rng.choice(spec.productions_of[module]))

    while not derivation.is_complete():
        if derivation.steps >= max_steps:
            raise DerivationError(f"derivation exceeded {max_steps} steps")
        if target_edges is None:
            derivation.random_step()
        elif derivation.edge_count < target_edges:
            grow_step()
        else:
            derivation.random_step(production_chooser=cheapest)
    return derivation.to_run()
