"""Workflow specifications: context-free graph grammars (CFGGs).

A :class:`Specification` (Definition 3 of the paper) is ``G = (Σ, Δ, S, P)``
where ``Σ`` is the set of modules, ``Δ ⊆ Σ`` the composite modules, ``S`` the
start module and ``P`` a finite set of productions ``M -> W`` rewriting a
composite module into a :class:`~repro.workflow.simple.SimpleWorkflow`.

Beyond the paper's definitions, the constructor validates the assumptions the
labeling scheme and the query engine rely on:

* every composite module has at least one production and every production
  head is composite,
* every composite module is *productive* (can derive a graph of atomic
  modules only) — otherwise derivations could never terminate,
* the specification is *strictly linear-recursive* (Definition 6): all cycles
  of the production graph are vertex-disjoint, which with multi-edges means
  every non-trivial strongly connected component of the production graph is a
  single elementary cycle.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping, Sequence

from repro.errors import RecursionError_, SpecificationError
from repro.workflow.production_graph import ProductionGraph
from repro.workflow.simple import SimpleWorkflow

__all__ = ["Production", "Specification"]


@dataclass(frozen=True)
class Production:
    """A workflow production ``head -> body`` (Definition 2)."""

    head: str
    body: SimpleWorkflow

    def size(self) -> int:
        """The paper's size measure: 1 + number of modules in the body."""
        return 1 + len(self.body)


class Specification:
    """A workflow specification (context-free graph grammar).

    Parameters
    ----------
    start:
        The start module ``S``; it must be composite.
    productions:
        The productions, in a fixed order.  The index of a production in this
        sequence is the ``k`` of the parse-tree edge labels ``(k, i)``.
    atomic_modules:
        Optionally, the full set of atomic module names.  Modules that appear
        in production bodies but never as a production head are atomic by
        construction; listing them explicitly is only needed for modules that
        appear nowhere (rare) or as documentation.
    """

    def __init__(
        self,
        start: str,
        productions: Sequence[Production],
        atomic_modules: Iterable[str] = (),
        name: str = "workflow",
    ) -> None:
        if not productions:
            raise SpecificationError("a specification needs at least one production")
        self.name = name
        self._start = start
        self._productions: tuple[Production, ...] = tuple(productions)
        heads = {production.head for production in self._productions}
        body_modules = {
            module for production in self._productions for module in production.body.nodes
        }
        self._composites: frozenset[str] = frozenset(heads)
        self._modules: frozenset[str] = frozenset(
            heads | body_modules | set(atomic_modules) | {start}
        )
        explicit_atomics = set(atomic_modules)
        overlap = explicit_atomics & heads
        if overlap:
            raise SpecificationError(
                f"modules {sorted(overlap)} are declared atomic but have productions"
            )
        self._validate()

    # -- accessors -------------------------------------------------------------

    @property
    def start(self) -> str:
        return self._start

    @property
    def productions(self) -> tuple[Production, ...]:
        return self._productions

    @property
    def modules(self) -> frozenset[str]:
        """Σ: all module names."""
        return self._modules

    @property
    def composite_modules(self) -> frozenset[str]:
        """Δ: modules with at least one production."""
        return self._composites

    @property
    def atomic_modules(self) -> frozenset[str]:
        """Σ \\ Δ: modules without productions."""
        return self._modules - self._composites

    def is_composite(self, module: str) -> bool:
        return module in self._composites

    def production(self, index: int) -> Production:
        return self._productions[index]

    @cached_property
    def productions_of(self) -> Mapping[str, tuple[int, ...]]:
        """Map from composite module name to the indices of its productions."""
        mapping: dict[str, list[int]] = {}
        for index, production in enumerate(self._productions):
            mapping.setdefault(production.head, []).append(index)
        return {head: tuple(indices) for head, indices in mapping.items()}

    @cached_property
    def tags(self) -> frozenset[str]:
        """Γ: all edge tags used in production bodies."""
        result: set[str] = set()
        for production in self._productions:
            result |= production.body.tags()
        return frozenset(result)

    @cached_property
    def fingerprint(self) -> str:
        """A stable content hash of the grammar (start, productions, atomics).

        Two :class:`Specification` objects with the same productions share a
        fingerprint even when constructed independently (e.g. a spec reloaded
        from JSON), which is what lets a shared cross-engine cache key
        per-query indexes by ``(spec fingerprint, canonical query)``.  The
        display name is deliberately excluded: renaming a workflow does not
        change its query semantics.
        """
        payload = {
            "start": self._start,
            "atomic": sorted(self.atomic_modules),
            "productions": [
                {
                    "head": production.head,
                    "nodes": list(production.body.nodes),
                    "edges": [
                        [edge.source, edge.target, edge.tag]
                        for edge in production.body.edges
                    ],
                }
                for production in self._productions
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @cached_property
    def production_graph(self) -> ProductionGraph:
        """P(G): the production multigraph (Definition 5)."""
        return ProductionGraph(self)

    @cached_property
    def recursive_modules(self) -> frozenset[str]:
        """Modules lying on a cycle of the production graph."""
        return self.production_graph.recursive_modules

    def is_recursive(self) -> bool:
        """True when the specification has at least one recursive module."""
        return bool(self.recursive_modules)

    def size(self) -> int:
        """The paper's workflow-size measure: sum of production sizes."""
        return sum(production.size() for production in self._productions)

    # -- validation -------------------------------------------------------------

    def _validate(self) -> None:
        if self._start not in self._composites:
            raise SpecificationError(
                f"start module {self._start!r} has no production; the start module "
                "must be composite"
            )
        unproductive = self._unproductive_modules()
        if unproductive:
            raise SpecificationError(
                "composite modules can never terminate (no derivation reaches an "
                f"all-atomic graph): {sorted(unproductive)}"
            )
        graph = self.production_graph
        if not graph.is_strictly_linear_recursive:
            raise RecursionError_(
                "the specification is not strictly linear-recursive: cycles of the "
                "production graph share modules "
                f"(offending modules: {sorted(graph.non_linear_modules)})"
            )

    def _unproductive_modules(self) -> frozenset[str]:
        """Composite modules that cannot derive an all-atomic graph."""
        productive: set[str] = set(self.atomic_modules)
        changed = True
        while changed:
            changed = False
            for production in self._productions:
                if production.head in productive:
                    continue
                if all(module in productive for module in production.body.nodes):
                    productive.add(production.head)
                    changed = True
        return self._composites - productive

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Specification(name={self.name!r}, start={self._start!r}, "
            f"modules={len(self._modules)}, productions={len(self._productions)}, "
            f"size={self.size()})"
        )

    def describe(self) -> str:
        """A multi-line human-readable summary (used by the CLI)."""
        lines = [
            f"specification {self.name!r}",
            f"  start module : {self._start}",
            f"  modules      : {len(self._modules)} "
            f"({len(self._composites)} composite, {len(self.atomic_modules)} atomic)",
            f"  productions  : {len(self._productions)} "
            f"({len(self.production_graph.recursive_productions)} recursive)",
            f"  size         : {self.size()}",
            f"  edge tags    : {len(self.tags)}",
            f"  recursive    : {sorted(self.recursive_modules)}",
        ]
        return "\n".join(lines)
