"""Source loading for the analysis engine.

A :class:`Module` bundles everything a rule needs about one file: the parsed
AST, the raw source lines, the per-line comments (extracted with
:mod:`tokenize`, which is how the ``# guarded-by:`` convention is read), and
the module's *logical* dotted name.  The logical name is what rules scoped to
parts of the project key on (``repro.core.decomposition`` must stay pure,
``repro.cli`` may catch broadly); it is derived from the file's location
under a ``src`` layout, and can be overridden by a first-lines directive::

    # repro-lint-module: repro.core.decomposition

which is how test fixtures exercise module-scoped rules from arbitrary
paths.

A :class:`Project` is the set of modules under analysis plus an index by
logical name, so cross-module rules (operator-protocol completeness checks
``ops.py`` against ``executor.py``) can look their counterparts up.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["Module", "Project", "load_project"]

_MODULE_DIRECTIVE = "# repro-lint-module:"


@dataclass
class Module:
    """One analyzable source file."""

    path: Path
    display_path: str
    logical_name: str
    source: str
    tree: ast.Module
    #: line number -> comment text (including the leading ``#``).
    comments: dict[int, str] = field(default_factory=dict)

    def comment_on(self, line: int) -> str:
        """The comment on a source line (trailing or whole-line), or ``""``."""
        return self.comments.get(line, "")


@dataclass
class Project:
    """All modules of one analysis run, indexed by logical name."""

    modules: list[Module]
    by_name: dict[str, Module] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for module in self.modules:
            self.by_name.setdefault(module.logical_name, module)

    def module(self, logical_name: str) -> Module | None:
        return self.by_name.get(logical_name)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)


def _extract_comments(source: str) -> dict[int, str]:
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except tokenize.TokenError:
        pass  # a syntactically valid file can still end mid-token for tokenize
    return comments


def _logical_name(path: Path, source: str) -> str:
    for raw_line in source.splitlines()[:5]:
        line = raw_line.strip()
        if line.startswith(_MODULE_DIRECTIVE):
            return line[len(_MODULE_DIRECTIVE) :].strip()
    parts = list(path.resolve().parts)
    stem = [*parts[:-1], path.stem] if path.stem != "__init__" else parts[:-1]
    for anchor in ("src", "site-packages"):
        if anchor in stem:
            dotted = stem[stem.index(anchor) + 1 :]
            if dotted:
                return ".".join(dotted)
    return path.stem


def _display_path(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def load_module(path: Path, *, root: Path | None = None) -> Module | None:
    """Parse one file into a :class:`Module`; unparsable files are skipped
    (the Python toolchain itself will report them — syntax errors are not
    this engine's findings)."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    return Module(
        path=path,
        display_path=_display_path(path, root),
        logical_name=_logical_name(path, source),
        source=source,
        tree=tree,
        comments=_extract_comments(source),
    )


def iter_source_files(paths: list[Path]) -> Iterator[Path]:
    """Expand files and directories into ``.py`` files, sorted for stable
    finding order (cache directories are never interesting)."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_project(paths: list[Path], *, root: Path | None = None) -> Project:
    """Load every Python file under the given paths into a :class:`Project`."""
    modules = []
    for file_path in iter_source_files(paths):
        module = load_module(file_path, root=root)
        if module is not None:
            modules.append(module)
    return Project(modules=modules)
