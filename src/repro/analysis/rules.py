"""The project rule catalog.

Each rule encodes one invariant the PR 1-6 architecture depends on:

========  ====================================================================
REP101    lock discipline — attributes declared ``# guarded-by: <lock>`` may
          only be touched inside ``with <self>.<lock>:`` (or in functions
          annotated ``# holds-lock: <lock>``, whose callers hold it)
REP102    process-pool picklability — callables handed to a
          ``ProcessPoolExecutor`` must be module-level (importable by the
          child) and must not be lambdas, closures or bound methods
REP103    planner determinism — planner modules may not import clocks or
          randomness, read ``os.environ``, touch the filesystem, or mutate
          module-level state: plans are cached by canonical key, so planning
          must be a pure function of its inputs
REP104    exception discipline — ``except Exception`` (and broader) only in
          boundary modules; core code catches :class:`~repro.errors.ReproError`
          subclasses (a handler that just cleans up and re-raises is fine)
REP105    streaming discipline — streaming functions (``*_iter``,
          ``stream_pairs``, ...) must not materialize ``*_iter`` results with
          ``list``/``sorted``/``set``/``tuple``/``frozenset``
REP106    operator protocol — every physical operator class in the ops module
          is part of the ``PhysicalOp`` union, exported, and dispatched by the
          executor's ``execute``
REP107    typed defs — every function in the package is fully annotated
          (parameters and return), keeping the ``mypy --strict`` gate honest
          even where mypy is not installed
REP108    lock order — the lock-order graph built from ``with`` nesting
          propagated along call edges must be acyclic; a cycle is a
          potential deadlock, reported with the full acquisition path
REP109    planner purity — no impure effect (clock, randomness, env, file
          IO, global mutation) may be *reachable* from a planner function
          through any resolved call chain; the interprocedural arm of the
          module-scoped REP103
REP110    shared-memory lifecycle — every ``SharedMemory`` segment is bound
          to a name and ``close()``d on all exit paths (``finally`` or an
          except handler), a created segment is also ``unlink()``ed, and
          handing the bare segment to another owner transfers the duty
========  ====================================================================

REP108 and REP109 (and the caller-aware arm of REP101) are *project* rules:
they run once over the whole-program :class:`~repro.analysis.semantic.model.
SemanticModel` via :meth:`Rule.check_project` instead of per module.

Rules are small AST walks over :class:`~repro.analysis.project.Module`
objects; cross-module rules (REP106) look peers up through the
:class:`~repro.analysis.project.Project`.  Register new rules with
:func:`register`; ``repro lint --rules`` lists the catalog.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import AnalysisConfig
    from repro.analysis.semantic.model import SemanticModel

__all__ = ["Rule", "all_rules", "register", "rule_ids"]

_GUARDED_BY = "guarded-by:"
_HOLDS_LOCK = "holds-lock:"


class Rule:
    """One registered invariant check."""

    id: str = ""
    name: str = ""
    description: str = ""
    #: True when :meth:`check_project` needs the semantic model; the engine
    #: builds (or loads from cache) the model only if an active rule asks.
    requires_model: bool = False

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(
        self,
        project: Project,
        config: "AnalysisConfig",
        model: "SemanticModel",
    ) -> Iterator[Finding]:
        """Whole-program pass, run once after the per-module loop."""
        return iter(())

    def finding(self, module: Module, line: int, message: str) -> Finding:
        return Finding(
            path=module.display_path, line=line, rule=self.id, message=message
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    if not rule_class.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in id order."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def _comment_tag(comment: str, tag: str) -> str | None:
    """Extract ``<value>`` from a ``# ... <tag> <value>`` comment."""
    if tag not in comment:
        return None
    value = comment.split(tag, 1)[1].strip()
    return value.split()[0] if value else None


def _func_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


# ---------------------------------------------------------------------------
# REP101 — lock discipline
# ---------------------------------------------------------------------------


@register
class LockDisciplineRule(Rule):
    """``# guarded-by: <lock>`` attributes only under ``with ...<lock>:``."""

    id = "REP101"
    name = "lock-discipline"
    description = (
        "attributes annotated '# guarded-by: <lock>' may only be read or "
        "mutated inside a 'with <lock>' block, in __init__/__post_init__, or "
        "in a function annotated '# holds-lock: <lock>' — and every resolved "
        "call site of a holds-lock function must actually hold the lock"
    )
    requires_model = True

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        guarded = self._guarded_attributes(module)
        if not guarded:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, guarded)

    def check_project(
        self,
        project: Project,
        config: "AnalysisConfig",
        model: "SemanticModel",
    ) -> Iterator[Finding]:
        """Verify ``# holds-lock:`` against every resolved call site: the
        annotation is a promise about callers, so the per-module check
        trusts it and this pass collects the receipts."""
        for site in model.graph.calls:
            callee = model.graph.functions.get(site.callee)
            caller = model.graph.functions.get(site.caller)
            if callee is None or caller is None or not callee.holds_locks:
                continue
            for lock in callee.holds_locks:
                if lock not in site.bare_held:
                    yield Finding(
                        path=caller.display_path,
                        line=site.line,
                        rule=self.id,
                        message=(
                            f"call to '{callee.qualname}' (annotated "
                            f"'# holds-lock: {lock}') from '{caller.qualname}' "
                            f"without holding '{lock}' — the annotation "
                            "promises every caller already holds it"
                        ),
                    )

    @staticmethod
    def _guarded_attributes(module: Module) -> dict[str, str]:
        """``attribute name -> lock name`` declared anywhere in the module.

        Declarations are recognized on ``self.<attr> = ...`` statements and
        on class-body (ann-)assignments carrying a ``# guarded-by: <lock>``
        comment; attribute names are private in practice, so one module-wide
        namespace keeps the rule simple and catches friend access from
        module-level helper functions too.
        """
        guarded: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            lock = _comment_tag(module.comment_on(node.lineno), _GUARDED_BY)
            if lock is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    guarded[target.attr] = lock
                elif isinstance(target, ast.Name):
                    guarded[target.id] = lock
        return guarded

    def _check_function(
        self,
        module: Module,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: dict[str, str],
    ) -> Iterator[Finding]:
        if func.name in ("__init__", "__post_init__"):
            return
        held: set[str] = set()
        for line in (func.lineno, getattr(func.body[0], "lineno", func.lineno)):
            declared = _comment_tag(module.comment_on(line), _HOLDS_LOCK)
            if declared is not None:
                held.add(declared)
        yield from self._walk(module, func.body, guarded, frozenset(held))

    def _walk(
        self,
        module: Module,
        body: list[ast.stmt],
        guarded: dict[str, str],
        held: frozenset[str],
    ) -> Iterator[Finding]:
        for statement in body:
            yield from self._walk_statement(module, statement, guarded, held)

    def _walk_statement(
        self,
        module: Module,
        statement: ast.stmt,
        guarded: dict[str, str],
        held: frozenset[str],
    ) -> Iterator[Finding]:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function does not run under the enclosing with-block.
            yield from self._check_function(module, statement, guarded)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in statement.items:
                acquired |= self._locks_in(item.context_expr)
            for item in statement.items:
                yield from self._check_expr(module, item.context_expr, guarded, held)
            yield from self._walk(module, statement.body, guarded, frozenset(acquired))
            return
        for child_body in (
            getattr(statement, "body", None),
            getattr(statement, "orelse", None),
            getattr(statement, "finalbody", None),
        ):
            if isinstance(child_body, list) and child_body:
                if isinstance(child_body[0], ast.stmt):
                    yield from self._walk(module, child_body, guarded, held)
        if isinstance(statement, ast.Try):
            for handler in statement.handlers:
                yield from self._walk(module, handler.body, guarded, held)
        for expression in ast.iter_child_nodes(statement):
            if isinstance(expression, ast.expr):
                yield from self._check_expr(module, expression, guarded, held)

    @staticmethod
    def _locks_in(expression: ast.expr) -> set[str]:
        locks = set()
        for node in ast.walk(expression):
            if isinstance(node, ast.Attribute):
                locks.add(node.attr)
            elif isinstance(node, ast.Name):
                locks.add(node.id)
        return locks

    def _check_expr(
        self,
        module: Module,
        expression: ast.expr,
        guarded: dict[str, str],
        held: frozenset[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(expression):
            if isinstance(node, ast.Lambda):
                continue  # deferred execution; too dynamic to judge here
            if not isinstance(node, ast.Attribute):
                continue
            lock = guarded.get(node.attr)
            if lock is not None and lock not in held:
                access = "write to" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read of"
                yield self.finding(
                    module,
                    node.lineno,
                    f"{access} '{node.attr}' (guarded-by: {lock}) outside "
                    f"'with {lock}' (annotate the function '# holds-lock: "
                    f"{lock}' if every caller holds it)",
                )


# ---------------------------------------------------------------------------
# REP102 — process-pool picklability
# ---------------------------------------------------------------------------


@register
class PicklableSubmitRule(Rule):
    """Process pools only run module-level callables with plain-data args."""

    id = "REP102"
    name = "picklable-submit"
    description = (
        "callables submitted to a ProcessPoolExecutor (submit target, "
        "initializer) must be module-level functions or imported names — "
        "never lambdas, nested functions or bound methods — and submit "
        "arguments must not be lambdas"
    )

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        module_level = self._module_level_names(module.tree)
        nested = self._nested_function_names(module.tree)
        for scope in self._scopes(module.tree):
            own_nodes = list(self._own_nodes(scope))
            pools = self._process_pool_names(own_nodes)
            for node in own_nodes:
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pools
                    and node.args
                ):
                    yield from self._check_callable(
                        module, node.args[0], module_level, nested, "submitted to"
                    )
                    for argument in node.args[1:]:
                        if isinstance(argument, ast.Lambda):
                            yield self.finding(
                                module,
                                argument.lineno,
                                "lambda passed as a process-pool task argument "
                                "is not picklable; pass plain data",
                            )
                if _func_name(node.func) == "ProcessPoolExecutor":
                    for keyword in node.keywords:
                        if keyword.arg == "initializer":
                            yield from self._check_callable(
                                module,
                                keyword.value,
                                module_level,
                                nested,
                                "used as initializer of",
                            )

    @staticmethod
    def _scopes(tree: ast.Module) -> Iterator[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @classmethod
    def _own_nodes(cls, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function scopes, so a
        pool variable in one function never taints another's submits."""
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield child
            yield from cls._own_nodes(child)

    @staticmethod
    def _process_pool_names(own_nodes: list[ast.AST]) -> set[str]:
        """Names assigned ``ProcessPoolExecutor(...)`` in this scope (the
        rule stays scope-local on purpose: a pool received as an argument may
        legitimately be a thread pool)."""
        pools: set[str] = set()
        for node in own_nodes:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _func_name(node.value.func) == "ProcessPoolExecutor":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            pools.add(target.id)
        return pools

    @staticmethod
    def _module_level_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for statement in tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(statement.name)
            elif isinstance(statement, ast.Import):
                names.update(alias.asname or alias.name.split(".")[0] for alias in statement.names)
            elif isinstance(statement, ast.ImportFrom):
                names.update(alias.asname or alias.name for alias in statement.names)
            elif isinstance(statement, ast.Assign):
                names.update(
                    target.id for target in statement.targets if isinstance(target, ast.Name)
                )
        return names

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> set[str]:
        nested: set[str] = set()
        for outer in ast.walk(tree):
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(outer):
                    if inner is not outer and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        nested.add(inner.name)
        return nested

    def _check_callable(
        self,
        module: Module,
        candidate: ast.expr,
        module_level: set[str],
        nested: set[str],
        role: str,
    ) -> Iterator[Finding]:
        if isinstance(candidate, ast.Lambda):
            yield self.finding(
                module,
                candidate.lineno,
                f"lambda {role} a process pool cannot be pickled; "
                "use a module-level function",
            )
        elif isinstance(candidate, ast.Attribute):
            yield self.finding(
                module,
                candidate.lineno,
                f"bound method or attribute '{ast.unparse(candidate)}' {role} a "
                "process pool would pickle its receiver; use a module-level "
                "function taking plain data",
            )
        elif isinstance(candidate, ast.Name):
            if candidate.id in nested and candidate.id not in module_level:
                yield self.finding(
                    module,
                    candidate.lineno,
                    f"nested function '{candidate.id}' {role} a process pool "
                    "cannot be pickled; move it to module level",
                )


# ---------------------------------------------------------------------------
# REP103 — planner determinism
# ---------------------------------------------------------------------------

_NONDETERMINISTIC_MODULES = frozenset(
    {"time", "random", "secrets", "uuid", "datetime", "tempfile"}
)
_ENV_ATTRS = frozenset({"environ", "urandom", "getenv", "getrandom"})
_MUTATORS = frozenset(
    {"append", "add", "update", "setdefault", "pop", "popitem", "clear",
     "extend", "insert", "remove", "discard"}
)


@register
class PlannerDeterminismRule(Rule):
    """Planner modules stay pure: plans are cached by canonical key."""

    id = "REP103"
    name = "planner-determinism"
    description = (
        "planner modules (decomposition, optimizer, exec.plan) may not use "
        "clocks, randomness, environment variables, file IO or module-level "
        "mutable state — cached plans must be pure functions of their inputs"
    )

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        if module.logical_name not in config.determinism_modules:
            return
        mutable_globals = self._mutable_globals(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _NONDETERMINISTIC_MODULES:
                        yield self.finding(
                            module, node.lineno,
                            f"import of nondeterministic module '{alias.name}' in a planner module",
                        )
            elif isinstance(node, ast.ImportFrom):
                top = (node.module or "").split(".")[0]
                if top in _NONDETERMINISTIC_MODULES:
                    yield self.finding(
                        module, node.lineno,
                        f"import from nondeterministic module '{node.module}' in a planner module",
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "os"
                    and node.attr in _ENV_ATTRS
                ):
                    yield self.finding(
                        module, node.lineno,
                        f"'os.{node.attr}' read in a planner module makes cached plans "
                        "depend on ambient state",
                    )
            elif isinstance(node, ast.Global):
                yield self.finding(
                    module, node.lineno,
                    f"'global {', '.join(node.names)}' in a planner module: cached "
                    "plans must not depend on module-level mutable state",
                )
            elif isinstance(node, ast.Call) and _func_name(node.func) == "open":
                yield self.finding(
                    module, node.lineno, "file IO in a planner module"
                )
        yield from self._check_global_mutation(module, mutable_globals)

    @staticmethod
    def _mutable_globals(tree: ast.Module) -> set[str]:
        """Module-level names bound to mutable literals/constructors."""
        mutable: set[str] = set()
        for statement in tree.body:
            if isinstance(statement, ast.Assign):
                value = statement.value
                is_mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                    isinstance(value, ast.Call)
                    and _func_name(value.func) in ("dict", "list", "set", "defaultdict")
                )
                if is_mutable:
                    mutable.update(
                        target.id
                        for target in statement.targets
                        if isinstance(target, ast.Name)
                    )
        return mutable

    def _check_global_mutation(
        self, module: Module, mutable_globals: set[str]
    ) -> Iterator[Finding]:
        if not mutable_globals:
            return
        for outer in ast.walk(module.tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(outer):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in mutable_globals
                ):
                    yield self.finding(
                        module, node.lineno,
                        f"mutation of module-level '{node.func.value.id}' from a "
                        "planner function: plans are cached, so planner state must "
                        "live on the plan",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in mutable_globals
                        ):
                            yield self.finding(
                                module, node.lineno,
                                f"subscript write to module-level "
                                f"'{target.value.id}' from a planner function",
                            )


# ---------------------------------------------------------------------------
# REP104 — exception discipline
# ---------------------------------------------------------------------------


@register
class BroadExceptRule(Rule):
    """Broad exception handlers only at process boundaries."""

    id = "REP104"
    name = "broad-except"
    description = (
        "'except Exception' (or broader) is only allowed in boundary modules "
        "(CLI, service, store); core code catches ReproError subclasses or "
        "specific exceptions — a handler whose last statement is a bare "
        "'raise' is cleanup, not swallowing, and is allowed anywhere"
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        if module.logical_name in config.boundary_modules:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._caught_names(node.type)
            broad = node.type is None or (caught & self._BROAD)
            if not broad:
                continue
            last = node.body[-1] if node.body else None
            if isinstance(last, ast.Raise) and last.exc is None:
                continue  # cleanup + re-raise
            label = "bare 'except:'" if node.type is None else (
                f"'except {', '.join(sorted(caught & self._BROAD))}'"
            )
            yield self.finding(
                module, node.lineno,
                f"{label} outside a boundary module swallows bugs; catch a "
                "ReproError subclass or the specific exceptions this call "
                "can raise",
            )

    @staticmethod
    def _caught_names(expression: ast.expr | None) -> set[str]:
        if expression is None:
            return set()
        names = set()
        candidates = (
            list(expression.elts) if isinstance(expression, ast.Tuple) else [expression]
        )
        for candidate in candidates:
            name = _func_name(candidate) or (
                candidate.id if isinstance(candidate, ast.Name) else ""
            )
            if name:
                names.add(name)
        return names


# ---------------------------------------------------------------------------
# REP105 — streaming discipline
# ---------------------------------------------------------------------------

_MATERIALIZERS = frozenset({"list", "sorted", "set", "tuple", "frozenset", "dict"})


@register
class StreamingDisciplineRule(Rule):
    """Streaming paths must not materialize ``*_iter`` results."""

    id = "REP105"
    name = "streaming-discipline"
    description = (
        "inside streaming functions (*_iter, stream_pairs, iter_batch) the "
        "result of a *_iter call may not be materialized with "
        "list/sorted/set/tuple/frozenset/dict — that silently turns a "
        "constant-memory path into a result-sized one"
    )

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_streaming(node.name, config):
                continue
            yield from self._check_streaming_function(module, node)

    @staticmethod
    def _is_streaming(name: str, config: "AnalysisConfig") -> bool:
        return name.endswith("_iter") or name in config.streaming_functions

    def _check_streaming_function(
        self, module: Module, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        iter_bound: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._is_iter_call(node.value):
                iter_bound.update(
                    target.id for target in node.targets if isinstance(target, ast.Name)
                )
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = _func_name(node.func)
            if name not in _MATERIALIZERS or not node.args:
                continue
            argument = node.args[0]
            streams = self._is_iter_call(argument) or (
                isinstance(argument, ast.Name) and argument.id in iter_bound
            )
            if streams:
                yield self.finding(
                    module, node.lineno,
                    f"'{name}(...)' materializes a *_iter stream inside "
                    f"streaming function '{func.name}'; keep the path lazy "
                    "or move the materialization to the non-streaming API",
                )

    @staticmethod
    def _is_iter_call(expression: ast.expr) -> bool:
        return isinstance(expression, ast.Call) and _func_name(
            expression.func
        ).endswith("_iter")


# ---------------------------------------------------------------------------
# REP106 — operator protocol completeness
# ---------------------------------------------------------------------------


@register
class OperatorProtocolRule(Rule):
    """Every physical operator is unioned, exported and executable."""

    id = "REP106"
    name = "operator-protocol"
    description = (
        "every '*Op' class in the ops module must be a member of the "
        "PhysicalOp union, listed in __all__, and dispatched by the "
        "executor's execute() — adding an operator without executor support "
        "must fail lint, not raise at query time"
    )

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        if module.logical_name != config.ops_module:
            return
        operators = {
            node.name: node.lineno
            for node in module.tree.body
            if isinstance(node, ast.ClassDef) and node.name.endswith("Op")
        }
        if not operators:
            return
        union_members = self._union_members(module.tree, "PhysicalOp")
        exported = self._dunder_all(module.tree)
        for name, line in sorted(operators.items()):
            if union_members is not None and name not in union_members:
                yield self.finding(
                    module, line,
                    f"operator '{name}' is missing from the PhysicalOp union",
                )
            if exported is not None and name not in exported:
                yield self.finding(
                    module, line, f"operator '{name}' is missing from __all__"
                )
        if union_members is None:
            first = min(operators.values())
            yield self.finding(
                module, first,
                "ops module defines operators but no 'PhysicalOp = ... | ...' union",
            )
        executor = project.module(config.executor_module)
        if executor is None:
            return
        dispatched = self._names_in_function(executor.tree, "execute")
        if dispatched is None:
            yield self.finding(
                module, 1,
                f"executor module '{config.executor_module}' has no execute() "
                "to dispatch the operators",
            )
            return
        for name, line in sorted(operators.items()):
            if name not in dispatched:
                yield self.finding(
                    module, line,
                    f"operator '{name}' is not dispatched by "
                    f"{config.executor_module}.execute() — executing a plan "
                    "with it would raise at query time",
                )

    @staticmethod
    def _union_members(tree: ast.Module, union_name: str) -> set[str] | None:
        for statement in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                targets, value = [statement.target], statement.value
            if not any(
                isinstance(target, ast.Name) and target.id == union_name
                for target in targets
            ):
                continue
            members = set()
            assert value is not None
            for node in ast.walk(value):
                if isinstance(node, ast.Name):
                    members.add(node.id)
            return members
        return None

    @staticmethod
    def _dunder_all(tree: ast.Module) -> set[str] | None:
        for statement in tree.body:
            if isinstance(statement, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "__all__"
                for target in statement.targets
            ):
                return {
                    node.value
                    for node in ast.walk(statement.value)
                    if isinstance(node, ast.Constant) and isinstance(node.value, str)
                }
        return None

    @staticmethod
    def _names_in_function(tree: ast.Module, function_name: str) -> set[str] | None:
        for statement in tree.body:
            if (
                isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                and statement.name == function_name
            ):
                return {
                    node.id
                    for node in ast.walk(statement)
                    if isinstance(node, ast.Name)
                }
        return None


# ---------------------------------------------------------------------------
# REP107 — typed defs
# ---------------------------------------------------------------------------


@register
class TypedDefRule(Rule):
    """Every function in the package carries full annotations."""

    id = "REP107"
    name = "typed-def"
    description = (
        "every function and method in the package must annotate all "
        "parameters and its return type — the local enforcement arm of the "
        "'mypy --strict' CI gate"
    )

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        if not module.logical_name.startswith(config.typed_prefix):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = self._missing_annotations(node)
            if missing:
                yield self.finding(
                    module, node.lineno,
                    f"function '{node.name}' is missing annotations: "
                    f"{', '.join(missing)}",
                )

    @staticmethod
    def _missing_annotations(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        missing = []
        arguments = func.args
        positional = arguments.posonlyargs + arguments.args
        for index, argument in enumerate(positional):
            if index == 0 and argument.arg in ("self", "cls"):
                continue
            if argument.annotation is None:
                missing.append(f"parameter '{argument.arg}'")
        for argument in arguments.kwonlyargs:
            if argument.annotation is None:
                missing.append(f"parameter '{argument.arg}'")
        if arguments.vararg is not None and arguments.vararg.annotation is None:
            missing.append(f"parameter '*{arguments.vararg.arg}'")
        if arguments.kwarg is not None and arguments.kwarg.annotation is None:
            missing.append(f"parameter '**{arguments.kwarg.arg}'")
        if func.returns is None:
            missing.append("return type")
        return missing


# ---------------------------------------------------------------------------
# REP108 — lock order (whole-program)
# ---------------------------------------------------------------------------


@register
class LockOrderRule(Rule):
    """The lock-order graph must be acyclic: cycles are deadlock schedules."""

    id = "REP108"
    name = "lock-order"
    description = (
        "lock acquisitions must follow one global order: the lock-order "
        "graph (an edge A -> B whenever B is acquired while A is held, "
        "directly or through any resolved call chain) must be acyclic — a "
        "cycle is a potential deadlock and is reported with the full "
        "acquisition path"
    )
    requires_model = True

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self,
        project: Project,
        config: "AnalysisConfig",
        model: "SemanticModel",
    ) -> Iterator[Finding]:
        graph = model.lock_graph
        for cycle in graph.cycles:
            members = set(cycle)
            witnesses = [
                edge
                for edge in graph.edges
                if edge.source in members and edge.target in members
            ]
            anchor = min(witnesses, key=lambda e: (e.path, e.line))
            order = ", ".join(cycle)
            path = "; ".join(edge.witness for edge in witnesses)
            yield Finding(
                path=anchor.path,
                line=anchor.line,
                rule=self.id,
                message=(
                    f"potential deadlock: lock-order cycle among {{{order}}} "
                    f"— {path}; pick one global acquisition order and "
                    "restructure the later acquisition out of the earlier "
                    "lock's critical section"
                ),
            )


# ---------------------------------------------------------------------------
# REP109 — planner purity by reachability (whole-program)
# ---------------------------------------------------------------------------


@register
class PlannerPurityRule(Rule):
    """No impure effect reachable from planner entry points."""

    id = "REP109"
    name = "planner-purity"
    description = (
        "no impure effect (clock, randomness, env, file IO, global "
        "mutation) may be reachable from a planner function through any "
        "resolved call chain — the interprocedural arm of REP103, which "
        "only inspects the planner modules themselves"
    )
    requires_model = True

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self,
        project: Project,
        config: "AnalysisConfig",
        model: "SemanticModel",
    ) -> Iterator[Finding]:
        for qualified in sorted(model.graph.functions):
            info = model.graph.functions[qualified]
            if info.module not in config.determinism_modules:
                continue
            for effect in sorted(model.effects.get(qualified, frozenset())):
                witness = model.witness(qualified, effect)
                chain = " -> ".join(witness) if witness else qualified
                yield Finding(
                    path=info.display_path,
                    line=info.lineno,
                    rule=self.id,
                    message=(
                        f"planner function '{info.qualname}' reaches impure "
                        f"effect '{effect}' via {chain} — cached plans must "
                        "be pure functions of their inputs"
                    ),
                )

# ---------------------------------------------------------------------------
# REP110 — shared-memory lifecycle
# ---------------------------------------------------------------------------

_SEGMENT_CLEANUP = frozenset({"close", "unlink"})


@register
class SharedMemoryLifecycleRule(Rule):
    """Shared-memory segments are closed — and creations unlinked — on
    every exit path, or handed whole to another owner."""

    id = "REP110"
    name = "shared-memory-lifecycle"
    description = (
        "every multiprocessing SharedMemory segment must be bound to a name "
        "and close()d on all exit paths — in a 'finally' block or an except "
        "handler — and a create=True segment must also be unlink()ed; "
        "passing, returning or storing the bare segment hands the duty to "
        "the new owner instead"
    )

    def check(
        self, module: Module, project: Project, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        # Scope-local like REP102: a segment bound in one function never
        # discharges (or pollutes) the obligations of another.
        for scope in PicklableSubmitRule._scopes(module.tree):
            yield from self._check_scope(module, scope.body)

    def _check_scope(
        self, module: Module, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        segments = self._segment_bindings(body)
        yield from self._unbound_segments(module, body, segments)
        if not segments:
            return
        cleanup: dict[tuple[str, str], bool] = {}
        escaped: set[str] = set()
        self._scan(body, False, set(segments), cleanup, escaped)
        for name, (line, created) in sorted(segments.items()):
            if name in escaped:
                continue  # ownership handed off whole; the new owner closes
            if not cleanup.get((name, "close"), False):
                sure = (name, "close") in cleanup
                yield self.finding(
                    module, line,
                    f"shared-memory segment '{name}' is "
                    + ("only close()d on the happy path" if sure else "never close()d")
                    + " — call close() in a 'finally' block or an except "
                    "handler so every exit path releases the mapping",
                )
            if created and (name, "unlink") not in cleanup:
                yield self.finding(
                    module, line,
                    f"shared-memory segment '{name}' is created "
                    "(create=True) but never unlink()ed — the creating owner "
                    "must destroy the backing segment, not just its mapping",
                )

    # -- collection --------------------------------------------------------

    @staticmethod
    def _is_segment_call(node: ast.expr) -> bool:
        return isinstance(node, ast.Call) and _func_name(node.func) == "SharedMemory"

    @staticmethod
    def _creates(call: ast.Call) -> bool:
        return any(
            keyword.arg == "create"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in call.keywords
        )

    def _segment_bindings(self, body: list[ast.stmt]) -> dict[str, tuple[int, bool]]:
        """``name -> (line, created)`` for ``name = SharedMemory(...)``."""
        segments: dict[str, tuple[int, bool]] = {}
        for node in self._own_walk(body):
            value: ast.expr | None = None
            names: list[str] = []
            if isinstance(node, ast.Assign):
                value = node.value
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                if isinstance(node.target, ast.Name):
                    names = [node.target.id]
            elif isinstance(node, ast.NamedExpr):
                value = node.value
                if isinstance(node.target, ast.Name):
                    names = [node.target.id]
            if value is not None and names and self._is_segment_call(value):
                assert isinstance(value, ast.Call)
                for name in names:
                    segments[name] = (value.lineno, self._creates(value))
        return segments

    def _unbound_segments(
        self,
        module: Module,
        body: list[ast.stmt],
        segments: dict[str, tuple[int, bool]],
    ) -> Iterator[Finding]:
        bound_lines = {line for line, _ in segments.values()}
        for node in self._own_walk(body):
            if self._is_segment_call(node) and node.lineno not in bound_lines:
                yield self.finding(
                    module, node.lineno,
                    "SharedMemory segment is never bound to a name, so no "
                    "exit path can close() it; bind it and pair the binding "
                    "with close() (and unlink() when created)",
                )

    @classmethod
    def _own_walk(cls, body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Every node in this scope, nested function scopes excluded."""
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield statement
            yield from PicklableSubmitRule._own_nodes(statement)

    # -- obligations -------------------------------------------------------

    def _scan(
        self,
        statements: list[ast.stmt],
        protected: bool,
        names: set[str],
        cleanup: dict[tuple[str, str], bool],
        escaped: set[str],
    ) -> None:
        """Record cleanup calls (with whether they sit on a guaranteed-exit
        block) and whole-segment ownership hand-offs."""
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(statement, ast.Try):
                self._scan(statement.body, protected, names, cleanup, escaped)
                for handler in statement.handlers:
                    self._scan(handler.body, True, names, cleanup, escaped)
                self._scan(statement.orelse, protected, names, cleanup, escaped)
                self._scan(statement.finalbody, True, names, cleanup, escaped)
                continue
            self._record(statement, protected, names, cleanup, escaped)
            for field in ("body", "orelse"):
                block = getattr(statement, field, None)
                if isinstance(block, list):
                    self._scan(block, protected, names, cleanup, escaped)

    def _record(
        self,
        statement: ast.stmt,
        protected: bool,
        names: set[str],
        cleanup: dict[tuple[str, str], bool],
        escaped: set[str],
    ) -> None:
        for node in (statement, *PicklableSubmitRule._own_nodes(statement)):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _SEGMENT_CLEANUP
                    and isinstance(func.value, ast.Name)
                    and func.value.id in names
                ):
                    key = (func.value.id, func.attr)
                    cleanup[key] = cleanup.get(key, False) or protected
                else:
                    escaped.update(
                        argument.id
                        for argument in node.args
                        if isinstance(argument, ast.Name) and argument.id in names
                    )
            elif isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                escaped.update(self._bare_names(node.value) & names)
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    for target in node.targets
                ):
                    escaped.update(self._bare_names(node.value) & names)

    @staticmethod
    def _bare_names(expression: ast.expr) -> set[str]:
        """The name itself, or names that are direct elements of a
        tuple/list — a segment inside a larger expression stays owned here."""
        if isinstance(expression, ast.Name):
            return {expression.id}
        if isinstance(expression, (ast.Tuple, ast.List)):
            return {
                element.id
                for element in expression.elts
                if isinstance(element, ast.Name)
            }
        return set()
