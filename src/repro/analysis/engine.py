"""Driving the rules over a project.

:func:`run_analysis` is the one entry point: load the files, run every
selected rule over every module, and return the findings sorted by
``(path, line, rule)`` so output (and ``--json``) is stable across runs and
platforms.  :class:`AnalysisConfig` carries the project-shape knowledge the
rules need — which modules are planners, which are boundaries, where the
operator catalog and the executor live — with defaults matching this
repository, overridable for tests and fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.project import Project, load_project
from repro.analysis.rules import Rule, all_rules

__all__ = ["AnalysisConfig", "analyze_project", "run_analysis"]


def _default_determinism_modules() -> frozenset[str]:
    return frozenset(
        {
            "repro.core.decomposition",
            "repro.core.optimizer",
            "repro.core.exec.plan",
        }
    )


def _default_boundary_modules() -> frozenset[str]:
    return frozenset({"repro.cli", "repro.service.service", "repro.store.store"})


def _default_streaming_functions() -> frozenset[str]:
    return frozenset({"stream_pairs", "iter_batch"})


@dataclass(frozen=True)
class AnalysisConfig:
    """Project-shape knowledge shared by the rules."""

    #: planner modules that must stay deterministic (REP103).
    determinism_modules: frozenset[str] = field(
        default_factory=_default_determinism_modules
    )
    #: modules allowed to catch broad exceptions (REP104).
    boundary_modules: frozenset[str] = field(default_factory=_default_boundary_modules)
    #: streaming function names beyond the ``*_iter`` pattern (REP105).
    streaming_functions: frozenset[str] = field(
        default_factory=_default_streaming_functions
    )
    #: module holding the physical operator catalog (REP106).
    ops_module: str = "repro.core.exec.ops"
    #: module whose ``execute()`` must dispatch every operator (REP106).
    executor_module: str = "repro.core.exec.executor"
    #: logical-name prefix under which full annotations are required (REP107).
    typed_prefix: str = "repro."


def analyze_project(
    project: Project,
    *,
    config: AnalysisConfig | None = None,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Run rules over an already-loaded project (the test-fixture path)."""
    active_config = config if config is not None else AnalysisConfig()
    active_rules = rules if rules is not None else all_rules()
    findings: list[Finding] = []
    for module in project:
        for rule in active_rules:
            findings.extend(rule.check(module, project, active_config))
    return sorted(findings)


def run_analysis(
    paths: list[Path],
    *,
    root: Path | None = None,
    config: AnalysisConfig | None = None,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Load ``paths`` and run the (selected) rules; findings come back
    sorted by ``(path, line, rule, message)``."""
    project = load_project(paths, root=root)
    return analyze_project(project, config=config, rules=rules)
