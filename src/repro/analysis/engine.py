"""Driving the rules over a project.

:func:`run_analysis` is the findings-only entry point: load the files, run
every selected rule over every module, and return the findings sorted by
``(path, line, rule)`` so output (and ``--json``) is stable across runs and
platforms.  :func:`analyze_paths` is the richer front-end used by the CLI:
it additionally builds (or loads from the digest-keyed disk cache) the
whole-program :class:`~repro.analysis.semantic.model.SemanticModel` when an
active rule declares ``requires_model``, runs the project-level
``check_project`` passes, and reports :class:`AnalysisStatistics` — per-rule
finding counts plus the call-graph and lock-graph totals CI logs surface.

:class:`AnalysisConfig` carries the project-shape knowledge the rules need —
which modules are planners, which are boundaries, where the operator catalog
and the executor live — with defaults matching this repository, overridable
for tests and fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.project import Project, load_project
from repro.analysis.rules import Rule, all_rules
from repro.analysis.semantic.model import (
    SemanticModel,
    build_semantic_model,
    load_cached_model,
    save_model,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "AnalysisStatistics",
    "analyze_paths",
    "analyze_project",
    "run_analysis",
]


def _default_determinism_modules() -> frozenset[str]:
    return frozenset(
        {
            "repro.core.decomposition",
            "repro.core.optimizer",
            "repro.core.exec.plan",
        }
    )


def _default_boundary_modules() -> frozenset[str]:
    return frozenset({"repro.cli", "repro.service.service", "repro.store.store"})


def _default_streaming_functions() -> frozenset[str]:
    return frozenset({"stream_pairs", "iter_batch"})


@dataclass(frozen=True)
class AnalysisConfig:
    """Project-shape knowledge shared by the rules."""

    #: planner modules that must stay deterministic (REP103, REP109).
    determinism_modules: frozenset[str] = field(
        default_factory=_default_determinism_modules
    )
    #: modules allowed to catch broad exceptions (REP104).
    boundary_modules: frozenset[str] = field(default_factory=_default_boundary_modules)
    #: streaming function names beyond the ``*_iter`` pattern (REP105).
    streaming_functions: frozenset[str] = field(
        default_factory=_default_streaming_functions
    )
    #: module holding the physical operator catalog (REP106).
    ops_module: str = "repro.core.exec.ops"
    #: module whose ``execute()`` must dispatch every operator (REP106).
    executor_module: str = "repro.core.exec.executor"
    #: logical-name prefix under which full annotations are required (REP107).
    typed_prefix: str = "repro."


@dataclass(frozen=True)
class AnalysisStatistics:
    """Coverage numbers for ``--statistics`` output: what was analyzed, not
    just whether it passed."""

    modules: int
    functions: int
    call_edges: int
    total_calls: int
    unresolved_calls: int
    locks: int
    lock_order_edges: int
    lock_cycles: int
    rule_findings: dict[str, int]

    def to_payload(self) -> dict[str, object]:
        return {
            "modules": self.modules,
            "functions": self.functions,
            "call_edges": self.call_edges,
            "total_calls": self.total_calls,
            "unresolved_calls": self.unresolved_calls,
            "locks": self.locks,
            "lock_order_edges": self.lock_order_edges,
            "lock_cycles": self.lock_cycles,
            "rule_findings": dict(sorted(self.rule_findings.items())),
        }


@dataclass
class AnalysisResult:
    """Findings plus the semantic model and coverage statistics."""

    findings: list[Finding]
    model: SemanticModel | None
    statistics: AnalysisStatistics
    cache_hit: bool = False


def analyze_project(
    project: Project,
    *,
    config: AnalysisConfig | None = None,
    rules: list[Rule] | None = None,
    model: SemanticModel | None = None,
) -> list[Finding]:
    """Run rules over an already-loaded project (the test-fixture path).

    The semantic model is built on demand when an active rule needs it and
    none was passed in; callers holding a cached model pass it to skip the
    build.
    """
    active_config = config if config is not None else AnalysisConfig()
    active_rules = rules if rules is not None else all_rules()
    if model is None and any(rule.requires_model for rule in active_rules):
        model = build_semantic_model(project)
    findings: list[Finding] = []
    for module in project:
        for rule in active_rules:
            findings.extend(rule.check(module, project, active_config))
    if model is not None:
        for rule in active_rules:
            findings.extend(rule.check_project(project, active_config, model))
    return sorted(findings)


def _statistics(
    project: Project,
    model: SemanticModel | None,
    rules: list[Rule],
    findings: list[Finding],
) -> AnalysisStatistics:
    per_rule = {rule.id: 0 for rule in rules}
    for finding in findings:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    if model is None:
        return AnalysisStatistics(
            modules=len(project.modules),
            functions=0,
            call_edges=0,
            total_calls=0,
            unresolved_calls=0,
            locks=0,
            lock_order_edges=0,
            lock_cycles=0,
            rule_findings=per_rule,
        )
    return AnalysisStatistics(
        modules=len(project.modules),
        functions=len(model.graph.functions),
        call_edges=len(model.graph.calls),
        total_calls=model.graph.total_calls,
        unresolved_calls=model.graph.unresolved_calls,
        locks=len(model.lock_graph.locks),
        lock_order_edges=len(model.lock_graph.edges),
        lock_cycles=len(model.lock_graph.cycles),
        rule_findings=per_rule,
    )


def analyze_paths(
    paths: list[Path],
    *,
    root: Path | None = None,
    config: AnalysisConfig | None = None,
    rules: list[Rule] | None = None,
    semantic_cache: Path | None = None,
    want_model: bool = False,
) -> AnalysisResult:
    """Load ``paths``, run the (selected) rules, and return findings with
    the semantic model and statistics.

    ``semantic_cache`` names the digest-keyed model cache shared between
    ``repro lint`` and ``repro analyze``; a stale or corrupt cache file is
    simply rebuilt.  ``want_model`` forces the model even when no selected
    rule needs it (``repro analyze`` with no rules at all).
    """
    project = load_project(paths, root=root)
    active_rules = rules if rules is not None else all_rules()
    need_model = want_model or any(rule.requires_model for rule in active_rules)
    model: SemanticModel | None = None
    cache_hit = False
    if need_model:
        if semantic_cache is not None:
            model = load_cached_model(semantic_cache, project)
            cache_hit = model is not None
        if model is None:
            model = build_semantic_model(project)
            if semantic_cache is not None:
                save_model(model, semantic_cache)
    findings = analyze_project(
        project, config=config, rules=active_rules, model=model
    )
    return AnalysisResult(
        findings=findings,
        model=model,
        statistics=_statistics(project, model, active_rules, findings),
        cache_hit=cache_hit,
    )


def run_analysis(
    paths: list[Path],
    *,
    root: Path | None = None,
    config: AnalysisConfig | None = None,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Load ``paths`` and run the (selected) rules; findings come back
    sorted by ``(path, line, rule, message)``."""
    return analyze_paths(paths, root=root, config=config, rules=rules).findings
