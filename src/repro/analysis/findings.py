"""Findings: what a rule reports, and how findings are identified.

A :class:`Finding` pins a rule violation to ``file:line`` for humans, but its
*identity* — used by the baseline mechanism — deliberately excludes the line
number: baselined findings must survive unrelated edits that shift code
around, and a finding that moves is still the same accepted debt.  Identity
is the ``(rule, path, message)`` triple, condensed to a short stable
fingerprint; two identical violations in one file share a fingerprint and
are tracked by count.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one site."""

    path: str
    line: int
    rule: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + path + message, no line."""
        raw = f"{self.rule}\x00{self.path}\x00{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """The JSON shape of one finding (``repro lint --json``); adding
        keys is allowed, renaming or removing them is a schema break."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
