"""Project-specific static analysis (``repro lint``).

The PR 1-6 arc grew this reproduction into a concurrent system whose
correctness rests on invariants that ordinary linters cannot see: cache
counters guarded by one lock, plain-data process-pool submissions, planner
purity (plans are cached by canonical key), boundary-only broad exception
handling, genuinely streaming ``*_iter`` paths, and an executor operator
protocol that every physical operator must implement.  This package encodes
those invariants as AST rules and checks them in CI, so the next concurrency
surface (a multi-process serving tier, a shared-memory kernel) lands on
machine-checked ground instead of convention.

Entry points
------------

* :func:`repro.analysis.engine.run_analysis` — analyze paths with the
  registered rules, returning :class:`~repro.analysis.findings.Finding`
  objects.
* :mod:`repro.analysis.baseline` — the committed-findings ratchet: accepted
  pre-existing findings live in ``lint-baseline.json`` and do not block;
  anything new fails.
* ``repro lint`` (:mod:`repro.cli`) — the command-line front-end with
  ``--json`` output for CI and scripts.

See the README section "Static analysis & typing" for the ``# guarded-by:``
convention and the rule catalog.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    AnalysisConfig,
    AnalysisResult,
    AnalysisStatistics,
    analyze_paths,
    run_analysis,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, all_rules, rule_ids

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "AnalysisStatistics",
    "Baseline",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "rule_ids",
    "run_analysis",
]
