"""Dynamic (runtime) analysis: the opt-in lockset sanitizer.

Counterpart to :mod:`repro.analysis.semantic`: where the static layer proves
lock discipline over the source, this package checks it against live
threads.  :func:`get_sanitizer` returns the process-wide
:class:`LocksetSanitizer`; the repository-root ``conftest.py`` exposes it as
the ``pytest --repro-sanitize`` option that CI's sanitize arm runs the
tier-1 suite under.
"""

from __future__ import annotations

from repro.analysis.runtime.sanitizer import (
    LocksetSanitizer,
    TrackedLock,
    TrackedRLock,
    Violation,
    get_sanitizer,
)

__all__ = [
    "LocksetSanitizer",
    "TrackedLock",
    "TrackedRLock",
    "Violation",
    "get_sanitizer",
]
