"""Eraser-style lockset sanitizer: dynamic checking of ``# guarded-by:``.

The static arm (REP101 and the caller-aware pass over the call graph) proves
that every *syntactic* access to a guarded attribute sits under a ``with``
on the right lock or inside a ``# holds-lock:`` function whose call sites
all hold it.  This module is the dynamic arm: it verifies the same contract
against what threads *actually do* at runtime, in the spirit of the Eraser
lockset algorithm — but instead of inferring candidate locksets it checks
against the locks the ``# guarded-by:`` annotations already declare.

Three pieces:

* :class:`TrackedLock` / :class:`TrackedRLock` — drop-in wrappers around
  ``threading.Lock`` / ``threading.RLock`` that record the owning thread.
  While the sanitizer is active, ``threading.Lock()``/``threading.RLock()``
  calls made from ``repro`` modules return tracked locks (other callers —
  the stdlib, test harnesses — keep the raw primitives).
* Guarded-class instrumentation — :meth:`LocksetSanitizer.activate` builds
  the semantic model over the installed ``repro`` package, reads the
  ``# guarded-by:`` declarations it collected, and wraps each guarded
  class's ``__setattr__``: a write to a guarded attribute outside the
  declared lock records a :class:`Violation`.  Writes from the instance's
  own ``__init__`` / ``__post_init__`` / ``__setstate__`` are exempt
  (objects under construction are thread-confined), matching REP101.
* The pytest plugin in the repository-root ``conftest.py`` — activates the
  sanitizer under ``pytest --repro-sanitize`` and fails the run on any
  recorded violation, which is how CI asserts the tier-1 suite is clean.

Violations are *recorded*, never raised: a sanitizer that throws from
``__setattr__`` inside someone else's critical section would turn a
diagnosis into a new failure mode.
"""

from __future__ import annotations

import importlib
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from types import FrameType, TracebackType
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "LocksetSanitizer",
    "TrackedLock",
    "TrackedRLock",
    "Violation",
    "get_sanitizer",
]

#: methods allowed to write guarded attributes of their own instance without
#: the lock: the object is still thread-confined while it is being built
#: (same exemption the static REP101 rule grants ``__init__``).
_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__setstate__"})

#: modules whose ``threading.Lock()`` calls get tracked replacements.
_TRACKED_PREFIX = "repro"

#: the sanitizer's own package must keep raw primitives (no self-tracking).
_SELF_MODULE_PREFIX = "repro.analysis.runtime"


@dataclass(frozen=True)
class Violation:
    """One unguarded write to a ``# guarded-by:`` attribute."""

    cls: str
    attribute: str
    lock: str
    thread: str
    location: str
    detail: str

    def describe(self) -> str:
        return (
            f"{self.location}: unguarded write to {self.cls}.{self.attribute} "
            f"(guarded-by: {self.lock}) from thread {self.thread!r}: "
            f"{self.detail}"
        )


class TrackedLock:
    """``threading.Lock`` with an owner record for the sanitizer.

    Delegates every operation to a real lock; additionally remembers which
    thread holds it so guarded-attribute checks can ask "does the *current*
    thread hold this?" rather than merely "is it locked?".
    """

    _KIND = "lock"

    def __init__(self) -> None:
        self._inner = _RAW_LOCK()
        self._owner: int | None = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._count = 1
        return acquired

    def release(self) -> None:
        self._owner = None
        self._count = 0
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident() and self._count > 0

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self.locked() else "unlocked"
        return f"<{type(self).__name__} {state} owner={self._owner}>"


class TrackedRLock(TrackedLock):
    """``threading.RLock`` with an owner record: reentrant acquire counts."""

    _KIND = "rlock"

    def __init__(self) -> None:
        self._inner = _RAW_RLOCK()
        self._owner = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._count += 1
        return acquired

    def release(self) -> None:
        self._count -= 1
        if self._count <= 0:
            self._owner = None
            self._count = 0
        self._inner.release()

    def locked(self) -> bool:
        return self._owner is not None


#: the genuine primitives, captured at import time so activation cannot
#: recurse through its own patch.
_RAW_LOCK = threading.Lock
_RAW_RLOCK = threading.RLock


def _caller_module(frame: FrameType | None) -> str:
    if frame is None:
        return ""
    name = frame.f_globals.get("__name__", "")
    return name if isinstance(name, str) else ""


def _wants_tracking(module: str) -> bool:
    if module.startswith(_SELF_MODULE_PREFIX):
        return False
    return module == _TRACKED_PREFIX or module.startswith(_TRACKED_PREFIX + ".")


def _tracked_lock_factory() -> Any:
    if _wants_tracking(_caller_module(sys._getframe(1))):
        return TrackedLock()
    return _RAW_LOCK()


def _tracked_rlock_factory() -> Any:
    if _wants_tracking(_caller_module(sys._getframe(1))):
        return TrackedRLock()
    return _RAW_RLOCK()


def _lock_is_held(lock: object) -> tuple[bool, str]:
    """Best-effort "does the current thread hold this lock?".

    Tracked locks answer precisely.  Raw primitives (created before
    activation) can only answer "is anyone holding it" — ``locked()`` for
    ``Lock``, ``_is_owned()`` for ``RLock`` — which still catches writes
    with no lock held at all.
    """
    if isinstance(lock, TrackedLock):
        if lock.held_by_current_thread():
            return True, ""
        return False, "lock is not held by the writing thread"
    is_owned = getattr(lock, "_is_owned", None)
    if callable(is_owned):
        if bool(is_owned()):
            return True, ""
        return False, "RLock is not held by the writing thread"
    locked = getattr(lock, "locked", None)
    if callable(locked):
        if bool(locked()):
            return True, ""  # raw Lock: cannot attribute, accept any holder
        return False, "lock is not held by any thread"
    return True, ""  # not a lock object (method, dict of locks): out of scope


class LocksetSanitizer:
    """Patches ``threading`` and guarded classes; records violations."""

    def __init__(self) -> None:
        self._active = False
        self._violations: list[Violation] = []
        self._mutex = _RAW_LOCK()
        self._wrapped: list[tuple[type, Callable[..., None] | None]] = []
        self.guarded: dict[str, dict[str, str]] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    @property
    def violations(self) -> list[Violation]:
        with self._mutex:
            return list(self._violations)

    def activate(self, package: str = "repro") -> int:
        """Patch threading, instrument every guarded class in ``package``.

        Returns the number of classes instrumented.  Idempotent: a second
        call while active is a no-op returning 0.
        """
        if self._active:
            return 0
        threading.Lock = _tracked_lock_factory  # type: ignore[assignment]
        threading.RLock = _tracked_rlock_factory  # type: ignore[assignment]
        self._active = True
        count = 0
        for module_name, class_name, guards in self._discover(package):
            try:
                module = importlib.import_module(module_name)
                cls = getattr(module, class_name)
            except (ImportError, AttributeError):
                continue
            self.guard_class(cls, guards)
            count += 1
        return count

    def deactivate(self) -> None:
        """Restore threading factories and every wrapped ``__setattr__``."""
        if not self._active:
            return
        threading.Lock = _RAW_LOCK  # type: ignore[assignment]
        threading.RLock = _RAW_RLOCK  # type: ignore[assignment]
        for cls, original in reversed(self._wrapped):
            if original is None:
                try:
                    del cls.__setattr__  # type: ignore[misc]
                except AttributeError:
                    pass
            else:
                cls.__setattr__ = original  # type: ignore[method-assign, assignment]
        self._wrapped.clear()
        self.guarded.clear()
        self._active = False

    def reset(self) -> None:
        with self._mutex:
            self._violations.clear()

    @contextmanager
    def capture(self) -> Iterator[list[Violation]]:
        """Collect — and claim — the violations recorded inside the block.

        Captured violations are *moved* out of the global record, so a test
        that deliberately seeds an unguarded write under ``capture()`` does
        not fail a ``pytest --repro-sanitize`` session around it.
        """
        with self._mutex:
            mark = len(self._violations)
        captured: list[Violation] = []
        try:
            yield captured
        finally:
            with self._mutex:
                captured.extend(self._violations[mark:])
                del self._violations[mark:]

    # -- instrumentation ---------------------------------------------------

    def _discover(self, package: str) -> list[tuple[str, str, dict[str, str]]]:
        """``# guarded-by:`` declarations of the installed package, via the
        same call-graph extraction the static rules use."""
        from repro.analysis.project import load_project
        from repro.analysis.semantic.callgraph import build_call_graph

        module = importlib.import_module(package)
        package_file = getattr(module, "__file__", None)
        if package_file is None:
            return []
        package_dir = Path(package_file).parent
        project = load_project([package_dir], root=package_dir.parent)
        graph = build_call_graph(project)
        return [
            (guarded.module, guarded.name, dict(guarded.guards))
            for _, guarded in sorted(graph.guarded_classes.items())
        ]

    def guard_class(self, cls: type, guards: Mapping[str, str]) -> None:
        """Wrap ``cls.__setattr__`` to check writes to ``guards`` keys."""
        guard_map = dict(guards)
        self.guarded[f"{cls.__module__}.{cls.__qualname__}"] = guard_map
        original = cls.__dict__.get("__setattr__")
        previous = original if callable(original) else None
        delegate: Callable[[Any, str, Any], None] = (
            previous if previous is not None else object.__setattr__
        )
        sanitizer = self

        def checked_setattr(obj: Any, name: str, value: Any) -> None:
            lock_attr = guard_map.get(name)
            if lock_attr is not None and sanitizer._active:
                sanitizer._check_write(obj, cls, name, lock_attr)
            delegate(obj, name, value)

        cls.__setattr__ = checked_setattr  # type: ignore[method-assign, assignment]
        self._wrapped.append((cls, previous))

    def _check_write(
        self, obj: Any, cls: type, attribute: str, lock_attr: str
    ) -> None:
        writer = sys._getframe(2)  # the frame performing the assignment
        if (
            writer.f_code.co_name in _CONSTRUCTION_METHODS
            and writer.f_locals.get("self") is obj
        ):
            return
        lock = getattr(obj, "__dict__", {}).get(lock_attr)
        if lock is None:
            return  # guard not created yet: object still under construction
        held, detail = _lock_is_held(lock)
        if held:
            return
        violation = Violation(
            cls=f"{cls.__module__}.{cls.__qualname__}",
            attribute=attribute,
            lock=lock_attr,
            thread=threading.current_thread().name,
            location=f"{writer.f_code.co_filename}:{writer.f_lineno}",
            detail=detail,
        )
        with self._mutex:
            self._violations.append(violation)


_SANITIZER: LocksetSanitizer | None = None


def get_sanitizer() -> LocksetSanitizer:
    """The process-wide sanitizer (one patch set per process)."""
    global _SANITIZER
    if _SANITIZER is None:
        _SANITIZER = LocksetSanitizer()
    return _SANITIZER
