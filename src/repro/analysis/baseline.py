"""The committed-findings ratchet.

A baseline file records the findings the project has accepted — debt that is
acknowledged but not yet paid down — as ``fingerprint -> count`` (plus a
human-readable description per fingerprint, so the file reviews well in a
diff).  ``repro lint`` subtracts the baseline from the current findings:

* a finding whose fingerprint is in the baseline (up to its count) passes;
* anything beyond the baseline is **new** and fails the run;
* baselined findings that no longer occur are reported as *stale* so the
  baseline can be re-tightened (``repro lint --update-baseline``).

Fingerprints exclude line numbers (see :mod:`repro.analysis.findings`), so
unrelated edits that shift code do not invalidate the baseline; any change
to a finding's rule, file or message makes it a new finding, which is the
ratchet working as intended.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineDelta"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineDelta:
    """The outcome of comparing current findings against a baseline."""

    #: findings not covered by the baseline — these fail the run.
    new: list[Finding]
    #: findings absorbed by the baseline.
    suppressed: list[Finding]
    #: baselined fingerprints with fewer (or no) current occurrences.
    stale: dict[str, int]

    @property
    def clean(self) -> bool:
        return not self.new


@dataclass
class Baseline:
    """Accepted findings, keyed by fingerprint with occurrence counts."""

    counts: dict[str, int] = field(default_factory=dict)
    descriptions: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = finding.fingerprint
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
            baseline.descriptions.setdefault(
                key, f"{finding.path}: {finding.rule}: {finding.message}"
            )
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = payload.get("findings", {})
        baseline = cls()
        for fingerprint, entry in entries.items():
            baseline.counts[fingerprint] = int(entry.get("count", 1))
            description = entry.get("description")
            if description:
                baseline.descriptions[fingerprint] = description
        return baseline

    def dump(self, path: Path) -> None:
        entries = {
            fingerprint: {
                "count": count,
                "description": self.descriptions.get(fingerprint, ""),
            }
            for fingerprint, count in sorted(self.counts.items())
        }
        payload = {
            "version": _FORMAT_VERSION,
            "tool": "repro lint",
            "findings": entries,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def apply(self, findings: list[Finding]) -> BaselineDelta:
        """Split findings into new vs. suppressed, and report stale debt."""
        remaining = dict(self.counts)
        new: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            key = finding.fingerprint
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                suppressed.append(finding)
            else:
                new.append(finding)
        stale = {key: count for key, count in remaining.items() if count > 0}
        return BaselineDelta(new=new, suppressed=suppressed, stale=stale)
