"""Lock-order graph construction and deadlock-cycle detection.

From the call graph's acquisition and call-site facts this module derives:

* ``transitive``: for each function, every lock it can acquire — directly or
  through any resolved callee (a fixpoint, so call cycles are handled);
* ``edges``: the lock-order relation — an edge ``A -> B`` means some
  execution path acquires ``B`` while already holding ``A``, either directly
  (``with A: ... with B:``) or interprocedurally (``with A: f()`` where
  ``f`` transitively acquires ``B``).  Every edge carries a human-readable
  witness naming the function, file and line that create it;
* ``cycles``: strongly connected components of the edge relation with more
  than one lock, plus self-loops on non-reentrant locks (acquiring a plain
  ``threading.Lock`` you already hold deadlocks a single thread).  Each
  cycle becomes one REP108 finding.

Reentrant locks (``threading.RLock``) may be re-acquired by design, so
``A -> A`` edges on an ``rlock`` are dropped; they still order normally
against other locks.  This follows the static side of the lockset tradition
(Eraser, SOSP '97; RacerD, OOPSLA '18): a consistent global acquisition
order is the property, the graph is the proof obligation, and a cycle is a
schedule waiting to happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.semantic.callgraph import CallGraph

__all__ = ["LockEdge", "LockGraph", "build_lock_graph"]


@dataclass(frozen=True)
class LockEdge:
    """One lock-order edge with the program point that witnesses it."""

    source: str
    target: str
    function: str
    path: str
    line: int
    witness: str


@dataclass
class LockGraph:
    """The derived lock-order relation over canonical lock names."""

    locks: dict[str, str]
    """canonical name -> ``lock`` | ``rlock`` | ``context``."""
    edges: list[LockEdge]
    cycles: list[list[str]]
    transitive: dict[str, frozenset[str]]
    """function qualified name -> every lock it can (transitively) acquire."""

    @property
    def acyclic(self) -> bool:
        return not self.cycles

    def edge(self, source: str, target: str) -> LockEdge | None:
        for candidate in self.edges:
            if candidate.source == source and candidate.target == target:
                return candidate
        return None


def _transitive_locks(graph: CallGraph) -> dict[str, frozenset[str]]:
    direct: dict[str, set[str]] = {name: set() for name in graph.functions}
    for acquisition in graph.acquisitions:
        if acquisition.function in direct:
            direct[acquisition.function].add(acquisition.lock)
    for name, info in graph.functions.items():
        direct[name].update(info.acquires_locks)
    callees: dict[str, set[str]] = {}
    for site in graph.calls:
        if site.caller in direct and site.callee in direct:
            callees.setdefault(site.caller, set()).add(site.callee)
    changed = True
    while changed:
        changed = False
        for caller, targets in callees.items():
            merged = direct[caller]
            before = len(merged)
            for callee in targets:
                merged |= direct[callee]
            if len(merged) != before:
                changed = True
    return {name: frozenset(locks) for name, locks in direct.items()}


def _is_reentrant(lock: str, kinds: Mapping[str, str]) -> bool:
    return kinds.get(lock) == "rlock"


def build_lock_graph(graph: CallGraph) -> LockGraph:
    """Derive the lock-order graph from call-graph facts."""
    transitive = _transitive_locks(graph)
    kinds = dict(graph.lock_kinds)
    for info in graph.functions.values():
        for lock in info.acquires_locks:
            kinds.setdefault(lock, "context")
    edges: dict[tuple[str, str], LockEdge] = {}

    def add_edge(source: str, target: str, function: str, line: int, witness: str) -> None:
        if source == target and _is_reentrant(source, kinds):
            return
        key = (source, target)
        if key not in edges:
            info = graph.functions[function]
            edges[key] = LockEdge(
                source=source,
                target=target,
                function=function,
                path=info.display_path,
                line=line,
                witness=witness,
            )

    for acquisition in sorted(
        graph.acquisitions, key=lambda a: (a.function, a.line, a.lock)
    ):
        info = graph.functions.get(acquisition.function)
        if info is None:
            continue
        for held in acquisition.held:
            add_edge(
                held,
                acquisition.lock,
                acquisition.function,
                acquisition.line,
                f"{info.qualname} ({info.display_path}:{acquisition.line}) "
                f"acquires {acquisition.lock} while holding {held}",
            )
    for site in sorted(graph.calls, key=lambda s: (s.caller, s.line, s.callee)):
        if not site.held:
            continue
        caller = graph.functions.get(site.caller)
        callee_locks = transitive.get(site.callee, frozenset())
        if caller is None or not callee_locks:
            continue
        callee_name = graph.functions[site.callee].qualname
        for held in site.held:
            for target in sorted(callee_locks):
                add_edge(
                    held,
                    target,
                    site.caller,
                    site.line,
                    f"{caller.qualname} ({caller.display_path}:{site.line}) "
                    f"holds {held} and calls {callee_name}, which acquires "
                    f"{target}",
                )

    edge_list = [edges[key] for key in sorted(edges)]
    return LockGraph(
        locks=kinds,
        edges=edge_list,
        cycles=_find_cycles(edge_list, kinds),
        transitive=transitive,
    )


def _find_cycles(
    edges: list[LockEdge], kinds: Mapping[str, str]
) -> list[list[str]]:
    """Tarjan SCCs of the edge relation; multi-lock components and
    non-reentrant self-loops are deadlock cycles.  Iterative, so a long
    acquisition chain cannot hit the recursion limit."""
    adjacency: dict[str, list[str]] = {}
    nodes: list[str] = []
    for edge in edges:
        for node in (edge.source, edge.target):
            if node not in adjacency:
                adjacency[node] = []
                nodes.append(node)
        adjacency[edge.source].append(edge.target)

    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            neighbors = adjacency[node]
            while child_index < len(neighbors):
                neighbor = neighbors[child_index]
                child_index += 1
                if neighbor not in index:
                    work[-1] = (node, child_index)
                    work.append((neighbor, 0))
                    advanced = True
                    break
                if neighbor in on_stack:
                    lowlink[node] = min(lowlink[node], index[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))

    self_loops = {edge.source for edge in edges if edge.source == edge.target}
    cycles = [
        component
        for component in components
        if len(component) > 1
        or (component[0] in self_loops and not _is_reentrant(component[0], kinds))
    ]
    return sorted(cycles)
