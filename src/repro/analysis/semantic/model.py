"""The assembled semantic model, its serialization, and the disk cache.

:func:`build_semantic_model` runs the three analyses over a loaded
:class:`~repro.analysis.project.Project` — call graph, effect inference,
lock-order graph — and bundles them with a content digest of the analyzed
sources.  The digest keys the disk cache (``--semantic-cache``): ``repro
lint`` and ``repro analyze`` running back-to-back in CI build the model
once and share it, and any source change invalidates the cache by
construction.

The serialized payload stores only the *extracted facts* (functions, call
sites, acquisitions, lock kinds, guarded classes, direct effects); the
derived data — transitive effects and the lock-order graph — is recomputed
on load through the exact same code path as a fresh build, so a cache hit
cannot diverge from a cache miss.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analysis.project import Project
from repro.analysis.semantic.callgraph import (
    Acquisition,
    CallGraph,
    CallSite,
    FunctionInfo,
    GuardedClass,
    build_call_graph,
)
from repro.analysis.semantic.effects import (
    direct_effects as _compute_direct_effects,
)
from repro.analysis.semantic.effects import (
    effect_witness,
    transitive_effects,
)
from repro.analysis.semantic.locks import LockGraph, build_lock_graph

__all__ = [
    "SemanticModel",
    "build_semantic_model",
    "load_cached_model",
    "project_digest",
    "save_model",
]

# Bumped whenever extraction semantics change (v2: the effect scanner
# honors per-line ``# effect-exempt:`` directives), so stale cached effect
# sets cannot survive an analyzer upgrade.
_PAYLOAD_VERSION = 2


@dataclass
class SemanticModel:
    """Everything the project-level rules and ``repro analyze`` consume."""

    digest: str
    graph: CallGraph
    direct_effects: dict[str, frozenset[str]]
    effects: dict[str, frozenset[str]]
    lock_graph: LockGraph

    def witness(self, start: str, effect: str) -> list[str]:
        """Shortest call path from ``start`` to the effect's direct source."""
        return effect_witness(self.graph, self.direct_effects, start, effect)


def project_digest(project: Project) -> str:
    """Content hash of the analyzed sources; any edit changes it."""
    digest = hashlib.sha256()
    for module in sorted(project, key=lambda m: m.display_path):
        digest.update(module.display_path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(module.source.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _derive(digest: str, graph: CallGraph, direct: dict[str, frozenset[str]]) -> SemanticModel:
    return SemanticModel(
        digest=digest,
        graph=graph,
        direct_effects=direct,
        effects=transitive_effects(graph, direct),
        lock_graph=build_lock_graph(graph),
    )


def build_semantic_model(project: Project) -> SemanticModel:
    """Run the whole-program analyses over a loaded project."""
    graph = build_call_graph(project)
    method_names = frozenset(
        info.name for info in graph.functions.values() if info.class_name
    )
    nodes = _function_nodes(project, graph)
    direct = _compute_direct_effects(
        list(project),
        nodes,
        {name: info.module for name, info in graph.functions.items()},
        method_names,
    )
    return _derive(project_digest(project), graph, direct)


def _function_nodes(project: Project, graph: CallGraph) -> dict[str, Any]:
    """Re-associate qualified names with their AST nodes for the effect
    scan (the call-graph builder does not retain them)."""
    import ast

    nodes: dict[str, Any] = {}
    for module in project:
        prefix = f"{module.logical_name}:"
        by_line = {
            info.lineno: name
            for name, info in graph.functions.items()
            if name.startswith(prefix)
            and graph.functions[name].display_path == module.display_path
        }
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = by_line.get(node.lineno)
                if name is not None and name not in nodes:
                    nodes[name] = node
    return nodes


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def model_payload(model: SemanticModel) -> dict[str, Any]:
    """The JSON-serializable cache payload (extracted facts only)."""
    return {
        "version": _PAYLOAD_VERSION,
        "digest": model.digest,
        "modules": model.graph.modules,
        "total_calls": model.graph.total_calls,
        "unresolved_calls": model.graph.unresolved_calls,
        "functions": [
            {
                "qualified": info.qualified,
                "module": info.module,
                "qualname": info.qualname,
                "name": info.name,
                "class": info.class_name,
                "line": info.lineno,
                "path": info.display_path,
                "contextmanager": info.is_contextmanager,
                "holds_locks": list(info.holds_locks),
                "acquires_locks": list(info.acquires_locks),
                "direct_effects": sorted(
                    model.direct_effects.get(info.qualified, frozenset())
                ),
            }
            for info in model.graph.functions.values()
        ],
        "calls": [
            [site.caller, site.callee, site.line,
             list(site.held), list(site.bare_held)]
            for site in model.graph.calls
        ],
        "acquisitions": [
            [acq.function, acq.lock, acq.line, list(acq.held)]
            for acq in model.graph.acquisitions
        ],
        "lock_kinds": dict(sorted(model.graph.lock_kinds.items())),
        "guarded_classes": {
            key: {"name": gc.name, "module": gc.module, "guards": gc.guards}
            for key, gc in sorted(model.graph.guarded_classes.items())
        },
    }


def _model_from_payload(payload: dict[str, Any]) -> SemanticModel:
    functions: dict[str, FunctionInfo] = {}
    direct: dict[str, frozenset[str]] = {}
    for entry in payload["functions"]:
        info = FunctionInfo(
            qualified=entry["qualified"],
            module=entry["module"],
            qualname=entry["qualname"],
            name=entry["name"],
            class_name=entry["class"],
            lineno=entry["line"],
            display_path=entry["path"],
            is_contextmanager=entry["contextmanager"],
            holds_locks=tuple(entry["holds_locks"]),
            acquires_locks=tuple(entry["acquires_locks"]),
        )
        functions[info.qualified] = info
        direct[info.qualified] = frozenset(entry["direct_effects"])
    graph = CallGraph(
        functions=functions,
        calls=[
            CallSite(
                caller=caller,
                callee=callee,
                line=line,
                held=tuple(held),
                bare_held=tuple(bare),
            )
            for caller, callee, line, held, bare in payload["calls"]
        ],
        acquisitions=[
            Acquisition(function=func, lock=lock, line=line, held=tuple(held))
            for func, lock, line, held in payload["acquisitions"]
        ],
        lock_kinds=dict(payload["lock_kinds"]),
        guarded_classes={
            key: GuardedClass(
                name=entry["name"],
                module=entry["module"],
                guards=dict(entry["guards"]),
            )
            for key, entry in payload["guarded_classes"].items()
        },
        modules=payload["modules"],
        total_calls=payload["total_calls"],
        unresolved_calls=payload["unresolved_calls"],
    )
    return _derive(payload["digest"], graph, direct)


def save_model(model: SemanticModel, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(model_payload(model), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_cached_model(path: Path, project: Project) -> SemanticModel | None:
    """The cached model, if it exists and matches the project's digest."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != _PAYLOAD_VERSION:
        return None
    if payload.get("digest") != project_digest(project):
        return None
    try:
        return _model_from_payload(payload)
    except (KeyError, TypeError, ValueError):
        return None
