"""Interprocedural effect inference.

Each function gets a *direct* effect set from a syntactic scan — clock
reads, randomness, environment reads, file IO, module-level state mutation —
and a *transitive* set as the fixpoint of direct effects unioned along call
edges.  The transitive sets power REP109 ("no impure effect reachable from a
planner entry point"): unlike REP103, which trusts a module allowlist, a
planner function here is judged by what it actually calls, across modules.

Unresolved calls are treated as effect-free (optimistic).  That is the right
polarity for this check: the resolver covers the project's own call idioms,
and an optimistic default means a finding is always a real, witnessed path —
the witness chain in the finding message can be followed by hand.

Direct-effect detection mirrors REP103's tables (clock/randomness module
imports, ``os.environ``/``os.urandom``, ``open``, global mutation) and adds
method-level file IO (``Path.read_text`` and friends, ``os.replace``, ...)
so boundary code is honestly labeled even though only planner reachability
is enforced.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.analysis.project import Module
from repro.analysis.semantic.callgraph import CallGraph, CallSite

__all__ = [
    "EFFECTS",
    "direct_effects",
    "effect_witness",
    "transitive_effects",
]

#: the impure effects tracked, in display order.
EFFECTS = ("clock", "randomness", "env", "file-io", "global-mutation")

#: Per-line directive waiving named effects on sanctioned wrapper lines
#: (e.g. ``time.perf_counter()  # effect-exempt: clock`` in
#: :mod:`repro.obs.clock`).  Only the effects the directive names are
#: waived, and only on the directive's own line.
_EXEMPT_DIRECTIVE = "effect-exempt:"

_CLOCK_MODULES = frozenset({"time", "datetime"})
_RANDOM_MODULES = frozenset({"random", "secrets", "uuid"})
_FILE_IO_MODULES = frozenset({"tempfile", "shutil", "glob"})
_OS_ENV_ATTRS = frozenset({"environ", "getenv", "getenvb"})
_OS_RANDOM_ATTRS = frozenset({"urandom", "getrandom"})
_OS_FILE_ATTRS = frozenset(
    {
        "open", "close", "read", "write", "unlink", "remove", "rename",
        "replace", "mkdir", "makedirs", "rmdir", "removedirs", "stat",
        "fstat", "lstat", "fsync", "listdir", "scandir", "chmod", "utime",
    }
)
#: method names that do file IO on their receiver (pathlib / file objects);
#: applied only when the receiver is not a project class, so a project
#: method that happens to share a name is resolved as a call edge instead.
_FILE_IO_METHODS = frozenset(
    {
        "read_text", "write_text", "read_bytes", "write_bytes", "open",
        "mkdir", "rmdir", "unlink", "touch", "rename", "replace", "glob",
        "rglob", "iterdir", "stat", "hardlink_to", "symlink_to",
    }
)
_MUTATORS = frozenset(
    {
        "append", "add", "update", "setdefault", "pop", "popitem", "clear",
        "extend", "insert", "remove", "discard",
    }
)


def _func_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _mutable_globals(tree: ast.Module) -> frozenset[str]:
    """Module-level names bound to mutable literals or constructors."""
    mutable: set[str] = set()
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            value = statement.value
            is_mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(value, ast.Call)
                and _func_name(value.func)
                in ("dict", "list", "set", "defaultdict")
            )
            if is_mutable:
                mutable.update(
                    target.id
                    for target in statement.targets
                    if isinstance(target, ast.Name)
                )
    return frozenset(mutable)


def _stdlib_roots(module: Module) -> dict[str, str]:
    """Local alias -> top-level stdlib module name, for the effect tables."""
    roots: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                roots[alias.asname or alias.name.split(".")[0]] = (
                    alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            for alias in node.names:
                if alias.name != "*":
                    roots.setdefault(alias.asname or alias.name, top)
    return roots


class _DirectScanner:
    """The per-function syntactic effect scan."""

    def __init__(
        self,
        module: Module,
        roots: Mapping[str, str],
        mutable_globals: frozenset[str],
        project_method_names: frozenset[str],
    ) -> None:
        self.module = module
        self.roots = roots
        self.mutable_globals = mutable_globals
        self.project_method_names = project_method_names

    def scan(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> frozenset[str]:
        return frozenset(self._effects(node))

    def _effects(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[str]:
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                found: tuple[str, ...] = ("global-mutation",)
            elif isinstance(node, ast.Call):
                found = tuple(self._call_effects(node))
            elif isinstance(node, ast.Attribute):
                found = tuple(self._attribute_effects(node))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                found = tuple(self._assignment_effects(node))
            else:
                continue
            if not found:
                continue
            exempt = self._exempt_effects(node)
            for effect in found:
                if effect not in exempt:
                    yield effect

    def _exempt_effects(self, node: ast.AST) -> frozenset[str]:
        """Effects waived on this node's line by an ``# effect-exempt:``
        directive — the sanctioned-wrapper carve-out (``repro.obs.clock``).

        The directive names the effects it waives (comma- or
        space-separated), so it cannot silence more than it declares, and it
        only applies to the line it sits on: an unsanctioned call elsewhere
        in the same function is still reported.
        """
        comment = self.module.comment_on(getattr(node, "lineno", 0))
        if _EXEMPT_DIRECTIVE not in comment:
            return frozenset()
        names = comment.split(_EXEMPT_DIRECTIVE, 1)[1]
        return frozenset(
            part for part in names.replace(",", " ").split() if part in EFFECTS
        )

    def _call_effects(self, call: ast.Call) -> Iterator[str]:
        func = call.func
        name = _func_name(func)
        if isinstance(func, ast.Name):
            if name == "open":
                yield "file-io"
            root = self.roots.get(name)
            if root is not None:
                yield from self._module_effect(root)
            return
        if not isinstance(func, ast.Attribute):
            return
        root = self._receiver_root(func.value)
        if root is not None:
            if root == "os":
                if func.attr in _OS_FILE_ATTRS:
                    yield "file-io"
                elif func.attr in _OS_RANDOM_ATTRS:
                    yield "randomness"
                elif func.attr in _OS_ENV_ATTRS:
                    yield "env"
            else:
                yield from self._module_effect(root)
            return
        if (
            func.attr in _FILE_IO_METHODS
            and func.attr not in self.project_method_names
        ):
            yield "file-io"
        elif (
            func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.mutable_globals
        ):
            yield "global-mutation"

    def _attribute_effects(self, node: ast.Attribute) -> Iterator[str]:
        root = self._receiver_root(node.value)
        if root == "os" and node.attr in _OS_ENV_ATTRS:
            yield "env"

    def _assignment_effects(
        self, node: ast.Assign | ast.AugAssign
    ) -> Iterator[str]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in self.mutable_globals
            ):
                yield "global-mutation"

    def _module_effect(self, root: str) -> Iterator[str]:
        if root in _CLOCK_MODULES:
            yield "clock"
        elif root in _RANDOM_MODULES:
            yield "randomness"
        elif root in _FILE_IO_MODULES:
            yield "file-io"

    def _receiver_root(self, value: ast.expr) -> str | None:
        """The stdlib module a call receiver chain starts from, if any
        (``time.monotonic`` -> ``time``, ``datetime.datetime.now`` ->
        ``datetime``)."""
        while isinstance(value, ast.Attribute):
            value = value.value
        if isinstance(value, ast.Name):
            return self.roots.get(value.id)
        return None


def direct_effects(
    modules: Iterable[Module],
    function_nodes: Mapping[str, ast.FunctionDef | ast.AsyncFunctionDef],
    function_modules: Mapping[str, str],
    project_method_names: frozenset[str],
) -> dict[str, frozenset[str]]:
    """Direct effect set for every function, keyed by qualified name."""
    scanners: dict[str, _DirectScanner] = {}
    for module in modules:
        if module.logical_name not in scanners:
            scanners[module.logical_name] = _DirectScanner(
                module,
                _stdlib_roots(module),
                _mutable_globals(module.tree),
                project_method_names,
            )
    effects: dict[str, frozenset[str]] = {}
    for qualified, node in function_nodes.items():
        scanner = scanners.get(function_modules[qualified])
        effects[qualified] = scanner.scan(node) if scanner else frozenset()
    return effects


def transitive_effects(
    graph: CallGraph, direct: Mapping[str, frozenset[str]]
) -> dict[str, frozenset[str]]:
    """Fixpoint of direct effects unioned along call edges; handles call
    cycles (mutual recursion) by iterating to stability."""
    effects = {name: set(direct.get(name, frozenset())) for name in graph.functions}
    callees: dict[str, set[str]] = {}
    for site in graph.calls:
        if site.caller in effects and site.callee in effects:
            callees.setdefault(site.caller, set()).add(site.callee)
    changed = True
    while changed:
        changed = False
        for caller, targets in callees.items():
            merged = effects[caller]
            before = len(merged)
            for callee in targets:
                merged |= effects[callee]
            if len(merged) != before:
                changed = True
    return {name: frozenset(found) for name, found in effects.items()}


def effect_witness(
    graph: CallGraph,
    direct: Mapping[str, frozenset[str]],
    start: str,
    effect: str,
) -> list[str]:
    """A shortest call path from ``start`` to a function whose *direct*
    effects include ``effect`` — the witness quoted in REP109 findings.
    Deterministic: neighbors are explored in sorted order."""
    if effect in direct.get(start, frozenset()):
        return [start]
    adjacency: dict[str, set[str]] = {}
    for site in graph.calls:
        adjacency.setdefault(site.caller, set()).add(site.callee)
    queue: list[list[str]] = [[start]]
    seen = {start}
    while queue:
        path = queue.pop(0)
        for callee in sorted(adjacency.get(path[-1], set())):
            if callee in seen:
                continue
            seen.add(callee)
            extended = [*path, callee]
            if effect in direct.get(callee, frozenset()):
                return extended
            queue.append(extended)
    return []


def held_at_call(sites: Iterable[CallSite], callee: str) -> Iterator[CallSite]:
    """The call sites targeting ``callee`` (helper for rule messages)."""
    for site in sites:
        if site.callee == callee:
            yield site
