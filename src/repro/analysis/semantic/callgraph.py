"""Cross-module call graph with lock-aware lexical facts.

This is the resolution half of the semantic layer (see
:mod:`repro.analysis.semantic`): it indexes every module of a
:class:`~repro.analysis.project.Project` — imports (including re-exports
through package ``__init__`` modules), top-level functions, classes, methods,
nested functions — and extracts, per function:

* resolved **call sites**, each carrying the set of locks lexically held at
  the site (the raw material for the lock-order graph and for caller-aware
  ``# holds-lock:`` verification);
* **lock acquisitions** (``with <lock>:`` statements), again with the locks
  already held when the acquisition happens;
* the locks held at ``yield`` for ``@contextmanager`` functions, so a
  ``with cm():`` statement in a caller extends the caller's held set with
  whatever the context manager holds around its yield.

Resolution is deliberately conservative: an edge is recorded only when the
callee is confidently identified (``self.method``, a local or imported name,
an attribute whose class is known from an annotation, a dataclass field, a
property return type, or a constructor assignment).  Calls through bare
callables, ``super()`` or unknown receivers are counted as unresolved rather
than guessed — for deadlock detection a false edge is worse than a missing
one, because it can report cycles that cannot happen.

Lock names are *canonical*: an instance lock is ``ClassName.attr`` (prefixed
with the module when the class name is ambiguous project-wide), a function
local lock is ``module_tail.function.var``.  Two different instances of the
same class share a canonical name; that is the standard static
approximation (RacerD makes the same one) and is sound for ordering as long
as per-instance locks of one class are never nested with each other — which
``repro lint`` would flag as a self-cycle on a non-reentrant lock.

Two comment directives extend what the syntax shows:

* ``# holds-lock: <attr>`` (existing, REP101) — the function runs with the
  lock held; the walker seeds its held set accordingly.
* ``# acquires-lock: <name>`` (new) — a context manager acquires a resource
  that behaves like a lock but is not a ``threading`` primitive (the
  ``IndexStore.entry_lock`` file lock); the declared name becomes a lock
  node so cross-process ordering is checked too.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.project import Module, Project

__all__ = [
    "Acquisition",
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "GuardedClass",
    "build_call_graph",
]

_ACQUIRES_LOCK = "acquires-lock:"
_HOLDS_LOCK = "holds-lock:"
#: threading factory name -> lock kind recorded in the graph.
_LOCK_FACTORIES = {"Lock": "lock", "RLock": "rlock"}
_CM_DECORATORS = frozenset({"contextmanager", "asynccontextmanager"})
_PROPERTY_DECORATORS = frozenset({"property", "cached_property"})
_BUILTIN_NAMES = frozenset(dir(builtins))
#: typing-level names that never denote a project class in an annotation.
_TYPING_NAMES = frozenset(
    {
        "Any", "Callable", "ClassVar", "Final", "Iterable", "Iterator",
        "Mapping", "MutableMapping", "Optional", "Sequence", "Union",
        "bool", "bytes", "dict", "float", "frozenset", "int", "list",
        "object", "set", "str", "tuple", "type",
    }
)
_GUARDED_BY = "guarded-by:"


# ---------------------------------------------------------------------------
# result datatypes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method known to the call graph."""

    qualified: str
    """``module:Qual.Name`` — the node id used everywhere else."""
    module: str
    qualname: str
    name: str
    class_name: str | None
    lineno: int
    display_path: str
    is_contextmanager: bool
    holds_locks: tuple[str, ...]
    """Bare lock attribute names from ``# holds-lock:`` annotations."""
    acquires_locks: tuple[str, ...]
    """Canonical lock names from ``# acquires-lock:`` annotations."""


@dataclass(frozen=True)
class CallSite:
    """A resolved call edge, with the lock context at the site."""

    caller: str
    callee: str
    line: int
    held: tuple[str, ...]
    """Canonical locks lexically held when the call runs."""
    bare_held: tuple[str, ...]
    """Over-approximate bare names held (for ``# holds-lock:`` checks)."""


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>:`` (or annotated context manager) acquisition."""

    function: str
    lock: str
    line: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class GuardedClass:
    """``# guarded-by:`` declarations of one class, for the sanitizer."""

    name: str
    module: str
    guards: dict[str, str]
    """attribute name -> lock attribute name on the same instance."""


@dataclass
class CallGraph:
    """The resolved whole-program graph plus the lock-relevant facts."""

    functions: dict[str, FunctionInfo]
    calls: list[CallSite]
    acquisitions: list[Acquisition]
    lock_kinds: dict[str, str]
    """canonical lock name -> ``lock`` | ``rlock`` | ``context``."""
    guarded_classes: dict[str, GuardedClass]
    modules: int
    total_calls: int
    unresolved_calls: int

    def calls_from(self, qualified: str) -> list[CallSite]:
        return [site for site in self.calls if site.caller == qualified]


# ---------------------------------------------------------------------------
# module indexing
# ---------------------------------------------------------------------------


def _comment_tag(comment: str, tag: str) -> str | None:
    if tag not in comment:
        return None
    value = comment.split(tag, 1)[1].strip()
    return value.split()[0] if value else None


def _func_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _func_name(target)
        if name:
            names.add(name)
    return names


def _annotation_candidates(node: ast.expr | None) -> tuple[str, ...]:
    """Class names an annotation might denote (``X``, ``"X | None"``,
    ``Optional[X]``); ``Callable[...]`` yields nothing — its parameters are
    not the type of the annotated value."""
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ()
        return _annotation_candidates(parsed)
    if isinstance(node, ast.Subscript) and _func_name(node.value) == "Callable":
        return ()
    names = [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]
    return tuple(dict.fromkeys(n for n in names if n not in _TYPING_NAMES))


def _value_candidates(value: ast.expr) -> tuple[str, ...]:
    """Class names a right-hand side might construct (``X(...)``)."""
    if isinstance(value, ast.Call):
        name = _func_name(value.func)
        if name and name not in _BUILTIN_NAMES:
            return (name,)
    return ()


@dataclass
class _ClassScope:
    name: str
    module: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: attribute name -> candidate class names (fields, properties, ctors).
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: method name -> candidate class names of its return annotation.
    method_returns: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: lock attribute name -> ``lock`` | ``rlock``.
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: guarded attribute name -> guard lock attribute name.
    guards: dict[str, str] = field(default_factory=dict)


@dataclass
class _ModuleScope:
    module: Module
    #: local alias -> ("mod", logical) or ("obj", logical, name).
    imports: dict[str, tuple[str, ...]] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: module-level function name -> return annotation candidates.
    function_returns: dict[str, tuple[str, ...]] = field(default_factory=dict)
    classes: dict[str, _ClassScope] = field(default_factory=dict)


def _relative_base(module: Module, level: int) -> str:
    """The package a level-``level`` relative import resolves against."""
    parts = module.logical_name.split(".")
    if module.path.stem != "__init__":
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    return ".".join(parts)


def _index_imports(scope: _ModuleScope) -> None:
    for node in ast.walk(scope.module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                scope.imports[local] = ("mod", target)
        elif isinstance(node, ast.ImportFrom):
            source = node.module or ""
            if node.level:
                base = _relative_base(scope.module, node.level)
                source = f"{base}.{source}" if source else base
            for alias in node.names:
                if alias.name == "*":
                    continue
                scope.imports[alias.asname or alias.name] = (
                    "obj", source, alias.name,
                )


def _scan_lock_annotation(annotation: ast.expr | None) -> str | None:
    """``lock``/``rlock`` if the annotation mentions a threading factory
    (covers ``dict[Key, threading.Lock]`` containers of locks)."""
    if annotation is None:
        return None
    for node in ast.walk(annotation):
        kind = _LOCK_FACTORIES.get(_func_name(node)) if isinstance(
            node, (ast.Name, ast.Attribute)
        ) else None
        if kind is not None:
            return kind
    return None


def _scan_value_for_lock(value: ast.expr) -> str | None:
    """``lock``/``rlock`` if the expression calls a threading factory."""
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            kind = _LOCK_FACTORIES.get(_func_name(node.func))
            if kind is not None:
                return kind
    return None


def _index_class(scope: _ModuleScope, node: ast.ClassDef) -> None:
    cls = _ClassScope(
        name=node.name,
        module=scope.module.logical_name,
        node=node,
        bases=tuple(_func_name(base) for base in node.bases if _func_name(base)),
    )
    module = scope.module
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            attr = statement.target.id
            cls.attr_types[attr] = _annotation_candidates(statement.annotation)
            kind = _scan_lock_annotation(statement.annotation)
            if kind is not None:
                cls.lock_attrs[attr] = kind
            guard = _comment_tag(module.comment_on(statement.lineno), _GUARDED_BY)
            if guard is not None:
                cls.guards[attr] = guard
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[statement.name] = statement
            decorators = _decorator_names(statement)
            returns = _annotation_candidates(statement.returns)
            if decorators & _PROPERTY_DECORATORS:
                cls.attr_types[statement.name] = returns
            else:
                cls.method_returns[statement.name] = returns
            _index_method_attributes(module, cls, statement)
    scope.classes[node.name] = cls


def _index_method_attributes(
    module: Module,
    cls: _ClassScope,
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> None:
    """``self.<attr>`` assignments: lock factories, guard declarations, and
    attribute types (from constructor calls and parameter annotations)."""
    param_types = {
        argument.arg: _annotation_candidates(argument.annotation)
        for argument in (
            method.args.posonlyargs + method.args.args + method.args.kwonlyargs
        )
    }
    for statement in ast.walk(method):
        if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            statement.targets
            if isinstance(statement, ast.Assign)
            else [statement.target]
        )
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            guard = _comment_tag(module.comment_on(statement.lineno), _GUARDED_BY)
            if guard is not None:
                cls.guards.setdefault(attr, guard)
            value = statement.value
            if value is not None:
                kind = _scan_value_for_lock(value)
                if kind is not None:
                    cls.lock_attrs.setdefault(attr, kind)
                candidates = _value_candidates(value)
                if not candidates and isinstance(value, ast.Name):
                    candidates = param_types.get(value.id, ())
                if candidates:
                    cls.attr_types.setdefault(attr, candidates)
            if isinstance(statement, ast.AnnAssign):
                kind = _scan_lock_annotation(statement.annotation)
                if kind is not None:
                    cls.lock_attrs.setdefault(attr, kind)
                cls.attr_types.setdefault(
                    attr, _annotation_candidates(statement.annotation)
                )


def _index_module(module: Module) -> _ModuleScope:
    scope = _ModuleScope(module=module)
    _index_imports(scope)
    for statement in module.tree.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.functions[statement.name] = statement
            scope.function_returns[statement.name] = _annotation_candidates(
                statement.returns
            )
        elif isinstance(statement, ast.ClassDef):
            _index_class(scope, statement)
    return scope


# ---------------------------------------------------------------------------
# whole-program resolution
# ---------------------------------------------------------------------------


@dataclass
class _FunctionContext:
    """Everything the walker needs to resolve names inside one function."""

    info: FunctionInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    scope: _ModuleScope
    cls: _ClassScope | None
    #: visible function names (own nested + enclosing chain + module level).
    visible: dict[str, str]
    #: local variable name -> candidate class names.
    var_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: local variable name -> already-resolved class (attribute chains).
    var_classes: dict[str, "_ClassScope"] = field(default_factory=dict)
    #: local variable name -> (canonical lock name, kind).
    local_locks: dict[str, tuple[str, str]] = field(default_factory=dict)


class _Resolver:
    """Name -> function/class resolution across the whole project."""

    def __init__(self, project: Project) -> None:
        self.scopes: dict[str, _ModuleScope] = {}
        for module in project:
            self.scopes.setdefault(module.logical_name, _index_module(module))
        self._class_names: dict[str, list[_ClassScope]] = {}
        for scope in self.scopes.values():
            for cls in scope.classes.values():
                self._class_names.setdefault(cls.name, []).append(cls)

    # -- lookups ----------------------------------------------------------

    def unique_class(self, name: str) -> _ClassScope | None:
        owners = self._class_names.get(name, [])
        return owners[0] if len(owners) == 1 else None

    def lock_name(self, cls: _ClassScope, attr: str) -> str:
        if len(self._class_names.get(cls.name, [])) > 1:
            return f"{cls.module}:{cls.name}.{attr}"
        return f"{cls.name}.{attr}"

    def resolve_export(
        self, module_name: str, name: str, _seen: frozenset[str] = frozenset()
    ) -> tuple[str, ...] | None:
        """Resolve ``name`` exported by ``module_name``, following re-export
        chains through package ``__init__`` modules."""
        key = f"{module_name}:{name}"
        if key in _seen:
            return None
        scope = self.scopes.get(module_name)
        if scope is None:
            return None
        if name in scope.functions:
            return ("func", f"{module_name}:{name}")
        if name in scope.classes:
            return ("class", module_name, name)
        imported = scope.imports.get(name)
        if imported is None:
            return None
        if imported[0] == "obj":
            return self.resolve_export(imported[1], imported[2], _seen | {key})
        if imported[0] == "mod":
            return ("mod", imported[1])
        return None

    def class_from_ref(self, ref: tuple[str, ...] | None) -> _ClassScope | None:
        if ref is not None and ref[0] == "class":
            return self.scopes[ref[1]].classes.get(ref[2])
        return None

    def resolve_class_name(
        self, name: str, scope: _ModuleScope
    ) -> _ClassScope | None:
        """A class named in source or in an annotation, searched locally,
        through imports, then as a project-wide unique name (the latter
        covers string annotations whose import is under TYPE_CHECKING)."""
        local = scope.classes.get(name)
        if local is not None:
            return local
        imported = scope.imports.get(name)
        if imported is not None:
            if imported[0] == "obj":
                resolved = self.resolve_export(imported[1], imported[2])
                found = self.class_from_ref(resolved)
                if found is not None:
                    return found
            return None
        return self.unique_class(name)

    def candidates_class(
        self, candidates: tuple[str, ...], scope: _ModuleScope
    ) -> _ClassScope | None:
        """The single project class among annotation candidates, or None."""
        matches = []
        for name in candidates:
            found = self.resolve_class_name(name, scope)
            if found is not None and found not in matches:
                matches.append(found)
        return matches[0] if len(matches) == 1 else None

    def class_attr_type(
        self, cls: _ClassScope, attr: str, scope: _ModuleScope
    ) -> _ClassScope | None:
        for owner in self.mro(cls):
            if attr in owner.attr_types:
                return self.candidates_class(owner.attr_types[attr], scope)
        return None

    def class_lock_attr(self, cls: _ClassScope, attr: str) -> str | None:
        for owner in self.mro(cls):
            if attr in owner.lock_attrs:
                return owner.lock_attrs[attr]
        return None

    def mro(self, cls: _ClassScope) -> Iterator[_ClassScope]:
        """The class and its project base classes (linear, cycle-safe)."""
        seen = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            yield current
            owner_scope = self.scopes.get(current.module)
            for base in current.bases:
                if owner_scope is not None:
                    found = self.resolve_class_name(base, owner_scope)
                    if found is not None:
                        stack.append(found)

    def resolve_method(
        self, cls: _ClassScope, name: str
    ) -> tuple[str, _ClassScope] | None:
        for owner in self.mro(cls):
            if name in owner.methods:
                return f"{owner.module}:{owner.name}.{name}", owner
        return None


# ---------------------------------------------------------------------------
# expression typing and call-target resolution
# ---------------------------------------------------------------------------


def _expr_class(
    expr: ast.expr, ctx: _FunctionContext, resolver: _Resolver
) -> _ClassScope | None:
    """The project class an expression evaluates to, or None."""
    if isinstance(expr, ast.Name):
        if expr.id in ("self", "cls"):
            return ctx.cls
        resolved = ctx.var_classes.get(expr.id)
        if resolved is not None:
            return resolved
        candidates = ctx.var_types.get(expr.id)
        if candidates:
            return resolver.candidates_class(candidates, ctx.scope)
        return None
    if isinstance(expr, ast.Attribute):
        receiver = _expr_class(expr.value, ctx, resolver)
        if receiver is not None:
            return resolver.class_attr_type(receiver, expr.attr, ctx.scope)
        return None
    if isinstance(expr, ast.Call):
        target = _resolve_call_target(expr.func, ctx, resolver)
        if target is None:
            return None
        if target[0] == "class":
            return resolver.scopes[target[1]].classes.get(target[2])
        if target[0] == "func":
            return _return_class(target[1], ctx, resolver)
    return None


def _return_class(
    qualified: str, ctx: _FunctionContext, resolver: _Resolver
) -> _ClassScope | None:
    module_name, _, qualname = qualified.partition(":")
    scope = resolver.scopes.get(module_name)
    if scope is None:
        return None
    if "." in qualname:
        class_name, _, method = qualname.partition(".")
        cls = scope.classes.get(class_name)
        if cls is not None and method in cls.method_returns:
            return resolver.candidates_class(cls.method_returns[method], ctx.scope)
        return None
    candidates = scope.function_returns.get(qualname, ())
    return resolver.candidates_class(candidates, ctx.scope)


def _resolve_call_target(
    func: ast.expr, ctx: _FunctionContext, resolver: _Resolver
) -> tuple[str, ...] | None:
    """``("func", qualified)`` / ``("class", module, name)`` /
    ``("lockctor", kind)`` or None for a call's target expression."""
    if isinstance(func, ast.Name):
        name = func.id
        if name in ctx.visible:
            return ("func", ctx.visible[name])
        if name in ctx.scope.classes:
            return ("class", ctx.scope.module.logical_name, name)
        imported = ctx.scope.imports.get(name)
        if imported is not None:
            if imported[0] == "obj":
                if imported[1] == "threading" and imported[2] in _LOCK_FACTORIES:
                    return ("lockctor", _LOCK_FACTORIES[imported[2]])
                return resolver.resolve_export(imported[1], imported[2])
            return None
        return None
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            imported = ctx.scope.imports.get(func.value.id)
            if imported is not None and imported[0] == "mod":
                if imported[1] == "threading" and func.attr in _LOCK_FACTORIES:
                    return ("lockctor", _LOCK_FACTORIES[func.attr])
                return resolver.resolve_export(imported[1], func.attr)
        receiver = _expr_class(func.value, ctx, resolver)
        if receiver is not None:
            resolved = resolver.resolve_method(receiver, func.attr)
            if resolved is not None:
                return ("func", resolved[0])
            return ("miss",)  # known class, unknown method: count it
    return None


def _own_statements(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of a function body without descending into nested defs
    (those are separate functions with their own walk)."""
    for statement in body:
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield statement
        for block in _child_blocks(statement):
            yield from _own_statements(block)


def _child_blocks(statement: ast.stmt) -> Iterator[list[ast.stmt]]:
    for name in ("body", "orelse", "finalbody"):
        block = getattr(statement, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            yield block
    if isinstance(statement, ast.Try):
        for handler in statement.handlers:
            yield handler.body
    if isinstance(statement, ast.Match):
        for case in statement.cases:
            yield case.body


def _prescan_locals(ctx: _FunctionContext, resolver: _Resolver) -> None:
    """Local variable types and local lock variables, from parameter
    annotations and simple assignments.  Conflicting rebinds drop the type —
    better untyped than wrongly typed."""
    arguments = ctx.node.args
    for argument in (
        arguments.posonlyargs + arguments.args + arguments.kwonlyargs
    ):
        if argument.annotation is not None:
            ctx.var_types[argument.arg] = _annotation_candidates(
                argument.annotation
            )
    seen_twice: set[str] = set()
    for statement in _own_statements(ctx.node.body):
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            name = statement.target.id
            candidates = _annotation_candidates(statement.annotation)
            _bind_local(ctx, name, candidates, seen_twice)
        elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            if not isinstance(target, ast.Name):
                continue
            kind = _scan_value_for_lock(statement.value)
            if kind is not None:
                ctx.local_locks[target.id] = (
                    _local_lock_name(ctx, statement.value, target.id, resolver),
                    kind,
                )
                continue
            candidates = _value_candidates(statement.value)
            if not candidates and isinstance(
                statement.value, (ast.Name, ast.Attribute, ast.Call)
            ):
                # attribute / property chains (``store = self.store``) and
                # typed-return calls resolve to a class directly; sequential
                # processing lets later locals chain off earlier ones.
                found = _expr_class(statement.value, ctx, resolver)
                if found is not None and target.id not in seen_twice:
                    ctx.var_classes[target.id] = found
                continue
            _bind_local(ctx, target.id, candidates, seen_twice)


def _bind_local(
    ctx: _FunctionContext,
    name: str,
    candidates: tuple[str, ...],
    seen_twice: set[str],
) -> None:
    if name in seen_twice:
        return
    if name in ctx.var_types and ctx.var_types[name] != candidates:
        seen_twice.add(name)
        del ctx.var_types[name]
        return
    if candidates:
        ctx.var_types[name] = candidates


def _local_lock_name(
    ctx: _FunctionContext, value: ast.expr, var: str, resolver: _Resolver
) -> str:
    """Canonical name for a lock bound to a local: a lock drawn from a
    ``self.<attr>`` container (``setdefault(key, Lock())``) is named after
    the container attribute; a plain local lock after the function."""
    for node in ast.walk(value):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and ctx.cls is not None
        ):
            return resolver.lock_name(ctx.cls, node.attr)
    module_tail = ctx.info.module.rsplit(".", 1)[-1]
    return f"{module_tail}.{ctx.info.name}.{var}"


# ---------------------------------------------------------------------------
# the lock-aware walker
# ---------------------------------------------------------------------------


@dataclass
class _Facts:
    calls: list[CallSite] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)
    yield_holds: set[str] = field(default_factory=set)
    lock_kinds: dict[str, str] = field(default_factory=dict)
    total_calls: int = 0
    unresolved_calls: int = 0


class _Walker:
    """One pass over one function body, tracking the held-lock set through
    ``with`` nesting and recording call sites and acquisitions."""

    def __init__(
        self,
        ctx: _FunctionContext,
        resolver: _Resolver,
        cm_holds: dict[str, frozenset[str]],
    ) -> None:
        self.ctx = ctx
        self.resolver = resolver
        self.cm_holds = cm_holds
        self.facts = _Facts()

    def run(self) -> _Facts:
        held = set(self._initial_held())
        bare = set(self.ctx.info.holds_locks)
        self._visit_block(self.ctx.node.body, frozenset(held), frozenset(bare))
        return self.facts

    def _initial_held(self) -> Iterator[str]:
        """holds-lock annotations (canonicalized when the attribute is a
        known lock of the enclosing class) and acquires-lock names — the
        context manager's body runs with its declared resource held."""
        for bare in self.ctx.info.holds_locks:
            if self.ctx.cls is not None and self.resolver.class_lock_attr(
                self.ctx.cls, bare
            ):
                yield self.resolver.lock_name(self.ctx.cls, bare)
        yield from self.ctx.info.acquires_locks

    # -- statements -------------------------------------------------------

    def _visit_block(
        self, body: list[ast.stmt], held: frozenset[str], bare: frozenset[str]
    ) -> None:
        for statement in body:
            self._visit_statement(statement, held, bare)

    def _visit_statement(
        self, statement: ast.stmt, held: frozenset[str], bare: frozenset[str]
    ) -> None:
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # separate function; walked on its own with an empty held set
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            self._visit_with(statement, held, bare)
            return
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._visit_expr(child, held, bare)
        for block in _child_blocks(statement):
            self._visit_block(block, held, bare)

    def _visit_with(
        self,
        statement: ast.With | ast.AsyncWith,
        held: frozenset[str],
        bare: frozenset[str],
    ) -> None:
        new_held = set(held)
        new_bare = set(bare)
        for item in statement.items:
            self._visit_expr(item.context_expr, held, bare)
            for lock in self._locks_entered(item.context_expr):
                self.facts.acquisitions.append(
                    Acquisition(
                        function=self.ctx.info.qualified,
                        lock=lock,
                        line=item.context_expr.lineno,
                        held=tuple(sorted(new_held)),
                    )
                )
                new_held.add(lock)
            new_bare |= _bare_locks_in(item.context_expr)
        self._visit_block(
            statement.body, frozenset(new_held), frozenset(new_bare)
        )

    def _locks_entered(self, expr: ast.expr) -> list[str]:
        """Canonical locks a with-item acquires: a lock expression directly,
        or whatever a called context manager holds around its yield."""
        direct = self._resolve_lock(expr)
        if direct is not None:
            name, kind = direct
            self.facts.lock_kinds.setdefault(name, kind)
            return [name]
        if isinstance(expr, ast.Call):
            target = _resolve_call_target(expr.func, self.ctx, self.resolver)
            if target is not None and target[0] == "func":
                return sorted(self.cm_holds.get(target[1], frozenset()))
        return []

    def _resolve_lock(self, expr: ast.expr) -> tuple[str, str] | None:
        if isinstance(expr, ast.Name):
            return self.ctx.local_locks.get(expr.id)
        if isinstance(expr, ast.Attribute):
            receiver = _expr_class(expr.value, self.ctx, self.resolver)
            if receiver is not None:
                kind = self.resolver.class_lock_attr(receiver, expr.attr)
                if kind is not None:
                    return self.resolver.lock_name(receiver, expr.attr), kind
        return None

    # -- expressions ------------------------------------------------------

    def _visit_expr(
        self, expr: ast.expr, held: frozenset[str], bare: frozenset[str]
    ) -> None:
        for node in _own_expr_nodes(expr):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                self.facts.yield_holds |= held
            elif isinstance(node, ast.Call):
                self._record_call(node, held, bare)

    def _record_call(
        self, call: ast.Call, held: frozenset[str], bare: frozenset[str]
    ) -> None:
        self.facts.total_calls += 1
        target = _resolve_call_target(call.func, self.ctx, self.resolver)
        if target is None:
            if (
                isinstance(call.func, ast.Name)
                and call.func.id not in _BUILTIN_NAMES
            ):
                self.facts.unresolved_calls += 1
            return
        if target[0] == "lockctor":
            return
        if target[0] == "miss":
            self.facts.unresolved_calls += 1
            return
        callee: str | None = None
        if target[0] == "func":
            callee = target[1]
        elif target[0] == "class":
            cls = self.resolver.scopes[target[1]].classes.get(target[2])
            if cls is not None:
                resolved = self.resolver.resolve_method(cls, "__init__")
                if resolved is not None:
                    callee = resolved[0]
        if callee is not None:
            self.facts.calls.append(
                CallSite(
                    caller=self.ctx.info.qualified,
                    callee=callee,
                    line=call.lineno,
                    held=tuple(sorted(held)),
                    bare_held=tuple(sorted(bare)),
                )
            )


def _bare_locks_in(expression: ast.expr) -> set[str]:
    """Every attribute/name token of a with-item expression — the same
    over-approximation REP101's module-level check uses, so the
    caller-aware ``# holds-lock:`` verification agrees with it."""
    locks = set()
    for node in ast.walk(expression):
        if isinstance(node, ast.Attribute):
            locks.add(node.attr)
        elif isinstance(node, ast.Name):
            locks.add(node.id)
    return locks


def _own_expr_nodes(expr: ast.expr) -> Iterator[ast.AST]:
    """All nodes of an expression except lambda bodies (deferred code does
    not run under the enclosing with-block)."""
    if isinstance(expr, ast.Lambda):
        return
    yield expr
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            yield from _own_expr_nodes(child)
        elif not isinstance(child, ast.expr_context):
            for inner in ast.walk(child):
                if isinstance(inner, (ast.Yield, ast.YieldFrom, ast.Call)):
                    yield inner


# ---------------------------------------------------------------------------
# whole-program assembly
# ---------------------------------------------------------------------------


def _lock_annotations(
    module: Module,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    tag: str,
) -> tuple[str, ...]:
    """Values of ``# holds-lock:`` / ``# acquires-lock:`` on the def line or
    the first body line (matching REP101's convention)."""
    values = []
    lines = [node.lineno]
    if node.body:
        lines.append(node.body[0].lineno)
    for line in lines:
        value = _comment_tag(module.comment_on(line), tag)
        if value is not None and value not in values:
            values.append(value)
    return tuple(values)


def _canonical_acquires(
    resolver: _Resolver,
    scope: _ModuleScope,
    cls: _ClassScope | None,
    name: str,
    raw: tuple[str, ...],
) -> tuple[str, ...]:
    canonical = []
    module_tail = scope.module.logical_name.rsplit(".", 1)[-1]
    for value in raw:
        if cls is not None:
            canonical.append(resolver.lock_name(cls, value))
        else:
            canonical.append(f"{module_tail}.{name}.{value}")
    return tuple(canonical)


def _collect_contexts(
    resolver: _Resolver, project: Project
) -> list[_FunctionContext]:
    """Every function in the project, with its resolution context.  Order is
    the project's module order, then source order — deterministic."""
    contexts: list[_FunctionContext] = []
    seen_modules: set[str] = set()
    for module in project:
        if module.logical_name in seen_modules:
            continue
        seen_modules.add(module.logical_name)
        scope = resolver.scopes[module.logical_name]
        module_visible = {
            name: f"{module.logical_name}:{name}" for name in scope.functions
        }
        for name, node in scope.functions.items():
            _collect_one(
                resolver, contexts, scope, None, node, name, module_visible
            )
        for cls in scope.classes.values():
            for method_name, method in cls.methods.items():
                _collect_one(
                    resolver,
                    contexts,
                    scope,
                    cls,
                    method,
                    f"{cls.name}.{method_name}",
                    module_visible,
                )
    return contexts


def _collect_one(
    resolver: _Resolver,
    contexts: list[_FunctionContext],
    scope: _ModuleScope,
    cls: _ClassScope | None,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    parent_visible: dict[str, str],
    parent: _FunctionContext | None = None,
) -> None:
    module = scope.module
    qualified = f"{module.logical_name}:{qualname}"
    nested = _direct_nested(node)
    visible = dict(parent_visible)
    for child in nested:
        visible[child.name] = f"{qualified}.{child.name}"
    raw_acquires = _lock_annotations(module, node, _ACQUIRES_LOCK)
    info = FunctionInfo(
        qualified=qualified,
        module=module.logical_name,
        qualname=qualname,
        name=node.name,
        class_name=cls.name if cls is not None else None,
        lineno=node.lineno,
        display_path=module.display_path,
        is_contextmanager=bool(_decorator_names(node) & _CM_DECORATORS),
        holds_locks=_lock_annotations(module, node, _HOLDS_LOCK),
        acquires_locks=_canonical_acquires(
            resolver, scope, cls, node.name, raw_acquires
        ),
    )
    ctx = _FunctionContext(
        info=info, node=node, scope=scope, cls=cls, visible=visible
    )
    if parent is not None:
        # closures see the enclosing function's locals (read-only use is
        # the idiom: a nested worker taking a lock created by its parent).
        ctx.var_types.update(parent.var_types)
        ctx.var_classes.update(parent.var_classes)
        ctx.local_locks.update(parent.local_locks)
    _prescan_locals(ctx, resolver)
    contexts.append(ctx)
    for child in nested:
        _collect_one(
            resolver,
            contexts,
            scope,
            cls,
            child,
            f"{qualname}.{child.name}",
            visible,
            parent=ctx,
        )


def _direct_nested(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions nested directly in ``node`` — at any statement depth, but
    not inside a deeper def (those belong to their own parent)."""
    found: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

    def scan(body: list[ast.stmt]) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append(statement)
                continue
            if isinstance(statement, ast.ClassDef):
                continue
            for block in _child_blocks(statement):
                scan(block)

    scan(node.body)
    return found


def build_call_graph(project: Project) -> CallGraph:
    """Index the project and extract the whole-program call graph."""
    resolver = _Resolver(project)
    contexts = _collect_contexts(resolver, project)

    # Context managers first: the locks they hold at yield flow into every
    # caller's with-body, and CMs may wrap each other, so iterate to a
    # fixpoint before the final full pass.
    cm_holds: dict[str, frozenset[str]] = {
        ctx.info.qualified: frozenset(ctx.info.acquires_locks)
        for ctx in contexts
        if ctx.info.is_contextmanager
    }
    cm_contexts = [ctx for ctx in contexts if ctx.info.is_contextmanager]
    for _ in range(5):
        changed = False
        for ctx in cm_contexts:
            facts = _Walker(ctx, resolver, cm_holds).run()
            settled = frozenset(facts.yield_holds) | frozenset(
                ctx.info.acquires_locks
            )
            if settled != cm_holds[ctx.info.qualified]:
                cm_holds[ctx.info.qualified] = settled
                changed = True
        if not changed:
            break

    functions: dict[str, FunctionInfo] = {}
    calls: list[CallSite] = []
    acquisitions: list[Acquisition] = []
    lock_kinds: dict[str, str] = {}
    total_calls = 0
    unresolved = 0
    for ctx in contexts:
        functions[ctx.info.qualified] = ctx.info
        facts = _Walker(ctx, resolver, cm_holds).run()
        calls.extend(facts.calls)
        acquisitions.extend(facts.acquisitions)
        lock_kinds.update(facts.lock_kinds)
        total_calls += facts.total_calls
        unresolved += facts.unresolved_calls

    guarded: dict[str, GuardedClass] = {}
    seen_scopes: set[str] = set()
    for scope in resolver.scopes.values():
        if scope.module.logical_name in seen_scopes:
            continue
        seen_scopes.add(scope.module.logical_name)
        for cls in scope.classes.values():
            for attr, kind in cls.lock_attrs.items():
                lock_kinds.setdefault(resolver.lock_name(cls, attr), kind)
            if cls.guards:
                guarded[f"{cls.module}:{cls.name}"] = GuardedClass(
                    name=cls.name, module=cls.module, guards=dict(cls.guards)
                )

    return CallGraph(
        functions=functions,
        calls=calls,
        acquisitions=acquisitions,
        lock_kinds=lock_kinds,
        guarded_classes=guarded,
        modules=len({module.logical_name for module in project}),
        total_calls=total_calls,
        unresolved_calls=unresolved,
    )
