"""Whole-program semantic analysis: call graph, lock order, effects.

This package upgrades :mod:`repro.analysis` from per-module syntactic lint
to interprocedural reasoning:

* :mod:`~repro.analysis.semantic.callgraph` — import resolution and a
  cross-module call graph with the lock context of every call site;
* :mod:`~repro.analysis.semantic.effects` — direct and transitive effect
  sets (clock, randomness, env, file-io, global-mutation) per function;
* :mod:`~repro.analysis.semantic.locks` — the lock-order graph and its
  deadlock cycles;
* :mod:`~repro.analysis.semantic.model` — the bundled
  :class:`~repro.analysis.semantic.model.SemanticModel` plus the
  digest-keyed disk cache shared by ``repro lint`` and ``repro analyze``.

The model powers rules REP108 (lock-order cycles), REP109 (planner purity
by reachability) and the caller-aware arm of REP101, as well as the
``repro analyze`` CLI and the runtime sanitizer's guarded-class discovery
(:mod:`repro.analysis.runtime`).
"""

from __future__ import annotations

from repro.analysis.semantic.callgraph import (
    Acquisition,
    CallGraph,
    CallSite,
    FunctionInfo,
    GuardedClass,
    build_call_graph,
)
from repro.analysis.semantic.locks import LockEdge, LockGraph, build_lock_graph
from repro.analysis.semantic.model import (
    SemanticModel,
    build_semantic_model,
    load_cached_model,
    project_digest,
    save_model,
)

__all__ = [
    "Acquisition",
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "GuardedClass",
    "LockEdge",
    "LockGraph",
    "SemanticModel",
    "build_call_graph",
    "build_lock_graph",
    "build_semantic_model",
    "load_cached_model",
    "project_digest",
    "save_model",
]
