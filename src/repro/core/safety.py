"""Safe queries (Section III-C of the paper).

A DFA ``M`` is *safe* with respect to a specification ``G`` when, for every
module ``M`` of ``G`` and every pair of DFA states ``(q1, q2)``, either every
execution of the module contains an input-to-output path whose tags drive the
DFA from ``q1`` to ``q2`` or none does (Definition 12).  A regular path query
is safe iff its *minimal* DFA is safe (Definition 13 together with
Lemma 3.2).  Safety is exactly what allows the run-agnostic λ matrices to
stand in for whatever execution the run actually chose.

The check follows the algorithm sketched in the paper: λ of an atomic module
is the identity; a production is *verifiable* once λ is defined for every
module in its body, at which point the body's λ can be computed by a
topological sweep; the DFA is safe iff λ ends up consistently defined for all
composite modules.  Visiting each production at most ``|P|`` times gives the
``O(|Q|² · |G|)``-style bound of the paper (our implementation is a simple
worklist fixpoint with the same asymptotics up to a factor of ``|P|``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.automata.boolean_matrix import BooleanMatrix
from repro.automata.dfa import DFA, dfa_from_regex
from repro.automata.regex import RegexNode, parse_regex
from repro.workflow.simple import SimpleWorkflow
from repro.workflow.spec import Specification

__all__ = [
    "SafetyViolation",
    "SafetyReport",
    "body_transition_matrix",
    "analyze_safety",
    "is_safe_query",
    "query_dfa",
]


@dataclass(frozen=True)
class SafetyViolation:
    """One inconsistency found while checking safety.

    ``module`` admits two derivations whose input-to-output path-transition
    relations differ; ``production`` is the production whose recomputed λ
    disagreed with the previously established one.
    """

    module: str
    production: int
    established: BooleanMatrix
    conflicting: BooleanMatrix

    def state_pairs(self) -> list[tuple[int, int]]:
        """The unsafe DFA state pairs witnessed by this violation."""
        differing = []
        size = self.established.size
        for q1 in range(size):
            for q2 in range(size):
                if self.established.get(q1, q2) != self.conflicting.get(q1, q2):
                    differing.append((q1, q2))
        return differing


@dataclass
class SafetyReport:
    """Result of a safety analysis of one DFA against one specification."""

    spec: Specification
    dfa: DFA
    lambdas: dict[str, BooleanMatrix] = field(default_factory=dict)
    violations: list[SafetyViolation] = field(default_factory=list)

    @property
    def is_safe(self) -> bool:
        return not self.violations

    def lambda_of(self, module: str) -> BooleanMatrix:
        """The λ matrix of a module (only meaningful when the DFA is safe)."""
        return self.lambdas[module]


def query_dfa(spec: Specification, query: str | RegexNode) -> DFA:
    """The minimal complete DFA of a query over the specification's tags."""
    return dfa_from_regex(parse_regex(query), spec.tags)


def body_transition_matrix(
    body: SimpleWorkflow,
    dfa: DFA,
    node_lambda: Callable[[int], BooleanMatrix],
) -> BooleanMatrix:
    """λ of one production body.

    ``node_lambda(position) -> BooleanMatrix`` supplies the λ matrix of the
    module at each body position.  The result relates DFA states at the
    body's input (the source node's input) to DFA states at its output (the
    sink node's output): entry ``(q1, q2)`` is set iff some source-to-sink
    path — descending through nested modules according to their λ — drives
    the DFA from ``q1`` to ``q2``.
    """
    size = dfa.state_count
    # reach_in[p] relates states at the body input to states at node p's input.
    reach_in: dict[int, BooleanMatrix] = {body.source: BooleanMatrix.identity(size)}
    tag_matrix = {tag: dfa.transition_matrix(tag) for tag in body.tags()}
    for position in body.topological_order:
        incoming = reach_in.get(position)
        if incoming is None or incoming.is_zero():
            continue
        at_output = incoming @ node_lambda(position)
        for edge in body.edges:
            if edge.source != position:
                continue
            contribution = at_output @ tag_matrix[edge.tag]
            existing = reach_in.get(edge.target)
            reach_in[edge.target] = contribution if existing is None else existing | contribution
    sink_in = reach_in.get(body.sink, BooleanMatrix.zero(size))
    return sink_in @ node_lambda(body.sink)


def analyze_safety(spec: Specification, dfa: DFA) -> SafetyReport:
    """Check whether a DFA is safe with respect to a specification.

    Returns a :class:`SafetyReport` carrying the λ matrices (the by-product
    the paper mentions, reused by the query index) and any violations found.
    """
    if not (spec.tags <= dfa.alphabet):
        dfa = dfa.with_alphabet(spec.tags)
    size = dfa.state_count
    report = SafetyReport(spec=spec, dfa=dfa)
    lambdas: dict[str, BooleanMatrix] = {
        module: BooleanMatrix.identity(size) for module in spec.atomic_modules
    }

    pending = set(range(len(spec.productions)))
    progress = True
    while pending and progress:
        progress = False
        for index in sorted(pending):
            production = spec.production(index)
            body = production.body
            if any(module not in lambdas for module in body.nodes):
                continue
            pending.discard(index)
            progress = True
            computed = body_transition_matrix(
                body, dfa, lambda position, body=body: lambdas[body.module_at(position)]
            )
            established = lambdas.get(production.head)
            if established is None:
                lambdas[production.head] = computed
            elif established != computed:
                report.violations.append(
                    SafetyViolation(
                        module=production.head,
                        production=index,
                        established=established,
                        conflicting=computed,
                    )
                )
    # Specification validation guarantees productivity, so the fixpoint above
    # always defines λ for every composite module unless a violation stopped
    # nothing — pending productions at this point can only remain if their
    # head already failed, which is already reported.
    report.lambdas = lambdas
    return report


def is_safe_query(spec: Specification, query: str | RegexNode) -> bool:
    """Is the regular path query safe for the specification?

    Implements Definition 13 via Lemma 3.2: build the minimal DFA of the
    query (over the specification's tag alphabet) and check its safety.
    """
    return analyze_safety(spec, query_dfa(spec, query)).is_safe
