"""The physical planner: logical plan + workload → operator tree.

``build_physical_plan`` is the single seam between the planner layer
(:mod:`repro.core.decomposition` — safety, decomposition, macro DFAs, cost
memos) and the executors (:mod:`repro.core.exec.executor`).  It resolves

* the **strategy** of the unsafe remainder — per-seed frontier search vs the
  bottom-up join evaluation — with the cost model of
  :mod:`repro.core.optimizer`, and
* the frontier **direction**: forward runs one product search per requested
  source over the macro DFA; backward runs one per requested *target* over
  the reversed macro DFA (:meth:`repro.automata.dfa.DFA.reversed`),
  following run and macro edges against their direction.  ``auto`` compares
  the two seed counts under the same per-seed cost bound, so a query with a
  handful of targets and thousands of sources flips to backward instead of
  sweeping the run forward.

The decision itself is O(1) arithmetic and is always computed fresh; used
decisions are *recorded* on the :class:`DecompositionPlan` (keyed by a
log-bucketed workload shape) and persisted with it as an inspectable routing
history — and, more importantly, the reversed macro DFA is stored alongside
the forward one, so a restarted service pays no re-reversal.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from repro.automata.regex import RegexNode
from repro.core.allpairs import AllPairsOptions, all_pairs_iter
from repro.core.decomposition import (
    DecompositionPlan,
    IndexProvider,
    _macro_dfa,
    _reversed_macro_dfa,
    _substitute_macros,
    label_routed_subtrees,
)
from repro.core.exec.config import DIRECTIONS, ExecutorConfig
from repro.core.exec.ops import (
    FrontierSearchOp,
    JoinOp,
    LabelDecodeOp,
    MacroRelation,
    PhysicalOp,
    RestrictOp,
)
from repro.core.optimizer import estimate_frontier_search_cost, estimate_join_cost
from repro.core.relations import restriction_universe
from repro.obs import get_tracer
from repro.workflow.run import Run

__all__ = ["PhysicalPlan", "build_physical_plan"]

_STRATEGIES = ("auto", "frontier", "join")


@dataclass
class PhysicalPlan:
    """A fully resolved physical plan: the operator tree plus everything the
    executor needs to run it (run, options, index provider, executor
    config).  ``strategy`` and ``direction`` record the resolved choices for
    reporting (``direction`` is ``"-"`` for non-frontier plans)."""

    run: Run
    logical: DecompositionPlan
    root: PhysicalOp
    options: AllPairsOptions
    indexes: IndexProvider
    executor: ExecutorConfig
    strategy: str
    direction: str

    def describe(self) -> str:
        # The *configured* kernel, deliberately: resolving "auto" reads the
        # environment, and this module stays deterministic (REP103/REP109).
        parts = f"strategy={self.strategy}, kernel={self.executor.kernel}"
        if self.strategy == "frontier":
            parts += f", direction={self.direction}, workers={self.executor.workers}"
        return f"PhysicalPlan({parts}) over run of {self.run.node_count} nodes"


def _seed_count(
    run: Run, side: Sequence[str] | None, allowed: frozenset[str] | None
) -> int:
    """How many frontier searches one direction would launch."""
    if side is None:
        return len(allowed) if allowed is not None else run.node_count
    seeds = set(side)
    if allowed is not None:
        seeds &= allowed
    return len(seeds)


def _resolve_direction(
    run: Run,
    plan: DecompositionPlan,
    l1: Sequence[str] | None,
    l2: Sequence[str] | None,
    allowed: frozenset[str] | None,
    requested: str,
) -> tuple[str, float]:
    """The frontier direction and its estimated cost for this workload.

    Always computed from the exact seed counts — the per-seed bound is
    direction-independent, so the comparison is O(1) arithmetic and caching
    it could only ever get it wrong.  (The decision is *recorded* on the
    plan afterwards, when a frontier plan actually uses it — see
    ``_record_direction`` — purely so it round-trips through the store as
    an inspectable routing history, never as a routing input.)
    """
    allowed_count = len(allowed) if allowed is not None else None
    forward_seeds = _seed_count(run, l1, allowed)
    backward_seeds = _seed_count(run, l2, allowed)

    def cost(seed_count: int) -> float:
        return estimate_frontier_search_cost(
            run, plan.root, seed_count, allowed_count=allowed_count
        )

    if requested == "forward":
        return "forward", cost(forward_seeds)
    if requested == "backward":
        return "backward", cost(backward_seeds)
    if l2 is None:
        # No target list: a backward sweep would seed from the whole run.
        return "forward", cost(forward_seeds)
    forward_cost = cost(forward_seeds)
    backward_cost = cost(backward_seeds)
    if backward_cost < forward_cost:
        return "backward", backward_cost
    return "forward", forward_cost


def _record_direction(
    run: Run,
    plan: DecompositionPlan,
    l1: Sequence[str] | None,
    l2: Sequence[str] | None,
    allowed: frozenset[str] | None,
    direction: str,
) -> None:
    """Record a *used* frontier direction under a log-bucketed workload
    shape.  The direction is part of the key, so two workloads that share a
    bucket but resolve differently (or a config-forced override) coexist as
    separate records instead of flapping — each (shape, direction) pair is
    written once, and the store entry is only re-persisted when a genuinely
    new combination appears."""
    forward_seeds = _seed_count(run, l1, allowed)
    backward_seeds = _seed_count(run, l2, allowed)
    key = f"{forward_seeds.bit_length()}:{backward_seeds.bit_length()}:{direction}"
    if plan.cached_direction(key) != direction:
        plan.remember_direction(key, direction)


def _macro_decoder(
    run: Run,
    subtree: RegexNode,
    indexes: IndexProvider,
    allowed: frozenset[str] | None,
    options: AllPairsOptions,
) -> Callable[[], Iterable[tuple[str, str]]]:
    """The lazy label decode of one routed safe subquery's relation,
    restricted to the ``allowed`` universe (runs once per MacroRelation)."""

    def decode() -> Iterable[tuple[str, str]]:
        index = indexes(subtree)
        universe = list(allowed) if allowed is not None else list(run.node_ids())
        return all_pairs_iter(run, universe, universe, index, options)

    return decode


def _frontier_op(
    run: Run,
    plan: DecompositionPlan,
    routed: list[RegexNode],
    l1: Sequence[str] | None,
    l2: Sequence[str] | None,
    allowed: frozenset[str] | None,
    direction: str,
    options: AllPairsOptions,
    indexes: IndexProvider,
) -> FrontierSearchOp:
    rewritten, macro_map = (
        _substitute_macros(plan.root, routed) if routed else (plan.root, {})
    )
    macro_tags = set(macro_map)
    if direction == "backward":
        dfa = _reversed_macro_dfa(plan, rewritten, macro_tags)
        seeds = tuple(dict.fromkeys(l2)) if l2 is not None else run.node_ids()
        emit_filter = frozenset(l1) if l1 is not None else None
    else:
        dfa = _macro_dfa(plan, rewritten, macro_tags)
        seeds = tuple(dict.fromkeys(l1)) if l1 is not None else run.node_ids()
        emit_filter = frozenset(l2) if l2 is not None else None
    macros = {
        tag: MacroRelation(_macro_decoder(run, subtree, indexes, allowed, options))
        for tag, subtree in macro_map.items()
    }
    return FrontierSearchOp(
        direction=direction,
        dfa=dfa,
        seeds=seeds,
        emit_filter=emit_filter,
        allowed=allowed,
        macros=macros,
    )


def build_physical_plan(
    run: Run,
    plan: DecompositionPlan,
    l1: Sequence[str] | None = None,
    l2: Sequence[str] | None = None,
    *,
    options: AllPairsOptions = AllPairsOptions(),
    indexes: IndexProvider,
    strategy: str = "auto",
    direction: str = "auto",
    executor: ExecutorConfig | None = None,
    push_restrictions: bool = True,
    cost_based_routing: bool = True,
) -> PhysicalPlan:
    """Resolve a logical decomposition plan into a physical operator tree.

    Pure and cheap: no relation is materialized, no search runs, and the
    only side effects are memoizations on the logical plan (macro DFAs,
    direction decisions) — exactly the artifacts the cache layer persists.
    ``direction`` overrides the executor config's when not ``"auto"``.
    """
    with get_tracer().span("exec.plan", requested=strategy) as span:
        physical = _build_physical_plan(
            run,
            plan,
            l1,
            l2,
            options=options,
            indexes=indexes,
            strategy=strategy,
            direction=direction,
            executor=executor,
            push_restrictions=push_restrictions,
            cost_based_routing=cost_based_routing,
        )
        span.set("strategy", physical.strategy)
        span.set("direction", physical.direction)
        return physical


def _build_physical_plan(
    run: Run,
    plan: DecompositionPlan,
    l1: Sequence[str] | None,
    l2: Sequence[str] | None,
    *,
    options: AllPairsOptions,
    indexes: IndexProvider,
    strategy: str,
    direction: str,
    executor: ExecutorConfig | None,
    push_restrictions: bool,
    cost_based_routing: bool,
) -> PhysicalPlan:
    if strategy not in _STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; use 'auto', 'frontier' or 'join'"
        )
    if direction not in DIRECTIONS:
        raise ValueError(
            f"unknown direction {direction!r}; use one of {list(DIRECTIONS)}"
        )
    config = executor if executor is not None else ExecutorConfig()
    if direction != "auto":
        config = replace(config, direction=direction)

    if plan.is_fully_safe:
        op = LabelDecodeOp(
            node=plan.root,
            l1=tuple(l1) if l1 is not None else run.node_ids(),
            l2=tuple(l2) if l2 is not None else run.node_ids(),
        )
        return PhysicalPlan(
            run=run,
            logical=plan,
            root=op,
            options=options,
            indexes=indexes,
            executor=config,
            strategy="safe",
            direction="-",
        )

    allowed = restriction_universe(run, l1, l2) if push_restrictions else None
    routed = label_routed_subtrees(plan, run, cost_based_routing=cost_based_routing)

    resolved_direction: str | None = None
    if strategy != "auto":
        chosen = strategy
    elif not push_restrictions or (l1 is None and l2 is None):
        # The pre-pushdown reference point — and the unrestricted case, whose
        # relations the pruning cannot shrink — evaluate with joins.
        chosen = "join"
    else:
        resolved_direction, frontier_cost = _resolve_direction(
            run, plan, l1, l2, allowed, config.direction
        )
        chosen = (
            "frontier"
            if frontier_cost <= estimate_join_cost(run, plan.root)
            else "join"
        )

    if chosen == "frontier":
        if resolved_direction is None:
            resolved_direction, _ = _resolve_direction(
                run, plan, l1, l2, allowed, config.direction
            )
        _record_direction(run, plan, l1, l2, allowed, resolved_direction)
        op: PhysicalOp = _frontier_op(
            run, plan, routed, l1, l2, allowed, resolved_direction, options, indexes
        )
    else:
        resolved_direction = "-"
        op = RestrictOp(
            child=JoinOp(root=plan.root, routed=frozenset(routed), allowed=allowed),
            l1=tuple(l1) if l1 is not None else None,
            l2=tuple(l2) if l2 is not None else None,
        )
    return PhysicalPlan(
        run=run,
        logical=plan,
        root=op,
        options=options,
        indexes=indexes,
        executor=config,
        strategy=chosen,
        direction=resolved_direction,
    )
