"""Physical-plan execution: serial, thread-pool and process-pool variants.

``execute`` materializes a plan's result set; ``execute_iter`` streams it.
The interesting operator is :class:`FrontierSearchOp`:

* **serial** — one pruned product search per seed on the calling thread,
  yielding each seed's pairs as they are found (the PR-3 behaviour, now
  direction-aware);
* **parallel** — the per-seed searches are embarrassingly parallel, so the
  seed list is split into contiguous chunks fanned across a worker pool.
  The ``thread`` backend shares the run and the lazily decoded macro
  relations directly (cheap, but GIL-bound); the ``process`` backend ships a
  plain-data :class:`~repro.core.exec.worker.SearchContext` to each worker
  for true parallelism, falling back to threads where process pools are
  unavailable.  ``ordered=True`` merges chunk results in seed order;
  otherwise chunks stream in completion order.

A service-supplied :class:`~repro.core.exec.config.WorkerBudget` caps the
granted fan-out: when the shared pool is saturated the search simply runs
serial instead of oversubscribing the host.
"""

from __future__ import annotations

from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from multiprocessing import shared_memory
from pickle import PicklingError
import multiprocessing
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping

from repro.automata.regex import RegexNode
from repro.core.allpairs import all_pairs_iter, all_pairs_safe_query
from repro.core.bitset import NodeInterner, PackedFrontier, RowPropagator
from repro.core.exec.arena import create_arena, release_arena
from repro.core.exec.ops import (
    FrontierSearchOp,
    JoinOp,
    LabelDecodeOp,
    RestrictOp,
)
from repro.core.exec.plan import PhysicalPlan
from repro.core.exec.worker import (
    ChunkPayload,
    ChunkRecord,
    ChunkResult,
    PackedSearchContext,
    SearchContext,
    init_packed_worker,
    init_worker,
    search_seeds,
    search_seeds_packed,
    timed_packed_chunk,
    timed_search_chunk,
)
from repro.core.relations import (
    NodePairs,
    evaluate_regex_relation,
    evaluate_regex_relation_packed,
    restrict,
)
from repro.obs import Span, SpanContext, Tracer, get_tracer

__all__ = ["execute", "execute_iter"]


def execute(plan: PhysicalPlan) -> NodePairs:
    """Run a physical plan to a materialized set of ``(source, target)``."""
    root = plan.root
    if isinstance(root, LabelDecodeOp):
        with get_tracer().span(
            "exec.label_decode", sources=len(root.l1), targets=len(root.l2)
        ) as span:
            result = all_pairs_safe_query(
                plan.run,
                list(root.l1),
                list(root.l2),
                plan.indexes(root.node),
                plan.options,
            )
            span.set("pairs", len(result))
            return result
    if isinstance(root, FrontierSearchOp):
        return set(_iter_frontier(plan, root))
    if isinstance(root, RestrictOp):
        with get_tracer().span("exec.restrict") as span:
            inner = _execute_join(plan, root.child)
            result = restrict(inner, root.l1, root.l2)
            span.set("pairs", len(result))
            return result
    if isinstance(root, JoinOp):
        return _execute_join(plan, root)
    raise TypeError(f"unknown physical operator {root!r}")


def execute_iter(plan: PhysicalPlan) -> Iterator[tuple[str, str]]:
    """Stream a physical plan's pairs (each exactly once, unordered unless
    the executor config says ``ordered``).  Frontier and label-decode plans
    stream genuinely; join plans materialize first (they have no streaming
    formulation) and then iterate.
    """
    root = plan.root
    if isinstance(root, LabelDecodeOp):
        return get_tracer().wrap_iter(
            "exec.label_decode",
            all_pairs_iter(
                plan.run,
                list(root.l1),
                list(root.l2),
                plan.indexes(root.node),
                plan.options,
            ),
            sources=len(root.l1),
            targets=len(root.l2),
        )
    if isinstance(root, FrontierSearchOp):
        return _iter_frontier(plan, root)
    return iter(execute(plan))


# ---------------------------------------------------------------------------
# Join execution
# ---------------------------------------------------------------------------


def _execute_join(plan: PhysicalPlan, op: JoinOp) -> NodePairs:
    """Bottom-up relational evaluation with routed safe subtrees answered by
    the labeling engine over the ``allowed`` universe."""
    run, options, indexes = plan.run, plan.options, plan.indexes
    universe: list[str] | None = None

    def subquery_evaluator(node: RegexNode) -> NodePairs | None:
        nonlocal universe
        if node not in op.routed:
            return None
        if universe is None:
            universe = (
                list(op.allowed) if op.allowed is not None else list(run.node_ids())
            )
        return all_pairs_safe_query(run, universe, universe, indexes(node), options)

    kernel = plan.executor.kernel_for("join")
    evaluate = (
        evaluate_regex_relation_packed if kernel == "packed" else evaluate_regex_relation
    )
    with get_tracer().span("exec.join", routed=len(op.routed), kernel=kernel) as span:
        result = evaluate(
            run, op.root, subquery_evaluator=subquery_evaluator, allowed=op.allowed
        )
        span.set("pairs", len(result))
        return result


# ---------------------------------------------------------------------------
# Frontier execution
# ---------------------------------------------------------------------------


def _iter_frontier(plan: PhysicalPlan, op: FrontierSearchOp) -> Iterator[tuple[str, str]]:
    tracer = get_tracer()
    config = plan.executor
    requested = min(config.workers, len(op.seeds)) if op.seeds else 1
    if requested <= 1:
        with tracer.span(
            "exec.frontier_search",
            mode="serial",
            direction=op.direction,
            seeds=len(op.seeds),
        ):
            yield from _iter_frontier_serial(plan, op)
        return
    if config.budget is None:
        with tracer.span(
            "exec.frontier_search",
            mode="parallel",
            direction=op.direction,
            seeds=len(op.seeds),
            workers=requested,
        ) as span:
            yield from _iter_frontier_parallel(plan, op, requested, None, span)
        return
    granted = config.budget.acquire(requested)
    if granted <= 1:
        config.budget.release(granted)
        # The budget is saturated, so the search degrades to serial on the
        # calling thread; the mode attribute keeps the degrade visible in
        # traces, still correctly nested under the caller's span.
        with tracer.span(
            "exec.frontier_search",
            mode="serial-degraded",
            direction=op.direction,
            seeds=len(op.seeds),
        ):
            yield from _iter_frontier_serial(plan, op)
        return
    released = False
    release_lock = threading.Lock()

    def release() -> None:
        # The searches are done the moment the last chunk future completes;
        # a slow consumer draining the stream afterwards must not keep
        # budget slots hostage, so release exactly once, as early as that
        # (called from future done-callbacks and, as the safety net, from
        # the finally below — hence the lock).
        nonlocal released
        with release_lock:
            if released:
                return
            released = True
        config.budget.release(granted)

    try:
        with tracer.span(
            "exec.frontier_search",
            mode="parallel",
            direction=op.direction,
            seeds=len(op.seeds),
            workers=granted,
        ) as span:
            yield from _iter_frontier_parallel(plan, op, granted, release, span)
    finally:
        release()


def _graph_adjacency(
    plan: PhysicalPlan, op: FrontierSearchOp
) -> Mapping[str, tuple[tuple[str, str], ...]]:
    return plan.run.successors if op.direction == "forward" else plan.run.predecessors


def _lazy_macro_successors(
    op: FrontierSearchOp,
) -> dict[str, Callable[[str], tuple[str, ...]]] | None:
    return {
        tag: relation.expander(op.direction) for tag, relation in op.macros.items()
    } or None


def _packed_search_parts(
    plan: PhysicalPlan, op: FrontierSearchOp
) -> tuple[PackedFrontier, NodeInterner, int | None]:
    """Compile the op's search against the run's memoized packed view.

    Macros stay lazy (a :meth:`MacroRelation.packed_propagator` decodes and
    packs on the first frontier that crosses the macro edge), matching the
    laziness of the set-based serial/thread paths.
    """
    view = plan.run.packed
    interner = view.interner
    graph = view.graph(op.direction)
    allowed_mask = (
        interner.full_mask if op.allowed is None else interner.mask_of(op.allowed)
    )
    macros: dict[str, RowPropagator] = {
        tag: relation.packed_propagator(op.direction, interner)
        for tag, relation in op.macros.items()
    }
    frontier = PackedFrontier(
        graph.by_tag,
        op.dfa,
        allowed=allowed_mask,
        macros=macros or None,
        any_tag=graph.any_tag,
    )
    emit_mask = None if op.emit_filter is None else interner.mask_of(op.emit_filter)
    return frontier, interner, emit_mask


def _iter_frontier_serial(
    plan: PhysicalPlan, op: FrontierSearchOp
) -> Iterator[tuple[str, str]]:
    if plan.executor.kernel_for("frontier") == "packed":
        frontier, interner, emit_mask = _packed_search_parts(plan, op)
        forward = op.direction == "forward"
        for seed in op.seeds:
            yield from search_seeds_packed(
                frontier, interner, (seed,), emit_mask=emit_mask, forward=forward
            )
        return
    adjacency = _graph_adjacency(plan, op)
    macro_successors = _lazy_macro_successors(op)
    for seed in op.seeds:
        yield from search_seeds(
            adjacency,
            op.dfa,
            (seed,),
            allowed=op.allowed,
            emit_filter=op.emit_filter,
            macro_successors=macro_successors,
            forward=op.direction == "forward",
        )


def _chunked(seeds: tuple[str, ...], chunk_count: int) -> list[tuple[str, ...]]:
    """Contiguous chunks (seed order preserved across the concatenation, so
    the ordered merge yields pairs grouped in seed order)."""
    size = max(1, -(-len(seeds) // chunk_count))
    return [seeds[offset : offset + size] for offset in range(0, len(seeds), size)]


def _mp_context() -> Any:
    """Prefer a forkserver context: the executor is routinely called from a
    multithreaded QueryService, where plain fork can inherit a lock held
    mid-fork and hang the child; forkserver forks from a clean
    single-threaded server instead."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("forkserver") if "forkserver" in methods else None


def _arena_tables(plan: PhysicalPlan, op: FrontierSearchOp) -> dict[str, list[int]]:
    """The packed row tables one frontier execution ships to its workers.

    Only tags the DFA can actually follow (some transition leaves the dead
    state) are packed — the arena carries the live alphabet, not the whole
    run — plus the macro rows and the ``allowed``/emit masks as one-row
    tables.
    """
    view = plan.run.packed
    interner = view.interner
    graph = view.graph(op.direction)
    dead = op.dfa.dead_state()
    live_tags = {
        tag
        for row in op.dfa.transitions
        for tag, next_state in row.items()
        if next_state != dead
    }
    tables: dict[str, list[int]] = {}
    shipped = 0
    for tag in live_tags:
        adjacency = graph.by_tag.get(tag)
        if adjacency is not None:
            tables[f"tag:{tag}"] = adjacency.rows
            shipped += 1
    if shipped == len(graph.by_tag):
        # Every run tag is live, so the memoized any-tag matrix is a valid
        # merge target for full-alphabet move buckets (wildcard self-loops);
        # ship it so workers skip re-merging those rows.
        tables["any"] = graph.any_tag.rows
    for tag, relation in op.macros.items():
        if tag in live_tags:
            tables[f"macro:{tag}"] = relation.packed_adjacency(op.direction, interner).rows
    if op.allowed is not None:
        tables["allowed"] = [interner.mask_of(op.allowed)]
    if op.emit_filter is not None:
        tables["emit"] = [interner.mask_of(op.emit_filter)]
    return tables


def _identity_chunk(chunk: tuple[str, ...]) -> tuple[Any, ...]:
    return chunk


def _identity_pairs(pairs: list[Any]) -> list[tuple[str, str]]:
    return pairs


def _interned_codecs(
    interner: NodeInterner,
) -> tuple[Callable[[tuple[str, ...]], tuple[Any, ...]], Callable[[list[Any]], list[tuple[str, str]]]]:
    """Seed/pair codecs for the packed process protocol: node-id strings
    stay on the parent side of the pool boundary."""

    def encode(chunk: tuple[str, ...]) -> tuple[Any, ...]:
        bits = []
        for seed in chunk:
            bit = interner.bit_of(seed)
            if bit is not None:  # unknown seeds search nothing on any path
                bits.append(bit)
        return tuple(bits)

    ids = interner.ids

    def decode(pairs: list[Any]) -> list[tuple[str, str]]:
        return [(ids[source], ids[target]) for source, target in pairs]

    return encode, decode


def _local_chunk_task(
    plan: PhysicalPlan, op: FrontierSearchOp
) -> Callable[[ChunkPayload], ChunkResult]:
    """The in-process chunk task: what thread pools run, and what the drain
    loop falls back to when a process pool turns out to be broken.

    Thread workers share the parent's tracer: the task adopts the payload's
    parent context so the chunk span nests under the submitting search, and
    there is nothing to stitch on merge.
    """
    forward = op.direction == "forward"
    if plan.executor.kernel_for("frontier") == "packed":
        frontier, interner, emit_mask = _packed_search_parts(plan, op)

        def task(payload: ChunkPayload) -> ChunkResult:
            seeds, parent = payload
            tracer = get_tracer()
            with tracer.attach(SpanContext.from_tuple(parent)):
                with tracer.span("exec.frontier_chunk", seeds=len(seeds)) as span:
                    pairs = search_seeds_packed(
                        frontier, interner, seeds, emit_mask=emit_mask, forward=forward
                    )
                    span.set("pairs", len(pairs))
            return pairs, None

        return task
    adjacency = _graph_adjacency(plan, op)
    macro_successors = _lazy_macro_successors(op)

    def sets_task(payload: ChunkPayload) -> ChunkResult:
        seeds, parent = payload
        tracer = get_tracer()
        with tracer.attach(SpanContext.from_tuple(parent)):
            with tracer.span("exec.frontier_chunk", seeds=len(seeds)) as span:
                pairs = search_seeds(
                    adjacency,
                    op.dfa,
                    seeds,
                    allowed=op.allowed,
                    emit_filter=op.emit_filter,
                    macro_successors=macro_successors,
                    forward=forward,
                )
                span.set("pairs", len(pairs))
        return pairs, None

    return sets_task


#: What ``_worker_pool`` hands the parallel merge: the pool, the picklable
#: chunk task, the seed/pair codecs bridging node ids to the task's wire
#: representation (identity for everything but the packed process protocol),
#: and the in-process task the drain loop recomputes chunks with when the
#: pool breaks mid-flight.
_PoolParts = tuple[
    Executor,
    Callable[[Any], tuple[list[Any], "ChunkRecord | None"]],
    Callable[[tuple[str, ...]], tuple[Any, ...]],
    Callable[[list[Any]], list[tuple[str, str]]],
    Callable[["ChunkPayload"], "ChunkResult"],
]


@contextmanager
def _worker_pool(
    plan: PhysicalPlan, op: FrontierSearchOp, granted: int
) -> Iterator[_PoolParts]:
    """A ready-to-submit pool plus its chunk task, codecs and local fallback.

    With the packed kernel, process workers receive only a tiny
    :class:`PackedSearchContext` — the DFA plus the arena layout header —
    and attach the shared-memory segment holding the packed row tables by
    name (created here, closed and unlinked here after pool shutdown: the
    executor is the arena's lifecycle owner).  With the legacy sets kernel
    they get a plain-data :class:`SearchContext` pickled through the
    initializer.

    Nothing here waits for a worker to spawn: chunks are submitted straight
    away and overlap with pool startup, so the ``exec.worker_setup`` span
    measures exactly the parent-side fan-out cost — context build, arena
    packing, pool construction.  Process-side failures (no ``fork``, missing
    ``/dev/shm``, a worker that cannot re-import or unpickle the context)
    either raise during construction — degraded to a thread pool here — or
    surface as broken-pool errors on the chunk futures, which the drain loop
    absorbs by recomputing chunks with the returned local task.

    Macro relations are materialized here, in the parent, exactly once for
    process pools: a deliberate trade — workers cannot label-decode, so the
    process backend pays the decode up front even when no live product state
    would ever cross the macro edge (serial and thread execution stay lazy;
    prefer ``backend="thread"`` for macro-heavy queries whose edges are
    rarely reached).  Thread pools share the run, the memoized packed view
    and the lazily decoded macro relations directly — no copies, the first
    chunk that crosses a macro edge decodes it for everyone.
    """
    backend = plan.executor.resolved_backend()
    kernel = plan.executor.kernel_for("frontier")
    pool: Executor | None = None
    task: Callable[[Any], tuple[list[Any], "ChunkRecord | None"]] | None = None
    encode = _identity_chunk
    decode = _identity_pairs
    segment: shared_memory.SharedMemory | None = None
    with get_tracer().span(
        "exec.worker_setup", backend=backend, kernel=kernel, workers=granted
    ):
        local = _local_chunk_task(plan, op)
        if backend == "process" and kernel == "packed":
            try:
                interner = plan.run.packed.interner
                layout, segment = create_arena(_arena_tables(plan, op), len(interner))
                context = PackedSearchContext(
                    layout=layout, dfa=op.dfa, forward=op.direction == "forward"
                )
                pool = ProcessPoolExecutor(
                    max_workers=granted,
                    initializer=init_packed_worker,
                    initargs=(context,),
                    mp_context=_mp_context(),
                )
                task = timed_packed_chunk
                encode, decode = _interned_codecs(interner)
            except (OSError, RuntimeError, PicklingError):
                # Everything pool construction actually raises when process
                # pools are unusable: spawn failures (OSError), a missing
                # start method (RuntimeError), unpicklable init arguments.
                # The arena must not outlive the failed attempt.
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                encode, decode = _identity_chunk, _identity_pairs
                if segment is not None:
                    release_arena(segment)
                    segment = None
        elif backend == "process":
            try:
                sets_context = SearchContext(
                    direction=op.direction,
                    adjacency=dict(_graph_adjacency(plan, op)),
                    dfa=op.dfa,
                    allowed=op.allowed,
                    emit_filter=op.emit_filter,
                    macros={
                        tag: dict(relation.adjacency(op.direction))
                        for tag, relation in op.macros.items()
                    },
                )
                pool = ProcessPoolExecutor(
                    max_workers=granted,
                    initializer=init_worker,
                    initargs=(sets_context,),
                    mp_context=_mp_context(),
                )
                task = timed_search_chunk
            except (OSError, RuntimeError, PicklingError):
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                pool = None
        if pool is None:
            pool = ThreadPoolExecutor(max_workers=granted)
            task = local
    try:
        yield pool, task, encode, decode, local
    finally:
        pool.shutdown(wait=True)
        if segment is not None:
            # The executor owns the arena: workers attached and closed their
            # mappings during init, so after shutdown the segment has no
            # readers left and close + unlink here retires it.
            release_arena(segment)


def _stitch_chunk(tracer: Tracer, search: Span, record: ChunkRecord) -> None:
    """Adopt a worker process's chunk record as a child span of the search.

    Worker and parent both read ``CLOCK_MONOTONIC``, so the timestamps are
    directly comparable; the start is still clamped into the search span's
    window to keep profiles well formed against clock weirdness under exotic
    start methods."""
    parent, started, ended, seeds, pairs = record
    started = max(started, search.start)
    tracer.record(
        "exec.frontier_chunk",
        started,
        max(started, ended),
        parent=SpanContext.from_tuple(parent),
        attrs={"seeds": seeds, "pairs": pairs},
        thread="worker",
    )


def _iter_frontier_parallel(
    plan: PhysicalPlan,
    op: FrontierSearchOp,
    granted: int,
    release: Callable[[], None] | None,
    span: Span,
) -> Iterator[tuple[str, str]]:
    tracer = get_tracer()
    parent = span.context.as_tuple() if tracer.enabled else None
    chunks = _chunked(op.seeds, granted * 4)
    with _worker_pool(plan, op, granted) as (pool, task, encode, decode, local):
        futures = [pool.submit(task, (encode(chunk), parent)) for chunk in chunks]
        chunk_of = {future: chunk for future, chunk in zip(futures, chunks)}
        if release is not None:
            # Completion-driven, not consumption-driven: the budget frees as
            # soon as the pool finishes, however slowly the stream drains.
            remaining = len(futures)
            countdown = threading.Lock()

            def on_done(_finished: "Future[ChunkResult]") -> None:
                nonlocal remaining
                with countdown:
                    remaining -= 1
                    last = remaining == 0
                if last:
                    release()

            for future in futures:
                future.add_done_callback(on_done)
        try:
            pending = futures if plan.executor.ordered else as_completed(futures)
            for future in pending:
                try:
                    pairs, record = future.result()
                except (OSError, RuntimeError, PicklingError):
                    # A worker died spawning or unpickling (BrokenProcessPool
                    # is a RuntimeError): the pool is gone, but the chunk is
                    # not — recompute it in-process.  Local pairs are already
                    # node ids, so they bypass the pool decode below.
                    span.set("fallback", "local")
                    pairs, record = local((chunk_of[future], parent))
                    yield from pairs
                    continue
                if record is not None and tracer.enabled:
                    _stitch_chunk(tracer, span, record)
                yield from decode(pairs)
        finally:
            for future in futures:
                future.cancel()
