"""Physical-plan execution: serial, thread-pool and process-pool variants.

``execute`` materializes a plan's result set; ``execute_iter`` streams it.
The interesting operator is :class:`FrontierSearchOp`:

* **serial** — one pruned product search per seed on the calling thread,
  yielding each seed's pairs as they are found (the PR-3 behaviour, now
  direction-aware);
* **parallel** — the per-seed searches are embarrassingly parallel, so the
  seed list is split into contiguous chunks fanned across a worker pool.
  The ``thread`` backend shares the run and the lazily decoded macro
  relations directly (cheap, but GIL-bound); the ``process`` backend ships a
  plain-data :class:`~repro.core.exec.worker.SearchContext` to each worker
  for true parallelism, falling back to threads where process pools are
  unavailable.  ``ordered=True`` merges chunk results in seed order;
  otherwise chunks stream in completion order.

A service-supplied :class:`~repro.core.exec.config.WorkerBudget` caps the
granted fan-out: when the shared pool is saturated the search simply runs
serial instead of oversubscribing the host.
"""

from __future__ import annotations

from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    as_completed,
)
from pickle import PicklingError
import multiprocessing
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping

from repro.automata.regex import RegexNode
from repro.core.allpairs import all_pairs_iter, all_pairs_safe_query
from repro.core.exec.ops import (
    FrontierSearchOp,
    JoinOp,
    LabelDecodeOp,
    RestrictOp,
)
from repro.core.exec.plan import PhysicalPlan
from repro.core.exec.worker import SearchContext, init_worker, search_chunk, search_seeds
from repro.core.relations import (
    NodePairs,
    evaluate_regex_relation,
    restrict,
)

__all__ = ["execute", "execute_iter"]


def execute(plan: PhysicalPlan) -> NodePairs:
    """Run a physical plan to a materialized set of ``(source, target)``."""
    root = plan.root
    if isinstance(root, LabelDecodeOp):
        return all_pairs_safe_query(
            plan.run,
            list(root.l1),
            list(root.l2),
            plan.indexes(root.node),
            plan.options,
        )
    if isinstance(root, FrontierSearchOp):
        return set(_iter_frontier(plan, root))
    if isinstance(root, RestrictOp):
        inner = _execute_join(plan, root.child)
        return restrict(inner, root.l1, root.l2)
    if isinstance(root, JoinOp):
        return _execute_join(plan, root)
    raise TypeError(f"unknown physical operator {root!r}")


def execute_iter(plan: PhysicalPlan) -> Iterator[tuple[str, str]]:
    """Stream a physical plan's pairs (each exactly once, unordered unless
    the executor config says ``ordered``).  Frontier and label-decode plans
    stream genuinely; join plans materialize first (they have no streaming
    formulation) and then iterate.
    """
    root = plan.root
    if isinstance(root, LabelDecodeOp):
        return all_pairs_iter(
            plan.run,
            list(root.l1),
            list(root.l2),
            plan.indexes(root.node),
            plan.options,
        )
    if isinstance(root, FrontierSearchOp):
        return _iter_frontier(plan, root)
    return iter(execute(plan))


# ---------------------------------------------------------------------------
# Join execution
# ---------------------------------------------------------------------------


def _execute_join(plan: PhysicalPlan, op: JoinOp) -> NodePairs:
    """Bottom-up relational evaluation with routed safe subtrees answered by
    the labeling engine over the ``allowed`` universe."""
    run, options, indexes = plan.run, plan.options, plan.indexes
    universe: list[str] | None = None

    def subquery_evaluator(node: RegexNode) -> NodePairs | None:
        nonlocal universe
        if node not in op.routed:
            return None
        if universe is None:
            universe = (
                list(op.allowed) if op.allowed is not None else list(run.node_ids())
            )
        return all_pairs_safe_query(run, universe, universe, indexes(node), options)

    return evaluate_regex_relation(
        run, op.root, subquery_evaluator=subquery_evaluator, allowed=op.allowed
    )


# ---------------------------------------------------------------------------
# Frontier execution
# ---------------------------------------------------------------------------


def _iter_frontier(plan: PhysicalPlan, op: FrontierSearchOp) -> Iterator[tuple[str, str]]:
    config = plan.executor
    requested = min(config.workers, len(op.seeds)) if op.seeds else 1
    if requested <= 1:
        yield from _iter_frontier_serial(plan, op)
        return
    if config.budget is None:
        yield from _iter_frontier_parallel(plan, op, requested, release=None)
        return
    granted = config.budget.acquire(requested)
    if granted <= 1:
        config.budget.release(granted)
        yield from _iter_frontier_serial(plan, op)
        return
    released = False
    release_lock = threading.Lock()

    def release() -> None:
        # The searches are done the moment the last chunk future completes;
        # a slow consumer draining the stream afterwards must not keep
        # budget slots hostage, so release exactly once, as early as that
        # (called from future done-callbacks and, as the safety net, from
        # the finally below — hence the lock).
        nonlocal released
        with release_lock:
            if released:
                return
            released = True
        config.budget.release(granted)

    try:
        yield from _iter_frontier_parallel(plan, op, granted, release=release)
    finally:
        release()


def _graph_adjacency(
    plan: PhysicalPlan, op: FrontierSearchOp
) -> Mapping[str, tuple[tuple[str, str], ...]]:
    return plan.run.successors if op.direction == "forward" else plan.run.predecessors


def _lazy_macro_successors(
    op: FrontierSearchOp,
) -> dict[str, Callable[[str], tuple[str, ...]]] | None:
    return {
        tag: relation.expander(op.direction) for tag, relation in op.macros.items()
    } or None


def _iter_frontier_serial(
    plan: PhysicalPlan, op: FrontierSearchOp
) -> Iterator[tuple[str, str]]:
    adjacency = _graph_adjacency(plan, op)
    macro_successors = _lazy_macro_successors(op)
    for seed in op.seeds:
        yield from search_seeds(
            adjacency,
            op.dfa,
            (seed,),
            allowed=op.allowed,
            emit_filter=op.emit_filter,
            macro_successors=macro_successors,
            forward=op.direction == "forward",
        )


def _chunked(seeds: tuple[str, ...], chunk_count: int) -> list[tuple[str, ...]]:
    """Contiguous chunks (seed order preserved across the concatenation, so
    the ordered merge yields pairs grouped in seed order)."""
    size = max(1, -(-len(seeds) // chunk_count))
    return [seeds[offset : offset + size] for offset in range(0, len(seeds), size)]


@contextmanager
def _worker_pool(
    plan: PhysicalPlan, op: FrontierSearchOp, granted: int
) -> Iterator[tuple[Executor, Callable[[tuple[str, ...]], list[tuple[str, str]]]]]:
    """A ready-to-submit pool plus its chunk function.

    Process pools get a plain-data :class:`SearchContext` shipped once per
    worker and are probed with an empty chunk before any real work, so *any*
    process-side failure — no ``fork``, missing ``/dev/shm``, a worker that
    cannot re-import or unpickle the context — degrades to the thread
    backend rather than failing the query.  Macro relations are materialized
    here, in the parent, exactly once: a deliberate trade — workers cannot
    label-decode, so the process backend pays the decode up front even when
    no live product state would ever cross the macro edge (serial and thread
    execution stay lazy; prefer ``backend="thread"`` for macro-heavy queries
    whose edges are rarely reached).  Thread pools share the run and the
    lazily decoded macro relations directly — no copies, the first chunk
    that crosses a macro edge decodes it for everyone.
    """
    backend = plan.executor.resolved_backend()
    pool: Executor | None = None
    task = None
    if backend == "process":
        try:
            context = SearchContext(
                direction=op.direction,
                adjacency=dict(_graph_adjacency(plan, op)),
                dfa=op.dfa,
                allowed=op.allowed,
                emit_filter=op.emit_filter,
                macros={
                    tag: dict(relation.adjacency(op.direction))
                    for tag, relation in op.macros.items()
                },
            )
            # Prefer a forkserver context: the executor is routinely called
            # from a multithreaded QueryService, where plain fork can
            # inherit a lock held mid-fork and hang the child; forkserver
            # forks from a clean single-threaded server instead.
            methods = multiprocessing.get_all_start_methods()
            mp_context = (
                multiprocessing.get_context("forkserver")
                if "forkserver" in methods
                else None
            )
            pool = ProcessPoolExecutor(
                max_workers=granted,
                initializer=init_worker,
                initargs=(context,),
                mp_context=mp_context,
            )
            # Workers spawn lazily: exercise one before committing to the
            # backend, while falling back is still free.
            pool.submit(search_chunk, ()).result(timeout=15)
            task = search_chunk
        except (OSError, RuntimeError, FuturesTimeoutError, PicklingError):
            # Everything pool creation and the probe actually raise when
            # process pools are unusable: spawn failures (OSError), a broken
            # pool / missing start method (RuntimeError and subclasses like
            # BrokenProcessPool), a wedged worker (timeout), or unpicklable
            # init arguments.  Anything else is a bug and must propagate.
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            pool = None
    if pool is None:
        adjacency = _graph_adjacency(plan, op)
        macro_successors = _lazy_macro_successors(op)

        def task(seeds: tuple[str, ...]) -> list[tuple[str, str]]:
            return search_seeds(
                adjacency,
                op.dfa,
                seeds,
                allowed=op.allowed,
                emit_filter=op.emit_filter,
                macro_successors=macro_successors,
                forward=op.direction == "forward",
            )

        pool = ThreadPoolExecutor(max_workers=granted)
    try:
        yield pool, task
    finally:
        pool.shutdown(wait=True)


def _iter_frontier_parallel(
    plan: PhysicalPlan,
    op: FrontierSearchOp,
    granted: int,
    release: Callable[[], None] | None,
) -> Iterator[tuple[str, str]]:
    chunks = _chunked(op.seeds, granted * 4)
    with _worker_pool(plan, op, granted) as (pool, task):
        futures = [pool.submit(task, chunk) for chunk in chunks]
        if release is not None:
            # Completion-driven, not consumption-driven: the budget frees as
            # soon as the pool finishes, however slowly the stream drains.
            remaining = len(futures)
            countdown = threading.Lock()

            def on_done(_finished: "Future[list[tuple[str, str]]]") -> None:
                nonlocal remaining
                with countdown:
                    remaining -= 1
                    last = remaining == 0
                if last:
                    release()

            for future in futures:
                future.add_done_callback(on_done)
        try:
            pending = futures if plan.executor.ordered else as_completed(futures)
            for future in pending:
                yield from future.result()
        finally:
            for future in futures:
                future.cancel()
