"""Physical-plan execution: serial, thread-pool and process-pool variants.

``execute`` materializes a plan's result set; ``execute_iter`` streams it.
The interesting operator is :class:`FrontierSearchOp`:

* **serial** — one pruned product search per seed on the calling thread,
  yielding each seed's pairs as they are found (the PR-3 behaviour, now
  direction-aware);
* **parallel** — the per-seed searches are embarrassingly parallel, so the
  seed list is split into contiguous chunks fanned across a worker pool.
  The ``thread`` backend shares the run and the lazily decoded macro
  relations directly (cheap, but GIL-bound); the ``process`` backend ships a
  plain-data :class:`~repro.core.exec.worker.SearchContext` to each worker
  for true parallelism, falling back to threads where process pools are
  unavailable.  ``ordered=True`` merges chunk results in seed order;
  otherwise chunks stream in completion order.

A service-supplied :class:`~repro.core.exec.config.WorkerBudget` caps the
granted fan-out: when the shared pool is saturated the search simply runs
serial instead of oversubscribing the host.
"""

from __future__ import annotations

from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    as_completed,
)
from pickle import PicklingError
import multiprocessing
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping

from repro.automata.regex import RegexNode
from repro.core.allpairs import all_pairs_iter, all_pairs_safe_query
from repro.core.exec.ops import (
    FrontierSearchOp,
    JoinOp,
    LabelDecodeOp,
    RestrictOp,
)
from repro.core.exec.plan import PhysicalPlan
from repro.core.exec.worker import (
    ChunkPayload,
    ChunkRecord,
    ChunkResult,
    SearchContext,
    init_worker,
    search_seeds,
    timed_search_chunk,
)
from repro.core.relations import (
    NodePairs,
    evaluate_regex_relation,
    restrict,
)
from repro.obs import Span, SpanContext, Tracer, get_tracer

__all__ = ["execute", "execute_iter"]


def execute(plan: PhysicalPlan) -> NodePairs:
    """Run a physical plan to a materialized set of ``(source, target)``."""
    root = plan.root
    if isinstance(root, LabelDecodeOp):
        with get_tracer().span(
            "exec.label_decode", sources=len(root.l1), targets=len(root.l2)
        ) as span:
            result = all_pairs_safe_query(
                plan.run,
                list(root.l1),
                list(root.l2),
                plan.indexes(root.node),
                plan.options,
            )
            span.set("pairs", len(result))
            return result
    if isinstance(root, FrontierSearchOp):
        return set(_iter_frontier(plan, root))
    if isinstance(root, RestrictOp):
        with get_tracer().span("exec.restrict") as span:
            inner = _execute_join(plan, root.child)
            result = restrict(inner, root.l1, root.l2)
            span.set("pairs", len(result))
            return result
    if isinstance(root, JoinOp):
        return _execute_join(plan, root)
    raise TypeError(f"unknown physical operator {root!r}")


def execute_iter(plan: PhysicalPlan) -> Iterator[tuple[str, str]]:
    """Stream a physical plan's pairs (each exactly once, unordered unless
    the executor config says ``ordered``).  Frontier and label-decode plans
    stream genuinely; join plans materialize first (they have no streaming
    formulation) and then iterate.
    """
    root = plan.root
    if isinstance(root, LabelDecodeOp):
        return get_tracer().wrap_iter(
            "exec.label_decode",
            all_pairs_iter(
                plan.run,
                list(root.l1),
                list(root.l2),
                plan.indexes(root.node),
                plan.options,
            ),
            sources=len(root.l1),
            targets=len(root.l2),
        )
    if isinstance(root, FrontierSearchOp):
        return _iter_frontier(plan, root)
    return iter(execute(plan))


# ---------------------------------------------------------------------------
# Join execution
# ---------------------------------------------------------------------------


def _execute_join(plan: PhysicalPlan, op: JoinOp) -> NodePairs:
    """Bottom-up relational evaluation with routed safe subtrees answered by
    the labeling engine over the ``allowed`` universe."""
    run, options, indexes = plan.run, plan.options, plan.indexes
    universe: list[str] | None = None

    def subquery_evaluator(node: RegexNode) -> NodePairs | None:
        nonlocal universe
        if node not in op.routed:
            return None
        if universe is None:
            universe = (
                list(op.allowed) if op.allowed is not None else list(run.node_ids())
            )
        return all_pairs_safe_query(run, universe, universe, indexes(node), options)

    with get_tracer().span("exec.join", routed=len(op.routed)) as span:
        result = evaluate_regex_relation(
            run, op.root, subquery_evaluator=subquery_evaluator, allowed=op.allowed
        )
        span.set("pairs", len(result))
        return result


# ---------------------------------------------------------------------------
# Frontier execution
# ---------------------------------------------------------------------------


def _iter_frontier(plan: PhysicalPlan, op: FrontierSearchOp) -> Iterator[tuple[str, str]]:
    tracer = get_tracer()
    config = plan.executor
    requested = min(config.workers, len(op.seeds)) if op.seeds else 1
    if requested <= 1:
        with tracer.span(
            "exec.frontier_search",
            mode="serial",
            direction=op.direction,
            seeds=len(op.seeds),
        ):
            yield from _iter_frontier_serial(plan, op)
        return
    if config.budget is None:
        with tracer.span(
            "exec.frontier_search",
            mode="parallel",
            direction=op.direction,
            seeds=len(op.seeds),
            workers=requested,
        ) as span:
            yield from _iter_frontier_parallel(plan, op, requested, None, span)
        return
    granted = config.budget.acquire(requested)
    if granted <= 1:
        config.budget.release(granted)
        # The budget is saturated, so the search degrades to serial on the
        # calling thread; the mode attribute keeps the degrade visible in
        # traces, still correctly nested under the caller's span.
        with tracer.span(
            "exec.frontier_search",
            mode="serial-degraded",
            direction=op.direction,
            seeds=len(op.seeds),
        ):
            yield from _iter_frontier_serial(plan, op)
        return
    released = False
    release_lock = threading.Lock()

    def release() -> None:
        # The searches are done the moment the last chunk future completes;
        # a slow consumer draining the stream afterwards must not keep
        # budget slots hostage, so release exactly once, as early as that
        # (called from future done-callbacks and, as the safety net, from
        # the finally below — hence the lock).
        nonlocal released
        with release_lock:
            if released:
                return
            released = True
        config.budget.release(granted)

    try:
        with tracer.span(
            "exec.frontier_search",
            mode="parallel",
            direction=op.direction,
            seeds=len(op.seeds),
            workers=granted,
        ) as span:
            yield from _iter_frontier_parallel(plan, op, granted, release, span)
    finally:
        release()


def _graph_adjacency(
    plan: PhysicalPlan, op: FrontierSearchOp
) -> Mapping[str, tuple[tuple[str, str], ...]]:
    return plan.run.successors if op.direction == "forward" else plan.run.predecessors


def _lazy_macro_successors(
    op: FrontierSearchOp,
) -> dict[str, Callable[[str], tuple[str, ...]]] | None:
    return {
        tag: relation.expander(op.direction) for tag, relation in op.macros.items()
    } or None


def _iter_frontier_serial(
    plan: PhysicalPlan, op: FrontierSearchOp
) -> Iterator[tuple[str, str]]:
    adjacency = _graph_adjacency(plan, op)
    macro_successors = _lazy_macro_successors(op)
    for seed in op.seeds:
        yield from search_seeds(
            adjacency,
            op.dfa,
            (seed,),
            allowed=op.allowed,
            emit_filter=op.emit_filter,
            macro_successors=macro_successors,
            forward=op.direction == "forward",
        )


def _chunked(seeds: tuple[str, ...], chunk_count: int) -> list[tuple[str, ...]]:
    """Contiguous chunks (seed order preserved across the concatenation, so
    the ordered merge yields pairs grouped in seed order)."""
    size = max(1, -(-len(seeds) // chunk_count))
    return [seeds[offset : offset + size] for offset in range(0, len(seeds), size)]


@contextmanager
def _worker_pool(
    plan: PhysicalPlan, op: FrontierSearchOp, granted: int
) -> Iterator[tuple[Executor, Callable[[ChunkPayload], ChunkResult]]]:
    """A ready-to-submit pool plus its chunk function.

    Process pools get a plain-data :class:`SearchContext` shipped once per
    worker and are probed with an empty chunk before any real work, so *any*
    process-side failure — no ``fork``, missing ``/dev/shm``, a worker that
    cannot re-import or unpickle the context — degrades to the thread
    backend rather than failing the query.  Macro relations are materialized
    here, in the parent, exactly once: a deliberate trade — workers cannot
    label-decode, so the process backend pays the decode up front even when
    no live product state would ever cross the macro edge (serial and thread
    execution stay lazy; prefer ``backend="thread"`` for macro-heavy queries
    whose edges are rarely reached).  Thread pools share the run and the
    lazily decoded macro relations directly — no copies, the first chunk
    that crosses a macro edge decodes it for everyone.
    """
    backend = plan.executor.resolved_backend()
    pool: Executor | None = None
    task = None
    if backend == "process":
        try:
            context = SearchContext(
                direction=op.direction,
                adjacency=dict(_graph_adjacency(plan, op)),
                dfa=op.dfa,
                allowed=op.allowed,
                emit_filter=op.emit_filter,
                macros={
                    tag: dict(relation.adjacency(op.direction))
                    for tag, relation in op.macros.items()
                },
            )
            # Prefer a forkserver context: the executor is routinely called
            # from a multithreaded QueryService, where plain fork can
            # inherit a lock held mid-fork and hang the child; forkserver
            # forks from a clean single-threaded server instead.
            methods = multiprocessing.get_all_start_methods()
            mp_context = (
                multiprocessing.get_context("forkserver")
                if "forkserver" in methods
                else None
            )
            pool = ProcessPoolExecutor(
                max_workers=granted,
                initializer=init_worker,
                initargs=(context,),
                mp_context=mp_context,
            )
            # Workers spawn lazily: exercise one before committing to the
            # backend, while falling back is still free.
            pool.submit(timed_search_chunk, ((), None)).result(timeout=15)
            task = timed_search_chunk
        except (OSError, RuntimeError, FuturesTimeoutError, PicklingError):
            # Everything pool creation and the probe actually raise when
            # process pools are unusable: spawn failures (OSError), a broken
            # pool / missing start method (RuntimeError and subclasses like
            # BrokenProcessPool), a wedged worker (timeout), or unpicklable
            # init arguments.  Anything else is a bug and must propagate.
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            pool = None
    if pool is None:
        adjacency = _graph_adjacency(plan, op)
        macro_successors = _lazy_macro_successors(op)

        def task(payload: ChunkPayload) -> ChunkResult:
            # Thread workers share the parent's tracer: adopt the payload's
            # parent context so the chunk span nests under the submitting
            # search, and stitch nothing on merge (record slot is None).
            seeds, parent = payload
            tracer = get_tracer()
            with tracer.attach(SpanContext.from_tuple(parent)):
                with tracer.span("exec.frontier_chunk", seeds=len(seeds)) as span:
                    pairs = search_seeds(
                        adjacency,
                        op.dfa,
                        seeds,
                        allowed=op.allowed,
                        emit_filter=op.emit_filter,
                        macro_successors=macro_successors,
                        forward=op.direction == "forward",
                    )
                    span.set("pairs", len(pairs))
            return pairs, None

        pool = ThreadPoolExecutor(max_workers=granted)
    try:
        yield pool, task
    finally:
        pool.shutdown(wait=True)


def _stitch_chunk(tracer: Tracer, search: Span, record: ChunkRecord) -> None:
    """Adopt a worker process's chunk record as a child span of the search.

    Worker and parent both read ``CLOCK_MONOTONIC``, so the timestamps are
    directly comparable; the start is still clamped into the search span's
    window to keep profiles well formed against clock weirdness under exotic
    start methods."""
    parent, started, ended, seeds, pairs = record
    started = max(started, search.start)
    tracer.record(
        "exec.frontier_chunk",
        started,
        max(started, ended),
        parent=SpanContext.from_tuple(parent),
        attrs={"seeds": seeds, "pairs": pairs},
        thread="worker",
    )


def _iter_frontier_parallel(
    plan: PhysicalPlan,
    op: FrontierSearchOp,
    granted: int,
    release: Callable[[], None] | None,
    span: Span,
) -> Iterator[tuple[str, str]]:
    tracer = get_tracer()
    parent = span.context.as_tuple() if tracer.enabled else None
    chunks = _chunked(op.seeds, granted * 4)
    with _worker_pool(plan, op, granted) as (pool, task):
        futures = [pool.submit(task, (chunk, parent)) for chunk in chunks]
        if release is not None:
            # Completion-driven, not consumption-driven: the budget frees as
            # soon as the pool finishes, however slowly the stream drains.
            remaining = len(futures)
            countdown = threading.Lock()

            def on_done(_finished: "Future[ChunkResult]") -> None:
                nonlocal remaining
                with countdown:
                    remaining -= 1
                    last = remaining == 0
                if last:
                    release()

            for future in futures:
                future.add_done_callback(on_done)
        try:
            pending = futures if plan.executor.ordered else as_completed(futures)
            for future in pending:
                pairs, record = future.result()
                if record is not None and tracer.enabled:
                    _stitch_chunk(tracer, span, record)
                yield from pairs
        finally:
            for future in futures:
                future.cancel()
