"""The zero-copy shared-memory arena of the process-pool executor.

The legacy process backend pickles the whole search context — adjacency,
macro rows, pruning sets — into every worker through the pool initializer.
This module replaces that with one ``multiprocessing.shared_memory`` segment
per parallel frontier execution: the parent packs every row table the search
needs (per-tag adjacency, macro rows, the ``allowed`` and emit masks) into a
single **content-addressed** segment, and workers attach by name from a tiny
picklable :class:`ArenaLayout` header and parse rows straight out of the
mapped buffer (one pass per worker, no per-task deserialization).

Tables are stored **sparsely**: only nonzero rows are written, each as a
little-endian ``uint32`` row index followed by the row in the fixed-width
uint64 word layout of :mod:`repro.core.bitset`.  Per-tag adjacency over a
many-tag grammar is overwhelmingly zero rows (every edge contributes one
nonzero row to exactly one tag table), so this keeps the segment
proportional to the run's *edges* rather than ``tags × nodes``.

Lifecycle discipline (enforced repo-wide by lint rule REP110):

* the **executor** owns the segment — :func:`create_arena` hands it back and
  destroys it on any packing failure; the caller must pair it with exactly
  one :func:`release_arena` (close + unlink) once the pool is shut down;
* **workers** only ever attach — :func:`attach_tables` closes its mapping on
  every path and never unlinks.

Creations, attaches, releases and packed byte counts are tracked through the
process-wide observability metrics registry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from hashlib import sha256
from itertools import count
from multiprocessing import shared_memory
from typing import Mapping, Sequence

from repro.core.bitset import row_byte_width
from repro.obs.metrics import get_registry

__all__ = [
    "ArenaLayout",
    "attach_tables",
    "create_arena",
    "release_arena",
]

_METRICS = get_registry()
_CREATED = _METRICS.counter(
    "exec_arena_segments_created_total",
    "Shared-memory arena segments created by the parallel executor.",
)
_RELEASED = _METRICS.counter(
    "exec_arena_segments_released_total",
    "Arena segments closed and unlinked after pool shutdown.",
)
_ATTACHED = _METRICS.counter(
    "exec_arena_attaches_total",
    "Worker-side attaches to an arena segment.",
)
_PACKED_BYTES = _METRICS.counter(
    "exec_arena_packed_bytes_total",
    "Bytes of packed row tables written into arena segments.",
)
_ACTIVE = _METRICS.gauge(
    "exec_arena_active_segments",
    "Arena segments currently alive (created minus released).",
)

#: Distinguishes segments of concurrent executors within one process; the
#: digest already distinguishes content, so this only breaks ties between
#: simultaneous identical queries.
_SEQUENCE = count()


@dataclass(frozen=True)
class ArenaLayout:
    """The picklable header a chunk-pool initializer carries to workers.

    ``segments`` maps each table key (``"tag:<tag>"``, ``"macro:<tag>"``,
    ``"allowed"``, ``"emit"``) to ``(byte offset, stored entries, logical
    rows)``.  A stored entry is a little-endian ``uint32`` row index plus a
    ``row_bytes``-wide packed row (whole little-endian uint64 words for
    ``node_count`` bits); rows not stored are zero, so a table re-expands to
    exactly ``logical rows`` Python-int rows on attach.
    """

    name: str
    node_count: int
    row_bytes: int
    segments: tuple[tuple[str, int, int, int], ...]
    total_bytes: int

    def offsets(self) -> dict[str, tuple[int, int, int]]:
        return {key: (offset, entries, rows) for key, offset, entries, rows in self.segments}


def _arena_name(digest: str) -> str:
    """Content-addressed segment name, tie-broken per process and sequence
    so concurrent identical queries never collide on create."""
    return f"repro-{digest[:12]}-{os.getpid():x}-{next(_SEQUENCE):x}"


def create_arena(
    tables: Mapping[str, Sequence[int]], node_count: int
) -> tuple[ArenaLayout, shared_memory.SharedMemory]:
    """Pack row tables into a fresh shared-memory segment.

    Returns the layout header plus the live segment, whose ownership passes
    to the caller: pair with exactly one :func:`release_arena`.  If packing
    fails after creation, the segment is closed and unlinked here before the
    error propagates — no partially-written arena ever leaks.
    """
    row_bytes = row_byte_width(node_count)
    blobs: list[tuple[str, bytes, int]] = []
    offset = 0
    hasher = sha256(f"{node_count}:{row_bytes}".encode())
    segments: list[tuple[str, int, int, int]] = []
    for key in sorted(tables):
        rows = tables[key]
        blob = b"".join(
            index.to_bytes(4, "little") + row.to_bytes(row_bytes, "little")
            for index, row in enumerate(rows)
            if row
        )
        entries = len(blob) // (4 + row_bytes)
        hasher.update(key.encode())
        hasher.update(blob)
        blobs.append((key, blob, offset))
        segments.append((key, offset, entries, len(rows)))
        offset += len(blob)
    total = max(offset, 1)  # SharedMemory rejects zero-byte segments
    layout = ArenaLayout(
        name=_arena_name(hasher.hexdigest()),
        node_count=node_count,
        row_bytes=row_bytes,
        segments=tuple(segments),
        total_bytes=total,
    )
    segment = shared_memory.SharedMemory(name=layout.name, create=True, size=total)
    try:
        for _, blob, start in blobs:
            segment.buf[start : start + len(blob)] = blob
    except BaseException:
        segment.close()
        # Not filesystem IO: tears down the /dev/shm segment this very
        # function just created (REP109 sanctioned-wrapper carve-out).
        segment.unlink()  # effect-exempt: file-io
        raise
    _CREATED.inc()
    _ACTIVE.inc()
    _PACKED_BYTES.inc(float(total))
    return layout, segment


def release_arena(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment created by :func:`create_arena`.

    Idempotent against a racing unlink (a worker's resource tracker cleaning
    up after an abnormal exit): a missing backing file is already the state
    this function establishes.
    """
    segment.close()
    try:
        # Executor-time segment teardown, not filesystem IO (REP109).
        segment.unlink()  # effect-exempt: file-io
    except FileNotFoundError:
        pass
    _RELEASED.inc()
    _ACTIVE.dec()


def attach_tables(layout: ArenaLayout) -> dict[str, list[int]]:
    """Worker side: map the segment read-only, parse every table into packed
    Python-int rows, and close the mapping before returning.

    Parsing happens straight off the mapped buffer (``memoryview`` slices,
    no intermediate copy); the returned rows are plain ints, so the mapping
    is not needed afterwards — attach once per worker, never unlink.
    """
    width = layout.row_bytes
    stride = 4 + width
    segment = shared_memory.SharedMemory(name=layout.name)
    try:
        view = memoryview(segment.buf)
        try:
            tables: dict[str, list[int]] = {}
            for key, offset, entries, rows in layout.segments:
                table = [0] * rows
                for entry in range(entries):
                    start = offset + entry * stride
                    index = int.from_bytes(view[start : start + 4], "little")
                    table[index] = int.from_bytes(
                        view[start + 4 : start + stride], "little"
                    )
                tables[key] = table
        finally:
            # Exported sub-views would make close() raise BufferError, so
            # release ours before the mapping goes away.
            view.release()
    finally:
        segment.close()
    _ATTACHED.inc()
    return tables
