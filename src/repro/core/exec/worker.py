"""Process-pool worker side of the parallel frontier executor.

Two worker protocols share this module:

* the legacy **sets** protocol ships one :class:`SearchContext` — plain,
  picklable data: the run's adjacency view for the chosen direction, the
  direction-adjusted DFA, the pruning universe, the emit filter and the
  *materialized* macro adjacencies — through the pool initializer;
* the **packed** protocol ships only a :class:`PackedSearchContext` — the
  DFA plus a tiny :class:`~repro.core.exec.arena.ArenaLayout` header — and
  each worker attaches the shared-memory arena by name, parses the packed
  row tables straight out of the mapped segment exactly once, and answers
  chunks of interned seed bits with interned pairs (node-id strings never
  cross the pool boundary).

Keeping the context in a module global means it is shipped once per worker,
not once per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.automata.dfa import DFA
from repro.core.bitset import NodeInterner, PackedAdjacency, PackedFrontier, bit_indices
from repro.core.exec.arena import ArenaLayout, attach_tables
from repro.core.relations import frontier_search
from repro.obs import clock

__all__ = [
    "ChunkPayload",
    "ChunkRecord",
    "ChunkResult",
    "PackedChunkPayload",
    "PackedChunkResult",
    "PackedSearchContext",
    "SearchContext",
    "init_packed_worker",
    "init_worker",
    "packed_search_chunk",
    "run_chunk",
    "search_chunk",
    "search_seeds",
    "search_seeds_packed",
    "timed_packed_chunk",
    "timed_search_chunk",
]

#: The picklable trace context a chunk payload carries across the pool
#: boundary: the ``(trace_id, span_id)`` of the submitting search span, or
#: ``None`` when no recording tracer is installed.
ContextTuple = tuple[int, int]

#: What the traced pool entry point takes: the seed chunk plus the parent
#: span context (plain data, so process pools can pickle it).
ChunkPayload = tuple[tuple[str, ...], "ContextTuple | None"]

#: What a worker ships home alongside its pairs: the echoed parent context
#: and the chunk's clock window plus seed/pair counts.  The submitting side
#: stitches this into its trace with :meth:`repro.obs.Tracer.record`.
ChunkRecord = tuple["ContextTuple | None", float, float, int, int]

#: The traced entry point's return shape.  ``None`` in the record slot means
#: the span was already recorded live (the thread backend traces in-process
#: and has nothing to stitch).
ChunkResult = tuple[list[tuple[str, str]], "ChunkRecord | None"]


@dataclass(frozen=True)
class SearchContext:
    """Everything one frontier search needs, as plain data."""

    direction: str
    adjacency: Mapping[str, tuple[tuple[str, str], ...]]
    dfa: DFA
    allowed: frozenset[str] | None
    emit_filter: frozenset[str] | None
    macros: Mapping[str, Mapping[str, tuple[str, ...]]]


_CONTEXT: SearchContext | None = None


def init_worker(context: SearchContext) -> None:
    global _CONTEXT
    _CONTEXT = context


def search_seeds(
    adjacency: Mapping[str, Sequence[tuple[str, str]]],
    dfa: DFA,
    seeds: Iterable[str],
    *,
    allowed: frozenset[str] | None,
    emit_filter: frozenset[str] | None,
    macro_successors: Mapping[str, Callable[[str], Iterable[str]]] | None,
    forward: bool,
) -> list[tuple[str, str]]:
    """The one per-seed search loop every executor path shares.

    Serial, thread-pool and process-pool execution all reduce to this:
    search from each seed, intersect with the emit filter, orient the pairs
    (forward hits are targets, backward hits are sources).  Keeping it in
    one place means the emit/orientation semantics cannot drift between
    backends."""
    pairs: list[tuple[str, str]] = []
    for seed in seeds:
        hits = frontier_search(
            adjacency, dfa, seed, allowed=allowed, macro_successors=macro_successors
        )
        if emit_filter is not None:
            hits &= emit_filter
        if forward:
            pairs.extend((seed, hit) for hit in hits)
        else:
            pairs.extend((hit, seed) for hit in hits)
    return pairs


def run_chunk(context: SearchContext, seeds: tuple[str, ...]) -> list[tuple[str, str]]:
    """Search one chunk against a plain-data context (worker side)."""
    macro_successors = {
        tag: (lambda node, mapping=mapping: mapping.get(node, ()))
        for tag, mapping in context.macros.items()
    } or None
    return search_seeds(
        context.adjacency,
        context.dfa,
        seeds,
        allowed=context.allowed,
        emit_filter=context.emit_filter,
        macro_successors=macro_successors,
        forward=context.direction == "forward",
    )


def search_chunk(seeds: tuple[str, ...]) -> list[tuple[str, str]]:
    """Pool entry point: search one seed chunk against the worker context."""
    assert _CONTEXT is not None, "worker used before init_worker ran"
    return run_chunk(_CONTEXT, seeds)


def timed_search_chunk(payload: ChunkPayload) -> ChunkResult:
    """Traced pool entry point: search one chunk and report *when*.

    A worker process has no tracer (the ambient tracer is per-process), so
    it times itself with the sanctioned clock — ``perf_counter`` reads
    ``CLOCK_MONOTONIC`` on Linux, which is system-wide, so the window is
    directly comparable with the parent's span clock — and echoes the
    payload's parent context back so the submitting side can stitch the
    chunk in as a child span.
    """
    seeds, parent = payload
    started = clock.now()
    pairs = search_chunk(seeds)
    return pairs, (parent, started, clock.now(), len(seeds), len(pairs))


# ---------------------------------------------------------------------------
# Packed-kernel protocol
# ---------------------------------------------------------------------------

#: A packed chunk carries interned seed bit indices instead of node ids.
PackedChunkPayload = tuple[tuple[int, ...], "ContextTuple | None"]

#: Packed workers return interned pairs; the submitting side maps them back
#: through the run's interner.
PackedChunkResult = tuple[list[tuple[int, int]], "ChunkRecord | None"]


@dataclass(frozen=True)
class PackedSearchContext:
    """The packed pool initializer payload: everything *small*.

    The row tables themselves stay out of the pickle stream — ``layout``
    names the shared-memory arena segment that holds them (see
    :mod:`repro.core.exec.arena`); each worker attaches and parses it once.
    """

    layout: ArenaLayout
    dfa: DFA
    forward: bool


class _PackedWorkerState:
    """The compiled search a packed worker answers chunks with."""

    __slots__ = ("frontier", "emit_mask", "forward")

    def __init__(self, frontier: PackedFrontier, emit_mask: int | None, forward: bool) -> None:
        self.frontier = frontier
        self.emit_mask = emit_mask
        self.forward = forward


_PACKED: _PackedWorkerState | None = None


def init_packed_worker(context: PackedSearchContext) -> None:
    """Attach the arena, compile the frontier search, drop the mapping."""
    global _PACKED
    tables = attach_tables(context.layout)
    node_count = context.layout.node_count
    by_tag: dict[str, PackedAdjacency] = {}
    macros: dict[str, PackedAdjacency] = {}
    any_tag: PackedAdjacency | None = None
    allowed = (1 << node_count) - 1
    emit_mask: int | None = None
    for key, rows in tables.items():
        if key.startswith("tag:"):
            by_tag[key[4:]] = PackedAdjacency(node_count, rows)
        elif key.startswith("macro:"):
            macros[key[6:]] = PackedAdjacency(node_count, rows)
        elif key == "any":
            any_tag = PackedAdjacency(node_count, rows)
        elif key == "allowed":
            allowed = rows[0]
        elif key == "emit":
            emit_mask = rows[0]
    frontier = PackedFrontier(
        by_tag, context.dfa, allowed=allowed, macros=macros or None, any_tag=any_tag
    )
    _PACKED = _PackedWorkerState(frontier, emit_mask, context.forward)


def search_seeds_packed(
    frontier: PackedFrontier,
    interner: NodeInterner,
    seeds: Iterable[str],
    *,
    emit_mask: int | None,
    forward: bool,
) -> list[tuple[str, str]]:
    """The packed twin of :func:`search_seeds` for in-process execution.

    Same emit/orientation semantics, interned representation: seeds map to
    bit indices (ids not in the run search nothing, like the set path), hit
    masks intersect the emit mask word-parallel, and pairs unpack through
    the interner only at the yield boundary.
    """
    pairs: list[tuple[str, str]] = []
    for seed in seeds:
        bit = interner.bit_of(seed)
        if bit is None:
            continue
        hits = frontier.search(bit)
        if emit_mask is not None:
            hits &= emit_mask
        if not hits:
            continue
        if forward:
            pairs.extend((seed, hit) for hit in interner.nodes_of(hits))
        else:
            pairs.extend((hit, seed) for hit in interner.nodes_of(hits))
    return pairs


def packed_search_chunk(seed_bits: tuple[int, ...]) -> list[tuple[int, int]]:
    """Packed pool entry point: interned seeds in, interned pairs out."""
    assert _PACKED is not None, "worker used before init_packed_worker ran"
    state = _PACKED
    pairs: list[tuple[int, int]] = []
    for bit in seed_bits:
        hits = state.frontier.search(bit)
        if state.emit_mask is not None:
            hits &= state.emit_mask
        if not hits:
            continue
        if state.forward:
            pairs.extend((bit, hit) for hit in bit_indices(hits))
        else:
            pairs.extend((hit, bit) for hit in bit_indices(hits))
    return pairs


def timed_packed_chunk(payload: PackedChunkPayload) -> PackedChunkResult:
    """Traced packed pool entry point (see :func:`timed_search_chunk`)."""
    seed_bits, parent = payload
    started = clock.now()
    pairs = packed_search_chunk(seed_bits)
    return pairs, (parent, started, clock.now(), len(seed_bits), len(pairs))
