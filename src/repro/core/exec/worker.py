"""Process-pool worker side of the parallel frontier executor.

A worker process receives one :class:`SearchContext` — plain, picklable
data: the run's adjacency view for the chosen direction, the
direction-adjusted DFA, the pruning universe, the emit filter and the
*materialized* macro adjacencies — through the pool initializer, then
answers ``search_chunk`` calls with the oriented pairs of a contiguous seed
chunk.  Keeping the context in a module global means it is shipped once per
worker, not once per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.automata.dfa import DFA
from repro.core.relations import frontier_search

__all__ = ["SearchContext", "init_worker", "run_chunk", "search_chunk", "search_seeds"]


@dataclass(frozen=True)
class SearchContext:
    """Everything one frontier search needs, as plain data."""

    direction: str
    adjacency: Mapping[str, tuple[tuple[str, str], ...]]
    dfa: DFA
    allowed: frozenset[str] | None
    emit_filter: frozenset[str] | None
    macros: Mapping[str, Mapping[str, tuple[str, ...]]]


_CONTEXT: SearchContext | None = None


def init_worker(context: SearchContext) -> None:
    global _CONTEXT
    _CONTEXT = context


def search_seeds(
    adjacency: Mapping[str, Sequence[tuple[str, str]]],
    dfa: DFA,
    seeds: Iterable[str],
    *,
    allowed: frozenset[str] | None,
    emit_filter: frozenset[str] | None,
    macro_successors: Mapping[str, Callable[[str], Iterable[str]]] | None,
    forward: bool,
) -> list[tuple[str, str]]:
    """The one per-seed search loop every executor path shares.

    Serial, thread-pool and process-pool execution all reduce to this:
    search from each seed, intersect with the emit filter, orient the pairs
    (forward hits are targets, backward hits are sources).  Keeping it in
    one place means the emit/orientation semantics cannot drift between
    backends."""
    pairs: list[tuple[str, str]] = []
    for seed in seeds:
        hits = frontier_search(
            adjacency, dfa, seed, allowed=allowed, macro_successors=macro_successors
        )
        if emit_filter is not None:
            hits &= emit_filter
        if forward:
            pairs.extend((seed, hit) for hit in hits)
        else:
            pairs.extend((hit, seed) for hit in hits)
    return pairs


def run_chunk(context: SearchContext, seeds: tuple[str, ...]) -> list[tuple[str, str]]:
    """Search one chunk against a plain-data context (worker side)."""
    macro_successors = {
        tag: (lambda node, mapping=mapping: mapping.get(node, ()))
        for tag, mapping in context.macros.items()
    } or None
    return search_seeds(
        context.adjacency,
        context.dfa,
        seeds,
        allowed=context.allowed,
        emit_filter=context.emit_filter,
        macro_successors=macro_successors,
        forward=context.direction == "forward",
    )


def search_chunk(seeds: tuple[str, ...]) -> list[tuple[str, str]]:
    """Pool entry point: search one seed chunk against the worker context."""
    assert _CONTEXT is not None, "worker used before init_worker ran"
    return run_chunk(_CONTEXT, seeds)
