"""Process-pool worker side of the parallel frontier executor.

A worker process receives one :class:`SearchContext` — plain, picklable
data: the run's adjacency view for the chosen direction, the
direction-adjusted DFA, the pruning universe, the emit filter and the
*materialized* macro adjacencies — through the pool initializer, then
answers ``search_chunk`` calls with the oriented pairs of a contiguous seed
chunk.  Keeping the context in a module global means it is shipped once per
worker, not once per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.automata.dfa import DFA
from repro.core.relations import frontier_search
from repro.obs import clock

__all__ = [
    "ChunkPayload",
    "ChunkRecord",
    "ChunkResult",
    "SearchContext",
    "init_worker",
    "run_chunk",
    "search_chunk",
    "search_seeds",
    "timed_search_chunk",
]

#: The picklable trace context a chunk payload carries across the pool
#: boundary: the ``(trace_id, span_id)`` of the submitting search span, or
#: ``None`` when no recording tracer is installed.
ContextTuple = tuple[int, int]

#: What the traced pool entry point takes: the seed chunk plus the parent
#: span context (plain data, so process pools can pickle it).
ChunkPayload = tuple[tuple[str, ...], "ContextTuple | None"]

#: What a worker ships home alongside its pairs: the echoed parent context
#: and the chunk's clock window plus seed/pair counts.  The submitting side
#: stitches this into its trace with :meth:`repro.obs.Tracer.record`.
ChunkRecord = tuple["ContextTuple | None", float, float, int, int]

#: The traced entry point's return shape.  ``None`` in the record slot means
#: the span was already recorded live (the thread backend traces in-process
#: and has nothing to stitch).
ChunkResult = tuple[list[tuple[str, str]], "ChunkRecord | None"]


@dataclass(frozen=True)
class SearchContext:
    """Everything one frontier search needs, as plain data."""

    direction: str
    adjacency: Mapping[str, tuple[tuple[str, str], ...]]
    dfa: DFA
    allowed: frozenset[str] | None
    emit_filter: frozenset[str] | None
    macros: Mapping[str, Mapping[str, tuple[str, ...]]]


_CONTEXT: SearchContext | None = None


def init_worker(context: SearchContext) -> None:
    global _CONTEXT
    _CONTEXT = context


def search_seeds(
    adjacency: Mapping[str, Sequence[tuple[str, str]]],
    dfa: DFA,
    seeds: Iterable[str],
    *,
    allowed: frozenset[str] | None,
    emit_filter: frozenset[str] | None,
    macro_successors: Mapping[str, Callable[[str], Iterable[str]]] | None,
    forward: bool,
) -> list[tuple[str, str]]:
    """The one per-seed search loop every executor path shares.

    Serial, thread-pool and process-pool execution all reduce to this:
    search from each seed, intersect with the emit filter, orient the pairs
    (forward hits are targets, backward hits are sources).  Keeping it in
    one place means the emit/orientation semantics cannot drift between
    backends."""
    pairs: list[tuple[str, str]] = []
    for seed in seeds:
        hits = frontier_search(
            adjacency, dfa, seed, allowed=allowed, macro_successors=macro_successors
        )
        if emit_filter is not None:
            hits &= emit_filter
        if forward:
            pairs.extend((seed, hit) for hit in hits)
        else:
            pairs.extend((hit, seed) for hit in hits)
    return pairs


def run_chunk(context: SearchContext, seeds: tuple[str, ...]) -> list[tuple[str, str]]:
    """Search one chunk against a plain-data context (worker side)."""
    macro_successors = {
        tag: (lambda node, mapping=mapping: mapping.get(node, ()))
        for tag, mapping in context.macros.items()
    } or None
    return search_seeds(
        context.adjacency,
        context.dfa,
        seeds,
        allowed=context.allowed,
        emit_filter=context.emit_filter,
        macro_successors=macro_successors,
        forward=context.direction == "forward",
    )


def search_chunk(seeds: tuple[str, ...]) -> list[tuple[str, str]]:
    """Pool entry point: search one seed chunk against the worker context."""
    assert _CONTEXT is not None, "worker used before init_worker ran"
    return run_chunk(_CONTEXT, seeds)


def timed_search_chunk(payload: ChunkPayload) -> ChunkResult:
    """Traced pool entry point: search one chunk and report *when*.

    A worker process has no tracer (the ambient tracer is per-process), so
    it times itself with the sanctioned clock — ``perf_counter`` reads
    ``CLOCK_MONOTONIC`` on Linux, which is system-wide, so the window is
    directly comparable with the parent's span clock — and echoes the
    payload's parent context back so the submitting side can stitch the
    chunk in as a child span.
    """
    seeds, parent = payload
    started = clock.now()
    pairs = search_chunk(seeds)
    return pairs, (parent, started, clock.now(), len(seeds), len(pairs))
