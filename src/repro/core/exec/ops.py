"""Physical operators of the executor layer.

A physical plan (see :mod:`repro.core.exec.plan`) is a tiny tree of the
operators defined here.  Operators are *descriptions*: they carry everything
an executor needs — seeds, direction-adjusted DFA, pruning universe, macro
relations — but do no work themselves, so a plan can be built once (pure,
cheap, unit-testable) and handed to any executor (serial, thread pool,
process pool) without re-planning.

``MacroRelation`` is the one stateful piece: the label-decoded relation of a
routed safe subquery, materialized lazily on the first frontier expansion
that crosses its macro edge and shared — thread-safely — by every seed
search of the operator, in either direction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.automata.dfa import DFA
from repro.automata.regex import RegexNode
from repro.core.bitset import NodeInterner, PackedAdjacency
from repro.obs import get_tracer

__all__ = [
    "FrontierSearchOp",
    "JoinOp",
    "LabelDecodeOp",
    "MacroRelation",
    "PhysicalOp",
    "RestrictOp",
]


class MacroRelation:
    """A lazily decoded safe-subquery relation serving macro transitions.

    ``decode`` yields the relation's ``(source, target)`` pairs; it runs at
    most once (guarded by a lock, so parallel thread executors share one
    decode).  ``successors``/``predecessors`` are the adjacency views the
    forward and backward frontier searches follow across the macro edge;
    ``adjacency(direction)`` hands the materialized mapping itself to the
    process-pool executor, which must ship plain data to its workers.
    """

    def __init__(self, decode: Callable[[], Iterable[tuple[str, str]]]) -> None:
        self._decode = decode
        self._lock = threading.Lock()
        self._forward: dict[str, tuple[str, ...]] | None = None  # guarded-by: _lock
        self._backward: dict[str, tuple[str, ...]] | None = None  # guarded-by: _lock
        self._packed: dict[str, PackedAdjacency] = {}  # guarded-by: _lock

    def _materialize(self) -> tuple[
        dict[str, tuple[str, ...]], dict[str, tuple[str, ...]]
    ]:
        """Decode once and return ``(forward, backward)``; readers work off
        the returned mappings (never the fields) so reads need no lock."""
        with self._lock:
            if self._forward is None or self._backward is None:
                with get_tracer().span("exec.macro_decode") as span:
                    forward: dict[str, list[str]] = {}
                    backward: dict[str, list[str]] = {}
                    pairs = 0
                    for source, target in self._decode():
                        pairs += 1
                        forward.setdefault(source, []).append(target)
                        backward.setdefault(target, []).append(source)
                    span.set("pairs", pairs)
                self._forward = {node: tuple(out) for node, out in forward.items()}
                self._backward = {node: tuple(out) for node, out in backward.items()}
            return self._forward, self._backward

    def adjacency(self, direction: str) -> Mapping[str, tuple[str, ...]]:
        """The materialized macro adjacency for one search direction."""
        forward, backward = self._materialize()
        return forward if direction == "forward" else backward

    def successors(self, node: str) -> tuple[str, ...]:
        forward, _ = self._materialize()
        return forward.get(node, ())

    def predecessors(self, node: str) -> tuple[str, ...]:
        _, backward = self._materialize()
        return backward.get(node, ())

    def expander(self, direction: str) -> Callable[[str], tuple[str, ...]]:
        """The per-node successor callable :func:`frontier_search` expects."""
        return self.successors if direction == "forward" else self.predecessors

    def packed_adjacency(self, direction: str, interner: NodeInterner) -> PackedAdjacency:
        """The macro relation as packed rows over the run's interner.

        Decodes (at most once, shared with the set-based views) and packs (at
        most once per direction; a macro belongs to one plan, so the interner
        is fixed).  The process-pool executor ships these rows into the
        shared-memory arena; the serial/thread packed paths reach them
        through :meth:`packed_propagator` instead, which defers this call to
        the first frontier that actually crosses the macro edge.
        """
        with self._lock:
            cached = self._packed.get(direction)
        if cached is not None:
            return cached
        # Decode outside the critical section: adjacency() takes _lock itself
        # (it is not reentrant), and two threads packing the same direction
        # concurrently just produce identical rows — setdefault keeps one.
        mapping = self.adjacency(direction)
        packed = PackedAdjacency(
            len(interner),
            [interner.mask_of(mapping.get(node_id, ())) for node_id in interner.ids],
        )
        with self._lock:
            return self._packed.setdefault(direction, packed)

    def packed_propagator(self, direction: str, interner: NodeInterner) -> "_LazyPackedMacro":
        """A row propagator that materializes the macro lazily on first use."""
        return _LazyPackedMacro(self, direction, interner)


class _LazyPackedMacro:
    """Defers macro decode+pack until a frontier actually propagates over it,
    mirroring the laziness of the set-based ``expander`` path."""

    __slots__ = ("_relation", "_direction", "_interner")

    def __init__(self, relation: MacroRelation, direction: str, interner: NodeInterner) -> None:
        self._relation = relation
        self._direction = direction
        self._interner = interner

    def propagate(self, mask: int) -> int:
        return self._relation.packed_adjacency(self._direction, self._interner).propagate(mask)


@dataclass(frozen=True)
class FrontierSearchOp:
    """One pruned product-DFA frontier search per seed.

    ``direction`` orients everything at once: forward seeds are the requested
    sources and hits are targets filtered by ``emit_filter`` (the requested
    target set); backward seeds are the requested *targets*, the ``dfa`` is
    the reversed macro DFA, searches follow run predecessors (and macro
    predecessors), and hits are sources filtered by the requested source set.
    Executors re-orient emitted pairs so callers always see ``(source,
    target)``.
    """

    direction: str  # "forward" | "backward"
    dfa: DFA
    seeds: tuple[str, ...]
    emit_filter: frozenset[str] | None
    allowed: frozenset[str] | None
    macros: Mapping[str, MacroRelation] = field(default_factory=dict)


@dataclass(frozen=True)
class LabelDecodeOp:
    """A fully safe query (or safe subtree) answered by the labeling engine
    (Algorithm 2 / optRPL-G) over explicit node lists."""

    node: RegexNode
    l1: tuple[str, ...]
    l2: tuple[str, ...]


@dataclass(frozen=True)
class JoinOp:
    """The bottom-up relational evaluation (Option G1) of the unsafe
    remainder, with safe subtrees in ``routed`` answered by the labeling
    engine and every relation filtered to the ``allowed`` universe."""

    root: RegexNode
    routed: frozenset[RegexNode]
    allowed: frozenset[str] | None


@dataclass(frozen=True)
class RestrictOp:
    """Final source/target restriction over a child operator's relation
    (``None`` keeps a side unconstrained)."""

    child: "PhysicalOp"
    l1: tuple[str, ...] | None
    l2: tuple[str, ...] | None


PhysicalOp = FrontierSearchOp | LabelDecodeOp | JoinOp | RestrictOp
