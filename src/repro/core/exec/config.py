"""Executor tuning: direction, parallelism, merge order, worker budget.

An :class:`ExecutorConfig` travels from the API surface (CLI ``--direction``/
``--workers``, :class:`~repro.service.service.QueryService`) down to the
executor.  A :class:`WorkerBudget` is the service-level throttle: one budget
of ``max_workers`` slots is shared between the batch evaluation pool and
every parallel frontier execution, so a saturated batch degrades frontier
searches to serial instead of oversubscribing the host.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["DIRECTIONS", "KERNELS", "ExecutorConfig", "WorkerBudget"]

DIRECTIONS = ("auto", "forward", "backward")

_BACKENDS = ("auto", "thread", "process")

KERNELS = ("auto", "packed", "sets")


class WorkerBudget:
    """A counting lease over a fixed pool of worker slots.

    ``lease(n)`` grants ``min(n, free slots)`` — but always at least one, so
    a caller can proceed serially instead of blocking — and returns the
    grant for the duration of the ``with`` block.  Thread-safe; the service
    leases one slot per in-flight batch request and the parallel executor
    leases its fan-out width, so the two kinds of work share one budget.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("worker budget capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._in_use = 0  # guarded-by: _lock

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._in_use

    def acquire(self, requested: int) -> int:
        """Take ``min(requested, free slots)`` — at least 1 — immediately.
        Pair every acquire with exactly one :meth:`release` of the grant."""
        with self._lock:
            granted = max(1, min(requested, self.capacity - self._in_use))
            self._in_use += granted
            return granted

    def release(self, granted: int) -> None:
        with self._lock:
            self._in_use -= granted

    @contextmanager
    def lease(self, requested: int) -> Iterator[int]:
        granted = self.acquire(requested)
        try:
            yield granted
        finally:
            self.release(granted)


@dataclass(frozen=True)
class ExecutorConfig:
    """How the unsafe remainder of a general query is physically executed.

    ``direction`` picks the frontier search orientation (``auto`` lets the
    cost model compare seed counts); ``workers`` is the requested per-query
    fan-out (1 = serial); ``ordered`` makes the parallel merge yield each
    seed's pairs in seed order instead of completion order; ``backend``
    selects threads (shared memory, GIL-bound) or processes (true
    parallelism for the pure-Python search; ``auto`` picks processes where
    ``fork`` is available).  ``budget``, when set by a service, caps the
    granted fan-out by what the shared pool has free.

    ``kernel`` picks the relation/frontier compute representation:
    ``packed`` runs joins, closures and frontier searches on the uint64
    bitset kernel of :mod:`repro.core.bitset`; ``sets`` keeps the legacy
    per-element set path selectable for A/B comparison and as an executable
    reference; ``auto`` (the default) picks per operator — packed where the
    word-parallel algebra wins (joins, closures), sets where sparse
    traversal wins (per-seed frontier searches).
    """

    direction: str = "auto"
    workers: int = 1
    ordered: bool = False
    backend: str = "auto"
    kernel: str = "auto"
    budget: WorkerBudget | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r}; use one of {list(DIRECTIONS)}"
            )
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; use one of {list(_BACKENDS)}"
            )
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; use one of {list(KERNELS)}"
            )
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

    def resolved_backend(self) -> str:
        """``auto`` resolves to processes where ``fork`` start is available
        (true parallelism for the GIL-bound search), threads elsewhere."""
        if self.backend != "auto":
            return self.backend
        if sys.platform != "win32" and hasattr(os, "fork"):
            return "process"
        return "thread"

    def resolved_kernel(self) -> str:
        """The explicitly requested kernel, or ``"auto"``.

        An explicit config choice wins; otherwise the ``REPRO_KERNEL``
        environment variable (``packed`` | ``sets``) forces one path for a
        whole test or CI arm without threading a flag through every call
        site.  ``"auto"`` means :meth:`kernel_for` decides per operator.

        The env read is the sanctioned kernel-override wrapper: it happens
        at *execution* time and never feeds a cached plan artifact (plans
        record the configured kernel, see ``PhysicalPlan.describe``), so
        the line carries the REP109 ``effect-exempt`` directive.
        """
        if self.kernel != "auto":
            return self.kernel
        override = os.environ.get("REPRO_KERNEL", "")  # effect-exempt: env
        if override in ("packed", "sets"):
            return override
        return "auto"

    def kernel_for(self, operator: str) -> str:
        """The kernel one physical operator class actually runs on.

        ``auto`` picks by measured strength, not uniformly: ``"join"``-class
        work (relation algebra, closures) runs packed — whole rows combine
        word-parallel — while ``"frontier"``-class per-seed searches run on
        sets, whose per-edge cost tracks a sparse run's real out-degree
        instead of the packed row width.  Explicit choices force both.
        """
        resolved = self.resolved_kernel()
        if resolved != "auto":
            return resolved
        return "packed" if operator == "join" else "sets"
