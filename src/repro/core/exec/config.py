"""Executor tuning: direction, parallelism, merge order, worker budget.

An :class:`ExecutorConfig` travels from the API surface (CLI ``--direction``/
``--workers``, :class:`~repro.service.service.QueryService`) down to the
executor.  A :class:`WorkerBudget` is the service-level throttle: one budget
of ``max_workers`` slots is shared between the batch evaluation pool and
every parallel frontier execution, so a saturated batch degrades frontier
searches to serial instead of oversubscribing the host.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["DIRECTIONS", "ExecutorConfig", "WorkerBudget"]

DIRECTIONS = ("auto", "forward", "backward")

_BACKENDS = ("auto", "thread", "process")


class WorkerBudget:
    """A counting lease over a fixed pool of worker slots.

    ``lease(n)`` grants ``min(n, free slots)`` — but always at least one, so
    a caller can proceed serially instead of blocking — and returns the
    grant for the duration of the ``with`` block.  Thread-safe; the service
    leases one slot per in-flight batch request and the parallel executor
    leases its fan-out width, so the two kinds of work share one budget.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("worker budget capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._in_use = 0  # guarded-by: _lock

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._in_use

    def acquire(self, requested: int) -> int:
        """Take ``min(requested, free slots)`` — at least 1 — immediately.
        Pair every acquire with exactly one :meth:`release` of the grant."""
        with self._lock:
            granted = max(1, min(requested, self.capacity - self._in_use))
            self._in_use += granted
            return granted

    def release(self, granted: int) -> None:
        with self._lock:
            self._in_use -= granted

    @contextmanager
    def lease(self, requested: int) -> Iterator[int]:
        granted = self.acquire(requested)
        try:
            yield granted
        finally:
            self.release(granted)


@dataclass(frozen=True)
class ExecutorConfig:
    """How the unsafe remainder of a general query is physically executed.

    ``direction`` picks the frontier search orientation (``auto`` lets the
    cost model compare seed counts); ``workers`` is the requested per-query
    fan-out (1 = serial); ``ordered`` makes the parallel merge yield each
    seed's pairs in seed order instead of completion order; ``backend``
    selects threads (shared memory, GIL-bound) or processes (true
    parallelism for the pure-Python search; ``auto`` picks processes where
    ``fork`` is available).  ``budget``, when set by a service, caps the
    granted fan-out by what the shared pool has free.
    """

    direction: str = "auto"
    workers: int = 1
    ordered: bool = False
    backend: str = "auto"
    budget: WorkerBudget | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r}; use one of {list(DIRECTIONS)}"
            )
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; use one of {list(_BACKENDS)}"
            )
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

    def resolved_backend(self) -> str:
        """``auto`` resolves to processes where ``fork`` start is available
        (true parallelism for the GIL-bound search), threads elsewhere."""
        if self.backend != "auto":
            return self.backend
        if sys.platform != "win32" and hasattr(os, "fork"):
            return "process"
        return "thread"
