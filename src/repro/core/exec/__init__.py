"""The executor layer: physical plans and their execution.

The evaluation stack splits in two at this package's boundary:

* the **planner** (:mod:`repro.core.decomposition` + the cost model of
  :mod:`repro.core.optimizer`) is logical: safe-subtree decomposition,
  safety analysis, macro rewriting, cost and direction estimation — pure,
  cacheable, store-serializable;
* the **executor** (this package) is physical: ``build_physical_plan``
  resolves a workload into a tree of operators (:class:`FrontierSearchOp`,
  :class:`JoinOp`, :class:`LabelDecodeOp`, :class:`RestrictOp`) and
  ``execute``/``execute_iter`` run it — serially, or fanned across a thread
  or process pool with ordered/unordered streaming merge.

New execution strategies plug in at this seam without touching the planner:
the backward (reversed-DFA) frontier search and the parallel per-seed
executor both live here.
"""

from repro.core.exec.config import DIRECTIONS, KERNELS, ExecutorConfig, WorkerBudget
from repro.core.exec.executor import execute, execute_iter
from repro.core.exec.ops import (
    FrontierSearchOp,
    JoinOp,
    LabelDecodeOp,
    MacroRelation,
    PhysicalOp,
    RestrictOp,
)
from repro.core.exec.plan import PhysicalPlan, build_physical_plan

__all__ = [
    "DIRECTIONS",
    "ExecutorConfig",
    "FrontierSearchOp",
    "JoinOp",
    "KERNELS",
    "LabelDecodeOp",
    "MacroRelation",
    "PhysicalOp",
    "PhysicalPlan",
    "RestrictOp",
    "WorkerBudget",
    "build_physical_plan",
    "execute",
    "execute_iter",
]
