"""Node-pair relations and the join-based regex evaluation (Option G1).

A regular path query over a run can always be evaluated bottom-up over the
query's parse tree, materializing for every subexpression the relation of
node pairs it connects and combining child relations with joins, unions and
fixpoints (Li & Moon [21]; Option G1 in Section IV-B).  This module holds
that relational machinery:

* it *is* the baseline G1 used in the experiments, and
* it evaluates the unsafe remainder of a decomposed general query
  (Section IV-B, "Our approach").

Relations are plain sets of ``(source node id, target node id)`` pairs, with
adjacency dictionaries built on the fly for joins; the transitive closure
uses semi-naive iteration.  Following the library-wide convention, the empty
path is admitted: ``ε`` and ``e*`` relate every node of the run to itself.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
)
from repro.workflow.run import Run

__all__ = [
    "NodePairs",
    "tag_relation",
    "all_edge_relation",
    "identity_relation",
    "compose",
    "transitive_closure",
    "reflexive_transitive_closure",
    "restrict",
    "evaluate_regex_relation",
]

NodePairs = set[tuple[str, str]]


def tag_relation(run: Run, tag: str) -> NodePairs:
    """Pairs connected by a single edge with the given tag."""
    return {(edge.source, edge.target) for edge in run.edges_by_tag.get(tag, ())}


def all_edge_relation(run: Run) -> NodePairs:
    """Pairs connected by a single edge of any tag (the wildcard ``_``)."""
    return {(edge.source, edge.target) for edge in run.edges}


def identity_relation(nodes: Iterable[str]) -> NodePairs:
    """The diagonal relation over a node universe (the empty path)."""
    return {(node, node) for node in nodes}


def _forward_index(relation: NodePairs) -> dict[str, set[str]]:
    index: dict[str, set[str]] = {}
    for source, target in relation:
        index.setdefault(source, set()).add(target)
    return index


def compose(left: NodePairs, right: NodePairs) -> NodePairs:
    """Relational composition: ``{(a, c) | (a, b) ∈ left, (b, c) ∈ right}``.

    The smaller side drives the join to keep intermediate work proportional
    to the output.
    """
    if not left or not right:
        return set()
    right_index = _forward_index(right)
    result: NodePairs = set()
    for source, middle in left:
        targets = right_index.get(middle)
        if targets:
            for target in targets:
                result.add((source, target))
    return result


def transitive_closure(relation: NodePairs) -> NodePairs:
    """``R+``: one or more steps of ``R`` (semi-naive fixpoint iteration)."""
    closure: NodePairs = set(relation)
    index = _forward_index(relation)
    frontier = set(relation)
    while frontier:
        next_frontier: NodePairs = set()
        for source, middle in frontier:
            for target in index.get(middle, ()):
                pair = (source, target)
                if pair not in closure:
                    closure.add(pair)
                    next_frontier.add(pair)
        frontier = next_frontier
    return closure


def reflexive_transitive_closure(relation: NodePairs, nodes: Iterable[str]) -> NodePairs:
    """``R*``: the transitive closure plus the diagonal over the universe."""
    return transitive_closure(relation) | identity_relation(nodes)


def restrict(
    relation: NodePairs, l1: Sequence[str] | None, l2: Sequence[str] | None
) -> NodePairs:
    """Keep only pairs with the source in ``l1`` and the target in ``l2``."""
    if l1 is None and l2 is None:
        return relation
    sources = None if l1 is None else set(l1)
    targets = None if l2 is None else set(l2)
    return {
        (source, target)
        for source, target in relation
        if (sources is None or source in sources)
        and (targets is None or target in targets)
    }


def evaluate_regex_relation(
    run: Run,
    node: RegexNode,
    *,
    subquery_evaluator=None,
) -> NodePairs:
    """Bottom-up join-based evaluation of a query over a run (Option G1).

    ``subquery_evaluator(node) -> NodePairs | None`` optionally intercepts
    subtrees (the decomposition engine passes a hook that answers *safe*
    subtrees with the labeling-based all-pairs algorithm and returns ``None``
    for everything else).
    """
    if subquery_evaluator is not None:
        shortcut = subquery_evaluator(node)
        if shortcut is not None:
            return shortcut
    if isinstance(node, Epsilon):
        return identity_relation(run.node_ids())
    if isinstance(node, Symbol):
        return tag_relation(run, node.tag)
    if isinstance(node, AnySymbol):
        return all_edge_relation(run)
    if isinstance(node, Concat):
        relation: NodePairs | None = None
        for part in node.parts:
            part_relation = evaluate_regex_relation(
                run, part, subquery_evaluator=subquery_evaluator
            )
            relation = part_relation if relation is None else compose(relation, part_relation)
            if not relation:
                return set()
        return relation if relation is not None else identity_relation(run.node_ids())
    if isinstance(node, Union):
        result: NodePairs = set()
        for part in node.parts:
            result |= evaluate_regex_relation(
                run, part, subquery_evaluator=subquery_evaluator
            )
        return result
    if isinstance(node, Star):
        inner = evaluate_regex_relation(run, node.child, subquery_evaluator=subquery_evaluator)
        return reflexive_transitive_closure(inner, run.node_ids())
    if isinstance(node, Plus):
        inner = evaluate_regex_relation(run, node.child, subquery_evaluator=subquery_evaluator)
        return transitive_closure(inner)
    raise TypeError(f"unknown regex node {node!r}")
