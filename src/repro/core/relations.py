"""Node-pair relations and the join-based regex evaluation (Option G1).

A regular path query over a run can always be evaluated bottom-up over the
query's parse tree, materializing for every subexpression the relation of
node pairs it connects and combining child relations with joins, unions and
fixpoints (Li & Moon [21]; Option G1 in Section IV-B).  This module holds
that relational machinery:

* it *is* the baseline G1 used in the experiments, and
* it evaluates the unsafe remainder of a decomposed general query
  (Section IV-B, "Our approach").

Relations are plain sets of ``(source node id, target node id)`` pairs, with
adjacency dictionaries built on the fly for joins; the transitive closure
uses semi-naive iteration.  Following the library-wide convention, the empty
path is admitted: ``ε`` and ``e*`` relate every node of the run to itself.

This set-based path remains selectable (``ExecutorConfig.kernel = "sets"``)
as the executable reference semantics; the production default is
:func:`evaluate_regex_relation_packed`, the same bottom-up evaluation over
the uint64-packed kernel of :mod:`repro.core.bitset`.  The packed path reads
the run's adjacency from the memoized ``run.packed`` view — built once per
run and reused across queries — instead of re-deriving per-tag edge sets on
every call, and the closure helpers below ride the same packed view.

Two restriction-pushdown primitives let callers keep intermediate relations
proportional to the *requested* node lists instead of the whole run:

* ``restriction_universe`` computes the set of nodes that can lie on any
  source-to-target path (forward-reachable from ``l1`` intersected with
  backward-reachable from ``l2``), and every relation builder here accepts it
  as an ``allowed`` filter — sound because every node of a matching path is
  both reachable from its source and co-reachable from its target;
* ``product_frontier_targets`` is a per-source frontier search over the
  product of the run graph with a query DFA (the production generalization
  of :mod:`repro.baselines.product_bfs`), pruned by the same ``allowed`` set
  and extended with *macro transitions*: synthetic DFA symbols whose
  successors come from an already-materialized relation (the decomposition
  engine feeds the label-decoded relations of maximal safe subqueries
  through this hook).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.automata.dfa import DFA
from repro.core.bitset import PackedRelation, closure_mask
from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
)
from repro.workflow.run import Run

__all__ = [
    "NodePairs",
    "tag_relation",
    "all_edge_relation",
    "identity_relation",
    "compose",
    "transitive_closure",
    "reflexive_transitive_closure",
    "restrict",
    "forward_closure_nodes",
    "backward_closure_nodes",
    "restriction_universe",
    "frontier_search",
    "product_frontier_targets",
    "evaluate_regex_relation",
    "evaluate_regex_relation_packed",
]

NodePairs = set[tuple[str, str]]


def tag_relation(run: Run, tag: str, allowed: frozenset[str] | set[str] | None = None) -> NodePairs:
    """Pairs connected by a single edge with the given tag."""
    return {
        (edge.source, edge.target)
        for edge in run.edges_by_tag.get(tag, ())
        if allowed is None or (edge.source in allowed and edge.target in allowed)
    }


def all_edge_relation(run: Run, allowed: frozenset[str] | set[str] | None = None) -> NodePairs:
    """Pairs connected by a single edge of any tag (the wildcard ``_``)."""
    return {
        (edge.source, edge.target)
        for edge in run.edges
        if allowed is None or (edge.source in allowed and edge.target in allowed)
    }


def identity_relation(nodes: Iterable[str]) -> NodePairs:
    """The diagonal relation over a node universe (the empty path)."""
    return {(node, node) for node in nodes}


def _forward_index(relation: NodePairs) -> dict[str, set[str]]:
    index: dict[str, set[str]] = {}
    for source, target in relation:
        index.setdefault(source, set()).add(target)
    return index


def compose(left: NodePairs, right: NodePairs) -> NodePairs:
    """Relational composition: ``{(a, c) | (a, b) ∈ left, (b, c) ∈ right}``.

    The smaller side drives the join to keep intermediate work proportional
    to the output.
    """
    if not left or not right:
        return set()
    right_index = _forward_index(right)
    result: NodePairs = set()
    for source, middle in left:
        targets = right_index.get(middle)
        if targets:
            for target in targets:
                result.add((source, target))
    return result


def transitive_closure(relation: NodePairs) -> NodePairs:
    """``R+``: one or more steps of ``R`` (semi-naive fixpoint iteration)."""
    closure: NodePairs = set(relation)
    index = _forward_index(relation)
    frontier = set(relation)
    while frontier:
        next_frontier: NodePairs = set()
        for source, middle in frontier:
            for target in index.get(middle, ()):
                pair = (source, target)
                if pair not in closure:
                    closure.add(pair)
                    next_frontier.add(pair)
        frontier = next_frontier
    return closure


def reflexive_transitive_closure(relation: NodePairs, nodes: Iterable[str]) -> NodePairs:
    """``R*``: the transitive closure plus the diagonal over the universe."""
    return transitive_closure(relation) | identity_relation(nodes)


def restrict(
    relation: NodePairs, l1: Sequence[str] | None, l2: Sequence[str] | None
) -> NodePairs:
    """Keep only pairs with the source in ``l1`` and the target in ``l2``."""
    if l1 is None and l2 is None:
        return relation
    sources = None if l1 is None else set(l1)
    targets = None if l2 is None else set(l2)
    return {
        (source, target)
        for source, target in relation
        if (sources is None or source in sources)
        and (targets is None or target in targets)
    }


def forward_closure_nodes(run: Run, seeds: Iterable[str]) -> frozenset[str]:
    """All nodes reachable from any seed, including the seeds themselves
    (seed ids not present in the run are silently dropped).

    Runs on the memoized packed view: one word-parallel wavefront per BFS
    level over the run's any-tag rows instead of a per-edge set walk.
    """
    view = run.packed
    reach = closure_mask(view.forward.any_tag, view.interner.mask_of(seeds))
    return frozenset(view.interner.nodes_of(reach))


def backward_closure_nodes(run: Run, seeds: Iterable[str]) -> frozenset[str]:
    """All nodes that reach any seed, including the seeds themselves
    (seed ids not present in the run are silently dropped)."""
    view = run.packed
    reach = closure_mask(view.backward.any_tag, view.interner.mask_of(seeds))
    return frozenset(view.interner.nodes_of(reach))


def restriction_universe(
    run: Run, l1: Sequence[str] | None, l2: Sequence[str] | None
) -> frozenset[str] | None:
    """The nodes that can lie on any path from ``l1`` to ``l2``.

    Every node of a path from a source in ``l1`` to a target in ``l2`` is
    reachable from that source and reaches that target, so the forward
    closure of ``l1`` intersected with the backward closure of ``l2`` is a
    sound universe for *every* intermediate relation of the query — the
    restriction-pushdown filter.  ``None`` (either side, or the result when
    both sides are ``None``) means unconstrained.
    """
    if l1 is None and l2 is None:
        return None
    forward = forward_closure_nodes(run, l1) if l1 is not None else None
    backward = backward_closure_nodes(run, l2) if l2 is not None else None
    if forward is None:
        return backward
    if backward is None:
        return forward
    return forward & backward


def frontier_search(
    adjacency: Mapping[str, Sequence[tuple[str, str]]],
    dfa: DFA,
    seed: str,
    *,
    allowed: frozenset[str] | set[str] | None = None,
    macro_successors: Mapping[str, Callable[[str], Iterable[str]]] | None = None,
) -> set[str]:
    """The core product frontier search over an explicit adjacency view.

    ``adjacency[node]`` lists ``(neighbor, tag)`` pairs; passing
    ``run.successors`` searches forward (see :func:`product_frontier_targets`)
    and passing ``run.predecessors`` with a reversed DFA searches backward
    from a target.  The function touches nothing but these plain mappings and
    the DFA, so the parallel executor's process workers can run it on shipped
    data without reconstructing a :class:`~repro.workflow.run.Run`.
    """
    if seed not in adjacency or (allowed is not None and seed not in allowed):
        return set()
    successors = adjacency
    accepting = dfa.accepting
    transitions = dfa.transitions
    dead = dfa.dead_state()
    start_state = dfa.start
    result: set[str] = set()
    if start_state in accepting:
        result.add(seed)
    seen = {(seed, start_state)}
    stack = [(seed, start_state)]
    while stack:
        node, state = stack.pop()
        row = transitions[state]
        edges: Iterable[tuple[str, str]] = successors[node]
        if macro_successors:
            extra = [
                (target, tag)
                for tag, expand in macro_successors.items()
                if row.get(tag, dead) != dead
                for target in expand(node)
            ]
            if extra:
                edges = list(edges) + extra
        for target, tag in edges:
            next_state = row.get(tag, dead)
            if next_state is None or next_state == dead:
                continue
            if allowed is not None and target not in allowed:
                continue
            key = (target, next_state)
            if key in seen:
                continue
            seen.add(key)
            stack.append(key)
            if next_state in accepting:
                result.add(target)
    return result


def product_frontier_targets(
    run: Run,
    dfa: DFA,
    source: str,
    *,
    allowed: frozenset[str] | set[str] | None = None,
    macro_successors: Mapping[str, Callable[[str], Iterable[str]]] | None = None,
) -> set[str]:
    """All nodes ``v`` such that some path ``source ⤳ v`` is accepted.

    A frontier search over the product of the run graph with the query DFA
    (Mendelzon & Wood), with two production extensions over the baseline in
    :mod:`repro.baselines.product_bfs`:

    * states whose run node falls outside ``allowed`` are pruned (backward
      pruning from the requested targets), and dead DFA states are never
      enqueued, so the search touches only the useful region of the run;
    * ``macro_successors[tag](node)`` supplies the successors of ``node``
      under a synthetic *macro* symbol — an edge standing for a whole
      relation (the decomposition engine maps each label-decoded safe
      subquery to one macro symbol).  Wildcard transitions never match macro
      symbols (see :func:`repro.automata.dfa.determinize`).

    Memory is bounded by ``|reachable nodes| × |DFA states|``, never by the
    run size.  The direction-agnostic core lives in :func:`frontier_search`;
    the backward variant of the executor layer calls it with
    ``run.predecessors`` and a reversed DFA.
    """
    return frontier_search(
        run.successors, dfa, source, allowed=allowed, macro_successors=macro_successors
    )


def evaluate_regex_relation(
    run: Run,
    node: RegexNode,
    *,
    subquery_evaluator: Callable[[RegexNode], "NodePairs | None"] | None = None,
    allowed: frozenset[str] | set[str] | None = None,
) -> NodePairs:
    """Bottom-up join-based evaluation of a query over a run (Option G1).

    ``subquery_evaluator(node) -> NodePairs | None`` optionally intercepts
    subtrees (the decomposition engine passes a hook that answers *safe*
    subtrees with the labeling-based all-pairs algorithm and returns ``None``
    for everything else).  ``allowed`` restricts every relation — leaves and
    closures alike — to pairs inside a node universe (see
    :func:`restriction_universe`), which bounds peak relation size by that
    universe instead of the run.
    """
    if subquery_evaluator is not None:
        shortcut = subquery_evaluator(node)
        if shortcut is not None:
            return shortcut
    # The empty-path diagonal (epsilon, star) only exists at nodes the run
    # actually contains; ids in ``allowed`` that are not run nodes must not
    # fabricate pairs (the packed kernel drops them at interning).
    universe = (
        frozenset(allowed).intersection(run.nodes)
        if allowed is not None
        else run.node_ids()
    )
    if isinstance(node, Epsilon):
        return identity_relation(universe)
    if isinstance(node, Symbol):
        return tag_relation(run, node.tag, allowed)
    if isinstance(node, AnySymbol):
        return all_edge_relation(run, allowed)
    if isinstance(node, Concat):
        relation: NodePairs | None = None
        for part in node.parts:
            part_relation = evaluate_regex_relation(
                run, part, subquery_evaluator=subquery_evaluator, allowed=allowed
            )
            relation = part_relation if relation is None else compose(relation, part_relation)
            if not relation:
                return set()
        return relation if relation is not None else identity_relation(universe)
    if isinstance(node, Union):
        result: NodePairs = set()
        for part in node.parts:
            result |= evaluate_regex_relation(
                run, part, subquery_evaluator=subquery_evaluator, allowed=allowed
            )
        return result
    if isinstance(node, Star):
        inner = evaluate_regex_relation(
            run, node.child, subquery_evaluator=subquery_evaluator, allowed=allowed
        )
        return reflexive_transitive_closure(inner, universe)
    if isinstance(node, Plus):
        inner = evaluate_regex_relation(
            run, node.child, subquery_evaluator=subquery_evaluator, allowed=allowed
        )
        return transitive_closure(inner)
    raise TypeError(f"unknown regex node {node!r}")


def _evaluate_packed(
    run: Run,
    node: RegexNode,
    *,
    subquery_evaluator: Callable[[RegexNode], "NodePairs | None"] | None,
    allowed_mask: int | None,
    universe_mask: int,
) -> PackedRelation:
    """The packed twin of :func:`evaluate_regex_relation`'s recursion.

    Leaves come straight from the memoized ``run.packed`` rows; compositions,
    unions, and closures are word-parallel :class:`PackedRelation` algebra.
    Safe subtrees intercepted by ``subquery_evaluator`` arrive as node-pair
    sets (the label-decode output) and are packed at the boundary.
    """
    view = run.packed
    node_count = len(view.interner)
    if subquery_evaluator is not None:
        shortcut = subquery_evaluator(node)
        if shortcut is not None:
            return PackedRelation.from_pairs(view.interner, shortcut)
    if isinstance(node, Epsilon):
        return PackedRelation.identity(node_count, universe_mask)
    if isinstance(node, Symbol):
        adjacency = view.forward.by_tag.get(node.tag)
        if adjacency is None:
            return PackedRelation.empty(node_count)
        return PackedRelation.from_adjacency(adjacency, allowed_mask)
    if isinstance(node, AnySymbol):
        return PackedRelation.from_adjacency(view.forward.any_tag, allowed_mask)
    if isinstance(node, Concat):
        relation: PackedRelation | None = None
        for part in node.parts:
            part_relation = _evaluate_packed(
                run,
                part,
                subquery_evaluator=subquery_evaluator,
                allowed_mask=allowed_mask,
                universe_mask=universe_mask,
            )
            relation = part_relation if relation is None else relation.compose(part_relation)
            if relation.is_empty():
                return PackedRelation.empty(node_count)
        return relation if relation is not None else PackedRelation.identity(
            node_count, universe_mask
        )
    if isinstance(node, Union):
        result = PackedRelation.empty(node_count)
        for part in node.parts:
            result = result.union(
                _evaluate_packed(
                    run,
                    part,
                    subquery_evaluator=subquery_evaluator,
                    allowed_mask=allowed_mask,
                    universe_mask=universe_mask,
                )
            )
        return result
    if isinstance(node, (Star, Plus)):
        inner = _evaluate_packed(
            run,
            node.child,
            subquery_evaluator=subquery_evaluator,
            allowed_mask=allowed_mask,
            universe_mask=universe_mask,
        )
        closed = inner.transitive_closure()
        if isinstance(node, Star):
            return closed.with_diagonal(universe_mask)
        return closed
    raise TypeError(f"unknown regex node {node!r}")


def evaluate_regex_relation_packed(
    run: Run,
    node: RegexNode,
    *,
    subquery_evaluator: Callable[[RegexNode], "NodePairs | None"] | None = None,
    allowed: frozenset[str] | set[str] | None = None,
) -> NodePairs:
    """:func:`evaluate_regex_relation` on the packed kernel.

    Same contract and results as the set-based evaluation (the Hypothesis
    equivalence suite holds the two paths together); only the representation
    differs — relations live as packed rows for the whole bottom-up pass and
    unpack to node pairs exactly once at the root.
    """
    view = run.packed
    allowed_mask = None if allowed is None else view.interner.mask_of(allowed)
    universe_mask = view.interner.full_mask if allowed_mask is None else allowed_mask
    relation = _evaluate_packed(
        run,
        node,
        subquery_evaluator=subquery_evaluator,
        allowed_mask=allowed_mask,
        universe_mask=universe_mask,
    )
    return relation.to_pairs(view.interner)
