"""General (possibly unsafe) all-pairs queries (Section IV-B, "Our approach").

A general query may not be safe for the specification, so the constant-time
label decode cannot be applied to it as a whole.  The paper's approach:

1. represent the query as a parse tree,
2. walking top-down, find the *maximal safe subtrees* — subexpressions that
   are safe for the specification (checked with the polynomial-time safety
   test of Section III-C),
3. evaluate each maximal safe subtree with the all-pairs labeling engine of
   Algorithm 2, and
4. evaluate the remaining (unsafe) structure bottom-up with relational joins
   (Option G1), treating the safe subtrees' results as already-materialized
   relations.

When the whole query is safe the decomposition degenerates to a single call
to the safe engine.  Finding the *best* equivalent rewriting of the query
with the largest safe parts is left as future work by the paper; like the
paper we use the simple top-down heuristic.

Restriction pushdown
--------------------

The caller's ``l1``/``l2`` node lists are pushed *into* the evaluation
instead of being applied to a whole-run result:

* the **frontier strategy** rewrites the query with one synthetic *macro*
  symbol per label-routed safe subquery, compiles it to a DFA (wildcards
  never match macro symbols), and runs one product-DFA frontier search per
  requested source (:func:`~repro.core.relations.product_frontier_targets`),
  pruned by the forward/backward ``allowed`` universe and following macro
  edges through the label-decoded relations;
* the **join strategy** keeps the classic bottom-up relational evaluation
  but filters every leaf relation and closure to the ``allowed`` universe
  and hands safe subqueries node lists restricted to it.

Either way, peak relation size is bounded by the nodes reachable from ``l1``
(and co-reachable from ``l2``) rather than by the run.  ``strategy="auto"``
picks between the two with the cost model of :mod:`repro.core.optimizer`.

Planner/executor split
----------------------

This module is the *planner* side of the evaluation stack: everything here —
safe-subtree search, macro rewriting, (reversed) macro DFAs, cost and
direction memos — is pure, run-graph-independent where possible, cacheable
in the shared :class:`~repro.service.cache.IndexCache` and serializable by
:mod:`repro.store`.  The *physical* side — strategy/direction resolution
into operator trees and their serial or parallel execution — lives in
:mod:`repro.core.exec`; the ``evaluate_general_query*`` functions below are
thin compatibility wrappers over ``build_physical_plan`` + ``execute``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.automata.dfa import DFA, determinize
from repro.automata.nfa import nfa_from_regex
from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
    parse_regex,
    regex_alphabet,
    regex_to_string,
)
from repro.core.allpairs import AllPairsOptions
from repro.core.optimizer import (
    estimate_join_cost,
    estimate_label_all_pairs_cost,
)
from repro.core.query_index import QueryIndex, build_query_index
from repro.core.relations import NodePairs
from repro.core.safety import is_safe_query
from repro.obs import get_tracer
from repro.workflow.run import Run
from repro.workflow.spec import Specification

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.exec import ExecutorConfig

__all__ = [
    "DecompositionPlan",
    "plan_decomposition",
    "evaluate_general_query",
    "evaluate_general_query_iter",
    "label_routed_subtrees",
    "warm_frontier_dfa",
    "worth_label_evaluation",
]

#: Prefix of the synthetic DFA symbols standing for safe subqueries.  The
#: NUL byte cannot appear in a parsed tag, so macros never collide with real
#: edge tags.
_MACRO_PREFIX = "\x00safe:"

IndexProvider = Callable[[RegexNode], QueryIndex]


@dataclass
class DecompositionPlan:
    """The result of the top-down safe-subtree search for one query.

    Plans are reusable across evaluations (and cached per specification in
    the shared :class:`~repro.service.cache.IndexCache`), so they memoize
    the run-statistics-dependent cost routing of their safe subtrees and the
    macro DFAs of the frontier strategy.  Memo keys include coarse run
    statistics, so one plan instance serves many runs of the same grammar.

    One cached plan instance is shared by every thread the service fans a
    batch out to, so the memos live behind ``_memo_lock`` (an RLock: the
    reversed-DFA builder memoizes the forward DFA while holding it).  The
    lock is created in ``__post_init__`` rather than as a field so plan
    equality and JSON serialization (``plan_to_dict``) never see it.
    """

    spec: Specification
    root: RegexNode
    safe_subtrees: list[RegexNode] = field(default_factory=list)
    _routing_memo: dict[tuple[int, int, int | None, RegexNode], bool] = field(  # guarded-by: _memo_lock
        default_factory=dict, repr=False, compare=False
    )
    _dfa_memo: dict[str, DFA] = field(  # guarded-by: _memo_lock
        default_factory=dict, repr=False, compare=False
    )
    _direction_memo: dict[str, str] = field(  # guarded-by: _memo_lock
        default_factory=dict, repr=False, compare=False
    )
    _mutations: int = field(default=0, repr=False, compare=False)  # guarded-by: _memo_lock

    def __post_init__(self) -> None:
        self._memo_lock = threading.RLock()

    @property
    def mutations(self) -> int:
        """How many times the persistable memos (macro DFAs, direction
        decisions) have grown.  The cache layer compares this against the
        count it last persisted to decide whether the store copy is stale —
        direction decisions change no cost, so cost alone cannot tell."""
        with self._memo_lock:
            return self._mutations

    @property
    def is_fully_safe(self) -> bool:
        return len(self.safe_subtrees) == 1 and self.safe_subtrees[0] == self.root

    @property
    def has_safe_parts(self) -> bool:
        return bool(self.safe_subtrees)

    def estimate_prefers_labels(self, run: Run, node: RegexNode) -> bool:
        """Does the cost model route this safe subtree to the label engine
        for the given run?  Memoized per (run statistics, node)."""
        key = (run.node_count, run.edge_count, run.seed, node)
        with self._memo_lock:
            cached = self._routing_memo.get(key)
            if cached is None:
                # Plans can outlive many runs (they are cached per spec), so
                # the memo is reset instead of growing one entry per run.
                if len(self._routing_memo) >= 1024:
                    self._routing_memo.clear()
                cached = estimate_join_cost(run, node) > estimate_label_all_pairs_cost(
                    run.node_count
                )
                self._routing_memo[key] = cached
            return cached

    def cost(self) -> int:
        """The boolean-matrix cost this plan pins beyond its entry's base DFA:
        the summed ``state_count²`` of the memoized macro DFAs.  Grows as the
        frontier strategy memoizes routing variants, so cache cost accounting
        must be refreshed after evaluations (see ``IndexCache.sync``)."""
        with self._memo_lock:
            return sum(dfa.state_count**2 for dfa in self._dfa_memo.values())

    def memoized_dfa(self, key: str, build: Callable[[], DFA]) -> DFA:
        """The macro DFA for ``key``, building (under the memo lock) and
        memoizing it on first use.  The memo stays tiny — one entry per
        routing variant — so it is reset rather than evicted when full."""
        with self._memo_lock:
            cached = self._dfa_memo.get(key)
            if cached is None:
                if len(self._dfa_memo) >= 16:
                    self._dfa_memo.clear()
                cached = build()
                self._dfa_memo[key] = cached
                self._mutations += 1
            return cached

    def macro_dfas(self) -> dict[str, DFA]:
        """A snapshot of the memoized macro DFAs, keyed by the rendered
        macro-rewritten query (used by :mod:`repro.store` to persist them)."""
        with self._memo_lock:
            return dict(self._dfa_memo)

    def restore_macro_dfas(self, dfas: dict[str, DFA]) -> None:
        """Re-attach macro DFAs persisted by a previous process, so the first
        frontier evaluation after a warm restart skips the determinization."""
        with self._memo_lock:
            self._dfa_memo.update(dfas)

    def cached_direction(self, key: str) -> str | None:
        """The last frontier direction recorded for one workload shape
        (see :func:`repro.core.exec.plan.build_physical_plan`), or ``None``.
        A record, not a routing input: the executor layer re-derives the
        decision (O(1) arithmetic) on every plan."""
        with self._memo_lock:
            return self._direction_memo.get(key)

    def remember_direction(self, key: str, direction: str) -> None:
        """Record a used direction decision; bounded like the routing memo."""
        with self._memo_lock:
            if len(self._direction_memo) >= 1024:
                self._direction_memo.clear()
            self._direction_memo[key] = direction
            self._mutations += 1

    def direction_hints(self) -> dict[str, str]:
        """A snapshot of the recorded direction decisions, keyed by
        log-bucketed workload shape (persisted by :mod:`repro.store` as an
        inspectable routing history that survives restarts)."""
        with self._memo_lock:
            return dict(self._direction_memo)

    def restore_direction_hints(self, hints: dict[str, str]) -> None:
        """Re-attach direction decisions persisted by a previous process."""
        with self._memo_lock:
            self._direction_memo.update(hints)

    def describe(self) -> str:
        parts = ", ".join(regex_to_string(node) for node in self.safe_subtrees) or "(none)"
        return (
            f"query {regex_to_string(self.root)!r}: "
            f"{'safe' if self.is_fully_safe else 'unsafe'}; "
            f"maximal safe subqueries: {parts}"
        )


def plan_decomposition(
    spec: Specification,
    query: str | RegexNode,
    *,
    is_safe: Callable[[RegexNode], bool] | None = None,
) -> DecompositionPlan:
    """Find the maximal safe subtrees of a query (top-down traversal).

    ``is_safe`` overrides the per-subtree safety probe; the shared
    :class:`~repro.service.cache.IndexCache` passes its cached probe so the
    safety analyses (and, for safe subtrees, the query indexes built from
    them) land in the cache as a side effect of planning.
    """
    with get_tracer().span("planner.decompose") as span:
        root = parse_regex(query)
        plan = DecompositionPlan(spec=spec, root=root)
        probe = (
            is_safe if is_safe is not None else (lambda node: is_safe_query(spec, node))
        )
        seen: set[RegexNode] = set()

        def visit(node: RegexNode) -> None:
            if node in seen:
                return
            if probe(node):
                seen.add(node)
                plan.safe_subtrees.append(node)
                return
            for child in node.children():
                visit(child)

        visit(root)
        span.set("safe_subtrees", len(plan.safe_subtrees))
        span.set("fully_safe", plan.is_fully_safe)
        return plan


def worth_label_evaluation(node: RegexNode) -> bool:
    """Is a safe subquery worth routing to the labeling engine?

    Trivial relations — the empty string, a single tag, the wildcard and
    pure-wildcard repetitions (plain reachability) — are exactly as cheap to
    materialize directly from the run, so sending them through the all-pairs
    label engine only adds overhead.  Anything larger that mentions at least
    one concrete tag benefits from the constant-time decode because its
    join-based evaluation would materialize intermediate results.
    """
    if isinstance(node, (Epsilon, Symbol, AnySymbol)):
        return False
    if isinstance(node, (Star, Plus)) and isinstance(node.child, AnySymbol):
        return False
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Symbol):
            return True
        stack.extend(current.children())
    return False


def label_routed_subtrees(
    plan: DecompositionPlan, run: Run, *, cost_based_routing: bool = True
) -> list[RegexNode]:
    """The safe subtrees of the plan that the evaluator answers with the
    labeling engine for the given run (the rest stay in the join/frontier
    remainder).  Used by the benchmarks to report routing decisions."""
    return [
        node
        for node in plan.safe_subtrees
        if _should_use_labels(plan, run, node, cost_based_routing)
    ]


def _should_use_labels(
    plan: DecompositionPlan, run: Run, node: RegexNode, cost_based_routing: bool
) -> bool:
    if not worth_label_evaluation(node):
        return False
    if not cost_based_routing:
        return True
    return plan.estimate_prefers_labels(run, node)


# ---------------------------------------------------------------------------
# Frontier strategy: macro-DFA product search with restriction pushdown
# ---------------------------------------------------------------------------


def _substitute_macros(
    root: RegexNode, routed: Sequence[RegexNode]
) -> tuple[RegexNode, dict[str, RegexNode]]:
    """Replace every occurrence of the routed safe subtrees with a fresh
    macro :class:`Symbol`; returns the rewritten tree and ``tag → subtree``."""
    tags = {node: f"{_MACRO_PREFIX}{position}" for position, node in enumerate(routed)}

    def rewrite(node: RegexNode) -> RegexNode:
        tag = tags.get(node)
        if tag is not None:
            return Symbol(tag)
        if isinstance(node, Concat):
            return Concat(tuple(rewrite(part) for part in node.parts))
        if isinstance(node, Union):
            return Union(tuple(rewrite(part) for part in node.parts))
        if isinstance(node, Star):
            return Star(rewrite(node.child))
        if isinstance(node, Plus):
            return Plus(rewrite(node.child))
        return node

    return rewrite(root), {tag: node for node, tag in tags.items()}


def _macro_dfa(plan: DecompositionPlan, rewritten: RegexNode, macro_tags: set[str]) -> DFA:
    """The minimal DFA of the macro-rewritten query, memoized on the plan.

    Wildcards expand only over the real tags (the specification's edge tags
    plus the tags written in the query), never over the macro symbols.
    """
    def build() -> DFA:
        real_tags = set(plan.spec.tags) | {
            tag for tag in regex_alphabet(plan.root) if not tag.startswith(_MACRO_PREFIX)
        }
        dfa = determinize(
            nfa_from_regex(rewritten),
            real_tags | macro_tags,
            wildcard_tags=real_tags,
        )
        from repro.automata.minimize import minimize_dfa

        return minimize_dfa(dfa)

    return plan.memoized_dfa(regex_to_string(rewritten), build)


#: Memo-key prefix of *reversed* macro DFAs (backward frontier search).  The
#: NUL byte keeps it disjoint from any rendered query text, and distinct from
#: the macro-symbol prefix, so forward and reversed entries share one memo —
#: and one store payload — without colliding.
_REVERSED_PREFIX = "\x00rev:"


def _reversed_macro_dfa(
    plan: DecompositionPlan, rewritten: RegexNode, macro_tags: set[str]
) -> DFA:
    """The reversed macro DFA (the automaton the backward frontier search
    drives from the requested targets), memoized on the plan alongside the
    forward one so it persists with the entry."""
    return plan.memoized_dfa(
        _REVERSED_PREFIX + regex_to_string(rewritten),
        lambda: _macro_dfa(plan, rewritten, macro_tags).reversed(),
    )


def warm_frontier_dfa(
    plan: DecompositionPlan,
    run: Run,
    *,
    cost_based_routing: bool = True,
    direction: str = "forward",
) -> DFA:
    """Build (and memoize on the plan) the macro DFA the frontier strategy
    will use for this run's routing decision, without evaluating anything.

    Called by warm-up paths (``QueryService.warm``, ``repro store warm``) so
    that the DFA lands in the plan's memo — and, through the cache's store
    write-back, on disk — before the first real request arrives.
    ``direction="backward"`` warms the reversed automaton of the backward
    frontier search instead.
    """
    routed = label_routed_subtrees(plan, run, cost_based_routing=cost_based_routing)
    rewritten, macro_map = (
        _substitute_macros(plan.root, routed) if routed else (plan.root, {})
    )
    if direction == "backward":
        return _reversed_macro_dfa(plan, rewritten, set(macro_map))
    return _macro_dfa(plan, rewritten, set(macro_map))


# ---------------------------------------------------------------------------
# Public evaluators (thin wrappers over the planner/executor split)
# ---------------------------------------------------------------------------


def _prepare(
    run: Run,
    query: str | RegexNode,
    plan: DecompositionPlan | None,
    index_provider: IndexProvider | None,
) -> tuple[DecompositionPlan, IndexProvider]:
    spec = run.spec
    if plan is None:
        plan = plan_decomposition(spec, parse_regex(query))
    indexes = (
        index_provider
        if index_provider is not None
        else (lambda node: build_query_index(spec, node))
    )
    return plan, indexes


def evaluate_general_query(
    run: Run,
    query: str | RegexNode,
    l1: Sequence[str] | None = None,
    l2: Sequence[str] | None = None,
    *,
    plan: DecompositionPlan | None = None,
    use_reachability_filter: bool = True,
    vectorized: bool = True,
    cost_based_routing: bool = True,
    index_provider: IndexProvider | None = None,
    strategy: str = "auto",
    push_restrictions: bool = True,
    direction: str = "auto",
    executor: "ExecutorConfig | None" = None,
) -> NodePairs:
    """Answer a general all-pairs query, safe or not.

    ``l1`` and ``l2`` default to all run nodes and are pushed down into the
    evaluation (see the module notes); ids absent from the run are ignored,
    matching the semantics of restricting a whole-run result.  A precomputed
    ``plan`` (and therefore its safety checks) may be supplied so benchmarks
    can separate planning overhead from evaluation time; ``index_provider``
    lets a shared cache supply the safe subqueries'
    :class:`~repro.core.query_index.QueryIndex` objects.  ``vectorized``
    toggles the group-at-a-time state-vector decode of safe (sub)queries
    (see :class:`~repro.core.allpairs.AllPairsOptions`).

    ``strategy`` selects how the unsafe remainder is evaluated: ``"frontier"``
    (per-source product-DFA search), ``"join"`` (bottom-up relational
    evaluation), or ``"auto"`` (cost-based choice).  ``direction`` orients
    the frontier strategy (``"forward"`` from the sources, ``"backward"``
    from the targets over the reversed macro DFA, or ``"auto"`` to let the
    cost model compare seed counts); ``executor`` tunes the physical
    execution further (parallel fan-out, merge order — see
    :class:`~repro.core.exec.ExecutorConfig`).  ``push_restrictions=False``
    disables the ``allowed``-universe pruning and restores the pre-pushdown
    behaviour of evaluating over the whole run and restricting afterwards
    (kept as the benchmarks' reference point).

    With ``cost_based_routing`` (the default) a maximal safe subquery is only
    sent to the labeling engine when the simple cost model of
    :mod:`repro.core.optimizer` predicts that its join-based evaluation would
    be more expensive — the paper's future-work remark about a cost-based
    optimizer, which matters because routing *highly selective* safe
    subqueries to an all-pairs label scan would be wasted work.  Disable it
    to always use the labeling engine for safe subqueries (the paper's plain
    heuristic).
    """
    from repro.core.exec import build_physical_plan, execute

    plan, indexes = _prepare(run, query, plan, index_provider)
    options = AllPairsOptions(
        use_reachability_filter=use_reachability_filter, vectorized=vectorized
    )
    physical = build_physical_plan(
        run,
        plan,
        l1,
        l2,
        options=options,
        indexes=indexes,
        strategy=strategy,
        direction=direction,
        executor=executor,
        push_restrictions=push_restrictions,
        cost_based_routing=cost_based_routing,
    )
    return execute(physical)


def evaluate_general_query_iter(
    run: Run,
    query: str | RegexNode,
    l1: Sequence[str] | None = None,
    l2: Sequence[str] | None = None,
    *,
    plan: DecompositionPlan | None = None,
    use_reachability_filter: bool = True,
    vectorized: bool = True,
    cost_based_routing: bool = True,
    index_provider: IndexProvider | None = None,
    push_restrictions: bool = True,
    direction: str = "auto",
    executor: "ExecutorConfig | None" = None,
) -> Iterator[tuple[str, str]]:
    """Stream the answers of a general all-pairs query, safe or not.

    Safe queries stream straight out of the group-at-a-time evaluator.
    Unsafe queries stream through the frontier strategy: one pruned
    product-DFA search per seed — per source forward, per target backward —
    so memory stays bounded by the nodes reachable from ``l1`` (and
    co-reachable from ``l2``, times the DFA size) plus the label-decoded
    relations of the routed safe subqueries — never by the result set.
    ``executor`` enables the parallel per-seed executor (fan-out across a
    worker pool with ordered or unordered streaming merge).  Each matching
    pair is yielded exactly once.  Planning and safety analysis run eagerly,
    before the iterator is returned.
    """
    from repro.core.exec import build_physical_plan, execute_iter

    plan, indexes = _prepare(run, query, plan, index_provider)
    options = AllPairsOptions(
        use_reachability_filter=use_reachability_filter, vectorized=vectorized
    )
    physical = build_physical_plan(
        run,
        plan,
        l1,
        l2,
        options=options,
        indexes=indexes,
        strategy="frontier" if not plan.is_fully_safe else "auto",
        direction=direction,
        executor=executor,
        push_restrictions=push_restrictions,
        cost_based_routing=cost_based_routing,
    )
    return execute_iter(physical)
