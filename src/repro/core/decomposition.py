"""General (possibly unsafe) all-pairs queries (Section IV-B, "Our approach").

A general query may not be safe for the specification, so the constant-time
label decode cannot be applied to it as a whole.  The paper's approach:

1. represent the query as a parse tree,
2. walking top-down, find the *maximal safe subtrees* — subexpressions that
   are safe for the specification (checked with the polynomial-time safety
   test of Section III-C),
3. evaluate each maximal safe subtree with the all-pairs labeling engine of
   Algorithm 2, and
4. evaluate the remaining (unsafe) structure bottom-up with relational joins
   (Option G1), treating the safe subtrees' results as already-materialized
   relations.

When the whole query is safe the decomposition degenerates to a single call
to the safe engine.  Finding the *best* equivalent rewriting of the query
with the largest safe parts is left as future work by the paper; like the
paper we use the simple top-down heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.automata.regex import (
    AnySymbol,
    Epsilon,
    Plus,
    RegexNode,
    Star,
    Symbol,
    parse_regex,
    regex_to_string,
)
from repro.core.allpairs import AllPairsOptions, all_pairs_safe_query
from repro.core.query_index import build_query_index
from repro.core.relations import NodePairs, evaluate_regex_relation, restrict
from repro.core.safety import is_safe_query
from repro.workflow.run import Run
from repro.workflow.spec import Specification

__all__ = ["DecompositionPlan", "plan_decomposition", "evaluate_general_query"]


@dataclass
class DecompositionPlan:
    """The result of the top-down safe-subtree search for one query."""

    spec: Specification
    root: RegexNode
    safe_subtrees: list[RegexNode] = field(default_factory=list)

    @property
    def is_fully_safe(self) -> bool:
        return len(self.safe_subtrees) == 1 and self.safe_subtrees[0] == self.root

    @property
    def has_safe_parts(self) -> bool:
        return bool(self.safe_subtrees)

    def describe(self) -> str:
        parts = ", ".join(regex_to_string(node) for node in self.safe_subtrees) or "(none)"
        return (
            f"query {regex_to_string(self.root)!r}: "
            f"{'safe' if self.is_fully_safe else 'unsafe'}; "
            f"maximal safe subqueries: {parts}"
        )


def plan_decomposition(spec: Specification, query: str | RegexNode) -> DecompositionPlan:
    """Find the maximal safe subtrees of a query (top-down traversal)."""
    root = parse_regex(query)
    plan = DecompositionPlan(spec=spec, root=root)
    seen: set[RegexNode] = set()

    def visit(node: RegexNode) -> None:
        if node in seen:
            return
        if is_safe_query(spec, node):
            seen.add(node)
            plan.safe_subtrees.append(node)
            return
        for child in node.children():
            visit(child)

    visit(root)
    return plan


def worth_label_evaluation(node: RegexNode) -> bool:
    """Is a safe subquery worth routing to the labeling engine?

    Trivial relations — the empty string, a single tag, the wildcard and
    pure-wildcard repetitions (plain reachability) — are exactly as cheap to
    materialize directly from the run, so sending them through the all-pairs
    label engine only adds overhead.  Anything larger that mentions at least
    one concrete tag benefits from the constant-time decode because its
    join-based evaluation would materialize intermediate results.
    """
    if isinstance(node, (Epsilon, Symbol, AnySymbol)):
        return False
    if isinstance(node, (Star, Plus)) and isinstance(node.child, AnySymbol):
        return False
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Symbol):
            return True
        stack.extend(current.children())
    return False


def evaluate_general_query(
    run: Run,
    query: str | RegexNode,
    l1: Sequence[str] | None = None,
    l2: Sequence[str] | None = None,
    *,
    plan: DecompositionPlan | None = None,
    use_reachability_filter: bool = True,
    vectorized: bool = True,
    cost_based_routing: bool = True,
) -> NodePairs:
    """Answer a general all-pairs query, safe or not.

    ``l1`` and ``l2`` default to all run nodes.  A precomputed ``plan`` (and
    therefore its safety checks) may be supplied so benchmarks can separate
    planning overhead from evaluation time.  ``vectorized`` toggles the
    group-at-a-time state-vector decode of safe (sub)queries (see
    :class:`~repro.core.allpairs.AllPairsOptions`).

    With ``cost_based_routing`` (the default) a maximal safe subquery is only
    sent to the labeling engine when the simple cost model of
    :mod:`repro.core.optimizer` predicts that its join-based evaluation would
    be more expensive — the paper's future-work remark about a cost-based
    optimizer, which matters because routing *highly selective* safe
    subqueries to an all-pairs label scan would be wasted work.  Disable it
    to always use the labeling engine for safe subqueries (the paper's plain
    heuristic).
    """
    spec = run.spec
    root = parse_regex(query)
    if plan is None:
        plan = plan_decomposition(spec, root)
    options = AllPairsOptions(
        use_reachability_filter=use_reachability_filter, vectorized=vectorized
    )

    if plan.is_fully_safe:
        index = build_query_index(spec, root)
        universe1 = list(l1) if l1 is not None else list(run.node_ids())
        universe2 = list(l2) if l2 is not None else list(run.node_ids())
        return all_pairs_safe_query(run, universe1, universe2, index, options)

    safe_nodes = set(plan.safe_subtrees)
    all_nodes = list(run.node_ids())

    def should_use_labels(node: RegexNode) -> bool:
        if not worth_label_evaluation(node):
            return False
        if not cost_based_routing:
            return True
        from repro.core.optimizer import estimate_join_cost, estimate_label_all_pairs_cost

        return estimate_join_cost(run, node) > estimate_label_all_pairs_cost(run.node_count)

    def subquery_evaluator(node: RegexNode) -> NodePairs | None:
        if node not in safe_nodes or not should_use_labels(node):
            return None
        index = build_query_index(spec, node)
        return all_pairs_safe_query(run, all_nodes, all_nodes, index, options)

    relation = evaluate_regex_relation(run, root, subquery_evaluator=subquery_evaluator)
    return restrict(relation, l1, l2)
