"""Per-query precomputation for label decoding.

Everything the pairwise decoder (Algorithm 1) needs that depends only on the
specification and the query is computed once here and reused across node
pairs.  For a safe query with minimal DFA ``M`` (state count ``|Q|``) the
index stores boolean ``|Q| x |Q|`` matrices describing how DFA states move
along paths *inside the specification*, never inside the run:

``cross(k, i, j)``
    transitions along body paths of production ``k`` from the *output* of
    position ``i`` to the *input* of position ``j`` (composite positions are
    traversed through their λ matrix — safety guarantees the λ is the same
    whichever execution the run chose);
``to_sink(k, i)``
    from the output of position ``i`` to the output of the whole expansion of
    production ``k`` (the paper's "exit" direction);
``from_source(k, i)``
    from the input of the expansion to the input of position ``i``;
``descend_steps / ascend_steps`` (per recursion cycle)
    the one-level entry/exit matrices of recursion chains; long chains are
    collapsed with boolean matrix powers so decoding stays independent of the
    run size even for runs that unfold a cycle thousands of times.

The index also keeps the coarse position-to-position reachability of every
production body, which is what plain reachability decoding and Algorithm 2's
structural joins use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.boolean_matrix import BooleanMatrix
from repro.automata.dfa import DFA
from repro.automata.regex import RegexNode, parse_regex, regex_to_string
from repro.core.safety import analyze_safety, query_dfa
from repro.errors import UnsafeQueryError
from repro.workflow.production_graph import Cycle
from repro.workflow.spec import Specification

__all__ = ["ProductionTables", "QueryIndex", "build_query_index"]

#: The per-production matrix tables of an index, in the order
#: ``(cross, to_sink, from_source)`` (see :meth:`QueryIndex.production_tables`).
ProductionTables = tuple[
    list[dict[tuple[int, int], BooleanMatrix]],
    list[list[BooleanMatrix]],
    list[list[BooleanMatrix]],
]


@dataclass(frozen=True)
class _CycleTables:
    """Per-cycle chain matrices, indexed by cycle offset."""

    length: int
    descend_steps: tuple[BooleanMatrix, ...]
    ascend_steps: tuple[BooleanMatrix, ...]


class QueryIndex:
    """All run-independent state needed to answer one safe query.

    Build instances with :func:`build_query_index`, which also performs the
    safety check; constructing an index for an unsafe query raises
    :class:`~repro.errors.UnsafeQueryError` because λ matrices are only well
    defined for safe queries.
    """

    def __init__(
        self,
        spec: Specification,
        dfa: DFA,
        lambdas: dict[str, BooleanMatrix],
        query_text: str,
        *,
        tables: "ProductionTables | None" = None,
    ) -> None:
        self.spec = spec
        self.dfa = dfa
        self.lambdas = lambdas
        self.query_text = query_text
        self.state_count = dfa.state_count
        self._identity = BooleanMatrix.identity(self.state_count)
        self._zero = BooleanMatrix.zero(self.state_count)
        self._start_mask = 1 << dfa.start
        self._accepting_mask = dfa.accepting_mask()
        self._tag_matrices = {tag: dfa.transition_matrix(tag) for tag in spec.tags}
        self._cross: list[dict[tuple[int, int], BooleanMatrix]] = []
        self._to_sink: list[list[BooleanMatrix]] = []
        self._from_source: list[list[BooleanMatrix]] = []
        if tables is None:
            self._build_production_tables()
        else:
            # Restoring from a persistent store: the production tables were
            # computed (and serialized) by a previous process, so the matrix
            # sweep above is skipped entirely — the main saving of a warm
            # restart besides the DFA/safety work itself.
            cross, to_sink, from_source = tables
            self._cross = [dict(table) for table in cross]
            self._to_sink = [list(row) for row in to_sink]
            self._from_source = [list(row) for row in from_source]
        self._cycles = tuple(
            self._build_cycle_tables(cycle) for cycle in spec.production_graph.cycles
        )
        # Memoized powers of full-cycle products (used for very long chains).
        self._chain_cache: dict[tuple[int, int, int, int], BooleanMatrix] = {}

    # -- construction ------------------------------------------------------------

    def _node_matrix(self, production_index: int, position: int) -> BooleanMatrix:
        module = self.spec.production(production_index).body.module_at(position)
        return self.lambdas[module]

    def _build_production_tables(self) -> None:
        for index, production in enumerate(self.spec.productions):
            body = production.body
            cross: dict[tuple[int, int], BooleanMatrix] = {}
            order = body.topological_order
            for start in range(len(body)):
                # reach[j] = transitions from out(start) to in(j).
                reach: dict[int, BooleanMatrix] = {}
                for edge in body.edges:
                    if edge.source != start:
                        continue
                    matrix = self._tag_matrices[edge.tag]
                    reach[edge.target] = reach.get(edge.target, self._zero) | matrix
                for position in order:
                    if position == start or position not in reach:
                        continue
                    through = reach[position] @ self._node_matrix(index, position)
                    for edge in body.edges:
                        if edge.source != position:
                            continue
                        contribution = through @ self._tag_matrices[edge.tag]
                        reach[edge.target] = (
                            reach.get(edge.target, self._zero) | contribution
                        )
                for target, matrix in reach.items():
                    if not matrix.is_zero():
                        cross[(start, target)] = matrix
            self._cross.append(cross)
            sink, source = body.sink, body.source
            self._to_sink.append(
                [
                    self._identity
                    if position == sink
                    else self.cross(index, position, sink) @ self._node_matrix(index, sink)
                    for position in range(len(body))
                ]
            )
            self._from_source.append(
                [
                    self._identity
                    if position == source
                    else self._node_matrix(index, source) @ self.cross(index, source, position)
                    for position in range(len(body))
                ]
            )

    def _build_cycle_tables(self, cycle: "Cycle") -> _CycleTables:
        descend = []
        ascend = []
        for offset in range(len(cycle)):
            production_index, recursive_position = cycle.step(offset)
            descend.append(self.from_source(production_index, recursive_position))
            ascend.append(self.to_sink(production_index, recursive_position))
        return _CycleTables(
            length=len(cycle),
            descend_steps=tuple(descend),
            ascend_steps=tuple(ascend),
        )

    # -- basic lookups -------------------------------------------------------------

    @property
    def identity(self) -> BooleanMatrix:
        return self._identity

    @property
    def zero(self) -> BooleanMatrix:
        return self._zero

    @property
    def start_mask(self) -> int:
        """The DFA start state as a one-bit state vector."""
        return self._start_mask

    @property
    def accepting_mask(self) -> int:
        """The DFA accepting states as a state-vector bitmask."""
        return self._accepting_mask

    def accepts(self, matrix: BooleanMatrix) -> bool:
        """Does the relation contain a transition from the DFA start state to
        an accepting state?"""
        return bool(matrix.row_mask(self.dfa.start) & self._accepting_mask)

    def tag_matrix(self, tag: str) -> BooleanMatrix:
        matrix = self._tag_matrices.get(tag)
        if matrix is None:
            matrix = self.dfa.transition_matrix(tag)
            self._tag_matrices[tag] = matrix
        return matrix

    def cross(self, production_index: int, source: int, target: int) -> BooleanMatrix:
        """Transitions from the output of body position ``source`` to the
        input of body position ``target`` (zero when unreachable)."""
        return self._cross[production_index].get((source, target), self._zero)

    def to_sink(self, production_index: int, position: int) -> BooleanMatrix:
        return self._to_sink[production_index][position]

    def from_source(self, production_index: int, position: int) -> BooleanMatrix:
        return self._from_source[production_index][position]

    def body_reaches(self, production_index: int, source: int, target: int) -> bool:
        """Coarse (tag-agnostic) reachability between two body positions."""
        return self.spec.production(production_index).body.reaches(source, target)

    def production_tables(self) -> "ProductionTables":
        """The per-production matrix tables ``(cross, to_sink, from_source)``.

        This is everything the construction sweep computes beyond the DFA and
        λ matrices; :mod:`repro.store` serializes it so a restored index (the
        ``tables`` constructor argument) skips the sweep.  The returned
        containers are the live internals — treat them as read-only.
        """
        return self._cross, self._to_sink, self._from_source

    # -- recursion chains ------------------------------------------------------------

    def cycle(self, cycle_index: int) -> "Cycle":
        return self.spec.production_graph.cycles[cycle_index]

    def cycle_production(self, cycle_index: int, start: int, ordinal: int) -> tuple[int, int]:
        """The cycle production and recursive position of the chain member at
        the given ordinal (for a chain entered at cycle offset ``start``)."""
        cycle = self.cycle(cycle_index)
        return cycle.step(cycle.chain_offset(start, ordinal))

    def _chain_product(
        self,
        steps: tuple[BooleanMatrix, ...],
        start_offset: int,
        count: int,
        direction: int,
    ) -> BooleanMatrix:
        """Ordered product of ``count`` chain-step matrices.

        The sequence visits cycle offsets ``start_offset, start_offset +
        direction, ...`` (mod cycle length).  Long products are collapsed as
        ``block^full @ remainder`` where ``block`` is one full trip around the
        cycle, so the cost is logarithmic in ``count``.
        """
        if count <= 0:
            return self._identity
        length = len(steps)
        key = (id(steps), start_offset % length, count, direction)
        cached = self._chain_cache.get(key)
        if cached is not None:
            return cached
        block = [steps[(start_offset + direction * r) % length] for r in range(length)]
        if count <= 2 * length:
            result = self._identity
            for r in range(count):
                result = result @ block[r % length]
        else:
            full, remainder = divmod(count, length)
            block_product = self._identity
            for matrix in block:
                block_product = block_product @ matrix
            result = block_product.power(full)
            for r in range(remainder):
                result = result @ block[r]
        self._chain_cache[key] = result
        return result

    def descend_chain(
        self, cycle_index: int, start: int, first_ordinal: int, last_ordinal: int
    ) -> BooleanMatrix:
        """Transitions from the input of chain child ``first_ordinal`` to the
        input of chain child ``last_ordinal + 1`` (descending through the
        nested recursion).  Empty ranges give the identity."""
        count = last_ordinal - first_ordinal + 1
        if count <= 0:
            return self._identity
        tables = self._cycles[cycle_index]
        cycle = self.cycle(cycle_index)
        offset = cycle.chain_offset(start, first_ordinal)
        return self._chain_product(tables.descend_steps, offset, count, direction=1)

    def ascend_chain(
        self, cycle_index: int, start: int, first_ordinal: int, last_ordinal: int
    ) -> BooleanMatrix:
        """Transitions from the output of chain child ``first_ordinal + 1`` up
        to the output of chain child ``last_ordinal`` (climbing out of the
        nested recursion); ``first_ordinal >= last_ordinal``.  Empty ranges
        give the identity."""
        count = first_ordinal - last_ordinal + 1
        if count <= 0:
            return self._identity
        tables = self._cycles[cycle_index]
        cycle = self.cycle(cycle_index)
        offset = cycle.chain_offset(start, first_ordinal)
        return self._chain_product(tables.ascend_steps, offset, count, direction=-1)

    # -- reporting -------------------------------------------------------------------

    def describe(self) -> str:
        return (
            f"QueryIndex(query={self.query_text!r}, states={self.state_count}, "
            f"productions={len(self.spec.productions)}, cycles={len(self._cycles)})"
        )


def build_query_index(spec: Specification, query: str | RegexNode) -> QueryIndex:
    """Check safety and build the :class:`QueryIndex` for a safe query.

    Raises :class:`~repro.errors.UnsafeQueryError` when the query is not safe
    with respect to the specification (use the decomposition engine of
    :mod:`repro.core.decomposition` for those).
    """
    node = parse_regex(query)
    dfa = query_dfa(spec, node)
    report = analyze_safety(spec, dfa)
    if not report.is_safe:
        raise UnsafeQueryError(
            f"query {regex_to_string(node)!r} is not safe for specification "
            f"{spec.name!r}; {len(report.violations)} inconsistent module(s): "
            f"{sorted({violation.module for violation in report.violations})}"
        )
    return QueryIndex(
        spec=spec, dfa=report.dfa, lambdas=report.lambdas, query_text=regex_to_string(node)
    )
