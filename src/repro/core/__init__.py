"""The paper's primary contribution: regular path queries via labeling.

This package contains the query-time machinery of the paper:

* :mod:`repro.core.safety` — the *safe query* property (Section III-C): λ
  path-transition matrices per module, consistency across all executions,
  polynomial-time checking on the minimal DFA.
* :mod:`repro.core.intersection` — the query-intersected, fine-grained
  specification ``G^R`` (Section III-B) and its run-level counterpart (used
  for validation of Lemma 3.1).
* :mod:`repro.core.query_index` — all per-query precomputation needed to
  decode labels: per-production crossing/entry/exit transition matrices and
  recursion-chain powers.  Everything here depends only on the specification
  and the query, never on the run.
* :mod:`repro.core.pairwise` — Algorithm 1: answer ``u —R→ v`` from the two
  node labels in time independent of the run size.
* :mod:`repro.core.allpairs` — Algorithm 2: all-pairs safe queries over label
  tries, with nested-loop (S1), reachability-filtered (S2 / optRPL) and
  group-at-a-time vectorized (optRPL-G, streaming) strategies.
* :mod:`repro.core.decomposition` — general (possibly unsafe) queries: find
  the largest safe subqueries of the parse tree (the *planner* side:
  decomposition, macro DFAs and their reversals, cost/direction memos).
* :mod:`repro.core.exec` — the *executor* side: physical plans
  (frontier/join/label-decode/restrict operators), direction resolution, and
  serial or parallel execution with streaming merge.
* :mod:`repro.core.optimizer` — a simple cost model choosing between the
  labeling-based engine and the baselines (the paper's future-work item).
* :mod:`repro.core.engine` — the :class:`ProvenanceQueryEngine` facade tying
  everything together.
"""

from repro.core.allpairs import (
    AllPairsOptions,
    all_pairs_iter,
    all_pairs_reachability,
    all_pairs_safe_query,
)
from repro.core.decomposition import (
    evaluate_general_query,
    evaluate_general_query_iter,
)
from repro.core.engine import ProvenanceQueryEngine
from repro.core.exec import (
    ExecutorConfig,
    PhysicalPlan,
    WorkerBudget,
    build_physical_plan,
)
from repro.core.intersection import intersect_specification
from repro.core.pairwise import answer_pairwise_query, pairwise_reach_matrix
from repro.core.query_index import QueryIndex, build_query_index
from repro.core.safety import SafetyReport, analyze_safety, is_safe_query

__all__ = [
    "AllPairsOptions",
    "ExecutorConfig",
    "PhysicalPlan",
    "ProvenanceQueryEngine",
    "QueryIndex",
    "SafetyReport",
    "WorkerBudget",
    "all_pairs_iter",
    "all_pairs_reachability",
    "all_pairs_safe_query",
    "analyze_safety",
    "answer_pairwise_query",
    "build_physical_plan",
    "build_query_index",
    "evaluate_general_query",
    "evaluate_general_query_iter",
    "intersect_specification",
    "is_safe_query",
    "pairwise_reach_matrix",
]
