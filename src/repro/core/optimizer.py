"""A simple cost model for choosing a query strategy.

The paper's conclusion lists as future work "building a cost model to predict
the intermediate result size so as to optimize the query process": its
experiments show that the index-based baseline G3 wins on *highly selective*
IFQs while the labeling-based engine wins on lowly selective queries and
Kleene stars.  This module implements that missing piece as a small,
statistics-driven selector:

* the per-tag selectivities come from the edge-tag inverted index that
  baseline G3 needs anyway;
* the cost of the labeling engine is modeled as (number of candidate pairs) ×
  (decode cost), with the candidate count taken from the input list sizes;
* the cost of G3 is modeled as the size of the intermediate join chain implied
  by the IFQ's tag selectivities (the quantity the paper identifies as the
  baseline's failure mode);
* Kleene-star-shaped queries route to the labeling engine, mirroring
  Fig. 13g/h.

The estimates are deliberately coarse — the goal is to reproduce the *shape*
of the paper's conclusion (who should win where), not to be a production
optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
    parse_regex,
    regex_size,
)
from repro.core.safety import is_safe_query
from repro.datasets.index import EdgeTagIndex
from repro.obs import get_tracer
from repro.workflow.run import Run
from repro.workflow.spec import Specification

__all__ = [
    "StrategyEstimate",
    "CostModel",
    "ifq_tags",
    "estimate_relation_size",
    "estimate_join_cost",
    "estimate_label_all_pairs_cost",
    "estimate_frontier_search_cost",
]

#: Relative cost of one label decode versus touching one indexed pair.
DECODE_COST = 4.0

#: Cost of one regular-path-label decode relative to one join/probe operation
#: of the relational evaluator.  In the paper's Java implementation the two
#: are comparable; in pure Python the matrix decode is noticeably heavier, so
#: the cost-based router is deliberately conservative about preferring labels.
LABEL_DECODE_VS_JOIN = 30.0

#: Fraction of an all-pairs candidate space that is typically reachable in a
#: workflow DAG (used to size the label engine's candidate set).
REACHABLE_FRACTION = 0.35


def ifq_tags(node: RegexNode) -> list[str] | None:
    """If the query has the IFQ shape ``_* a1 _* a2 _* ... ak _*``, return the
    tag sequence ``[a1, ..., ak]``; otherwise return ``None``.

    The shape is strict (as in the paper's Option G3): the expression starts
    and ends with ``_*`` and consecutive tags are separated by ``_*`` — plain
    concatenations such as ``a b`` are *not* IFQs because they constrain the
    matched edges to be adjacent.
    """

    def is_any_star(part: RegexNode) -> bool:
        return isinstance(part, Star) and isinstance(part.child, AnySymbol)

    if is_any_star(node):
        return []
    if not isinstance(node, Concat):
        return None
    parts = node.parts
    if len(parts) % 2 == 0 or not is_any_star(parts[0]) or not is_any_star(parts[-1]):
        return None
    tags: list[str] = []
    for position, part in enumerate(parts):
        if position % 2 == 0:
            if not is_any_star(part):
                return None
        else:
            if not isinstance(part, Symbol):
                return None
            tags.append(part.tag)
    return tags


def _contains_repetition(node: RegexNode) -> bool:
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (Star, Plus)) and not isinstance(current.child, AnySymbol):
            return True
        stack.extend(current.children())
    return False


def estimate_relation_size(run: Run, node: RegexNode) -> float:
    """Rough estimate of the number of node pairs a subexpression relates.

    Uses only the run's per-tag edge counts (the same statistics the inverted
    index stores); all estimates are capped at ``|V|^2``.
    """
    node_count = max(1, run.node_count)
    cap = float(node_count) ** 2

    def visit(current: RegexNode) -> float:
        if isinstance(current, Epsilon):
            return float(node_count)
        if isinstance(current, Symbol):
            return float(len(run.edges_by_tag.get(current.tag, ())))
        if isinstance(current, AnySymbol):
            return float(run.edge_count)
        if isinstance(current, Union):
            return min(cap, sum(visit(part) for part in current.parts))
        if isinstance(current, Concat):
            size = None
            for part in current.parts:
                part_size = visit(part)
                size = part_size if size is None else min(cap, size * part_size / node_count)
            return size if size is not None else float(node_count)
        if isinstance(current, (Star, Plus)):
            inner = visit(current.child)
            # A repetition can connect anything its child chains together;
            # the closure of a chain of length L has ~L^2/2 pairs.
            closure = min(cap, inner * inner / 2 + inner)
            if isinstance(current, Star):
                closure = min(cap, closure + node_count)
            return closure
        raise TypeError(f"unknown regex node {current!r}")

    return visit(node)


def estimate_join_cost(run: Run, node: RegexNode) -> float:
    """Rough estimate of the work of evaluating a subexpression with joins
    (Option G1): intermediate relation sizes plus join probe counts."""
    node_count = max(1, run.node_count)

    def visit(current: RegexNode) -> tuple[float, float]:
        """Return ``(cost, size)`` for the subexpression."""
        if isinstance(current, (Epsilon, Symbol, AnySymbol)):
            size = estimate_relation_size(run, current)
            return size, size
        if isinstance(current, Union):
            costs, sizes = zip(*(visit(part) for part in current.parts))
            return sum(costs) + sum(sizes), min(float(node_count) ** 2, sum(sizes))
        if isinstance(current, Concat):
            total = 0.0
            size = None
            for part in current.parts:
                part_cost, part_size = visit(part)
                total += part_cost
                if size is None:
                    size = part_size
                else:
                    total += size * part_size / node_count
                    size = min(float(node_count) ** 2, size * part_size / node_count)
            return total, size if size is not None else float(node_count)
        if isinstance(current, (Star, Plus)):
            child_cost, child_size = visit(current.child)
            closure_size = estimate_relation_size(run, current)
            # Semi-naive closure touches every derived pair at least once and
            # probes the child relation for each frontier pair.
            closure_cost = child_cost + closure_size + child_size
            return closure_cost, closure_size
        raise TypeError(f"unknown regex node {current!r}")

    cost, _ = visit(node)
    return cost


def estimate_frontier_search_cost(
    run: Run, node: RegexNode, source_count: int, allowed_count: int | None = None
) -> float:
    """Rough estimate of the work of answering a general query with one
    product-DFA frontier search per source
    (:func:`repro.core.relations.product_frontier_targets`).

    Each search visits at most every *reachable* run edge once per DFA state;
    the DFA state count is approximated by the query's syntax-tree size.
    ``allowed_count`` is the size of the forward/backward pruned universe the
    search is actually confined to (the cheap reachable-set estimate the
    decomposition engine computes anyway); when given, the per-source bound
    shrinks proportionally — without it the estimate falls back to the whole
    run, which stays deliberately pessimistic so unrestricted queries (whose
    relations the pruning cannot shrink) keep routing to the join evaluator.
    """
    states = max(1.0, float(regex_size(node)))
    nodes = float(run.node_count)
    edges = float(run.edge_count)
    if allowed_count is not None and nodes > 0:
        fraction = min(1.0, max(0.0, float(allowed_count)) / nodes)
        # Edges are assumed uniformly distributed over nodes, so the pruned
        # region sees roughly its node share of the run's edges.
        edges *= fraction
        nodes = float(allowed_count)
    per_source = (edges + nodes) * states
    return float(max(0, source_count)) * per_source


def estimate_label_all_pairs_cost(node_count: int) -> float:
    """Estimated work of answering a safe subquery with the all-pairs label
    engine over the full node set (candidate reachable pairs times the
    relative cost of a decode)."""
    candidates = REACHABLE_FRACTION * float(node_count) ** 2
    return candidates * LABEL_DECODE_VS_JOIN


@dataclass(frozen=True)
class StrategyEstimate:
    """A cost estimate for one evaluation strategy."""

    strategy: str
    cost: float
    reason: str


class CostModel:
    """Chooses between the labeling engine and the baselines for a query."""

    def __init__(self, spec: Specification, index: EdgeTagIndex) -> None:
        self._spec = spec
        self._index = index

    # -- estimates -----------------------------------------------------------------

    def estimate_label_engine(self, query: str | RegexNode, input_pairs: int) -> StrategyEstimate:
        node = parse_regex(query)
        safe = is_safe_query(self._spec, node)
        if safe:
            cost = input_pairs * DECODE_COST
            return StrategyEstimate("optRPL", cost, "safe query: one decode per candidate pair")
        cost = input_pairs * DECODE_COST * 2
        return StrategyEstimate(
            "decomposition", cost, "unsafe query: safe subqueries decoded, remainder joined"
        )

    def estimate_g3(self, query: str | RegexNode, input_pairs: int) -> StrategyEstimate | None:
        """Cost of the index + reachability-label baseline (IFQ shapes only)."""
        tags = ifq_tags(parse_regex(query))
        if tags is None:
            return None
        if not tags:
            return StrategyEstimate("G3", float(input_pairs), "pure reachability")
        counts = [self._index.count(tag) for tag in tags]
        if any(count == 0 for count in counts):
            return StrategyEstimate("G3", 1.0, "some tag never occurs: empty result")
        # The join chain touches |E_ai| x |E_ai+1| candidate pairs per step.
        cost = float(counts[0])
        for previous, current in zip(counts, counts[1:]):
            cost += float(previous) * float(current)
        cost += float(counts[-1])
        return StrategyEstimate("G3", cost, f"join chain over tag counts {counts}")

    def estimate_g1(self, query: str | RegexNode, run_edges: int) -> StrategyEstimate:
        node = parse_regex(query)
        penalty = 50.0 if _contains_repetition(node) else 5.0
        return StrategyEstimate(
            "G1", penalty * run_edges, "join/fixpoint evaluation over the run"
        )

    # -- selection -----------------------------------------------------------------

    def choose(
        self, query: str | RegexNode, *, input_pairs: int, run_edges: int
    ) -> StrategyEstimate:
        """Pick the cheapest strategy for the query under this cost model."""
        with get_tracer().span("planner.cost_choose") as span:
            candidates = [self.estimate_label_engine(query, input_pairs)]
            g3 = self.estimate_g3(query, input_pairs)
            if g3 is not None:
                candidates.append(g3)
            candidates.append(self.estimate_g1(query, run_edges))
            best = min(candidates, key=lambda estimate: estimate.cost)
            span.set("strategy", best.strategy)
            span.set("candidates", len(candidates))
            return best
