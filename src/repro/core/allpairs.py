"""All-pairs safe queries (Algorithm 2 of the paper).

Given two lists of run nodes ``l1`` and ``l2``, an all-pairs query asks for
every pair ``(u, v) ∈ l1 × l2`` with ``u —R→ v``.  Two strategies are
implemented, matching Options S1 and S2 of Section IV-A:

* **S1 (nested loop / "RPL")** — run the constant-time pairwise decode on
  every pair; Θ(|l1| · |l2|) decodes.
* **S2 (reachability filter / "optRPL")** — represent each list as a label
  trie (a projection of the compressed parse tree, Fig. 12), merge the two
  tries structurally to enumerate only the *reachable* pairs, and run the
  pairwise decode on those.  The traversal is the paper's Algorithm 2: at a
  composite parse-tree node, children of different body positions contribute
  all their leaves when one position reaches the other in the production
  body; at a recursive (``R``) node, an earlier chain member contributes the
  leaves under its "red" branches (branches that reach the recursive
  position) against everything under later members, and symmetrically "blue"
  branches for the other direction.

:func:`all_pairs_reachability` is the special case ``R = _*`` which skips the
per-pair decode entirely and therefore runs in time linear in the input plus
output size (plus a polynomial in the specification size), which is the
optimality claim of Lemma 4.1's side effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.core.pairwise import answer_pairwise_query
from repro.core.query_index import QueryIndex
from repro.errors import LabelError
from repro.labeling.labels import ProductionStep, RecursionStep
from repro.labeling.parse_tree import LabelTrie, TrieNode
from repro.workflow.run import Run
from repro.workflow.spec import Specification

__all__ = [
    "AllPairsOptions",
    "all_pairs_safe_query",
    "all_pairs_reachability",
    "reachable_pair_groups",
]

PairGroup = tuple[list[str], list[str]]


@dataclass(frozen=True)
class AllPairsOptions:
    """Tuning knobs for the all-pairs evaluator.

    ``use_reachability_filter`` selects S2 (optRPL) over S1 (plain RPL).
    """

    use_reachability_filter: bool = True


# ---------------------------------------------------------------------------
# Structural traversal (the reachable-pair enumeration of Algorithm 2)
# ---------------------------------------------------------------------------


def _children_kind(node: TrieNode) -> str:
    kinds = {type(step) for step in node.children}
    if not kinds:
        return "leaf"
    if kinds == {ProductionStep}:
        return "production"
    if kinds == {RecursionStep}:
        return "recursion"
    raise LabelError("a parse-tree node mixes production and recursion children")


def _is_red(spec: Specification, step: ProductionStep, recursive_position: int) -> bool:
    """A branch is red when its position reaches the recursive position."""
    return spec.production(step.production).body.reaches(step.position, recursive_position)


def _is_blue(spec: Specification, step: ProductionStep, recursive_position: int) -> bool:
    """A branch is blue when the recursive position reaches it."""
    return spec.production(step.production).body.reaches(recursive_position, step.position)


def reachable_pair_groups(
    trie1: LabelTrie, trie2: LabelTrie, spec: Specification
) -> Iterator[PairGroup]:
    """Enumerate groups ``(U, V)`` such that every ``u ∈ U`` reaches every
    ``v ∈ V`` in the run, and every reachable pair of leaves appears in
    exactly one emitted group.

    This is the structural join of Algorithm 2, run over the two label tries.
    """

    def visit(node1: TrieNode, node2: TrieNode) -> Iterator[PairGroup]:
        if node1.payload and node2.payload:
            # Identical labels: the same node appears in both lists (the empty
            # path makes it reachable from itself).
            yield list(node1.payload), list(node2.payload)

        kind1 = _children_kind(node1)
        kind2 = _children_kind(node2)
        if kind1 == "leaf" or kind2 == "leaf":
            return
        if kind1 != kind2:
            raise LabelError("the two label tries disagree on the parse-tree structure")

        if kind1 == "production":
            # Case 1: children belong to the same simple workflow.
            for step1, child1 in node1.children.items():
                for step2, child2 in node2.children.items():
                    if step1.production != step2.production:
                        raise LabelError(
                            "sibling labels use different productions for the same node"
                        )
                    if step1.position == step2.position:
                        yield from visit(child1, child2)
                    elif spec.production(step1.production).body.reaches(
                        step1.position, step2.position
                    ):
                        yield child1.leaves(), child2.leaves()
            return

        # Case 2: children are members of the same recursion chain.
        cycles = spec.production_graph.cycles
        children1 = node1.sorted_children()
        children2 = node2.sorted_children()
        by_ordinal2 = {step.ordinal: child for step, child in children2}
        for step1, child1 in children1:
            # Same ordinal: recurse into the same chain member.
            same = by_ordinal2.get(step1.ordinal)
            if same is not None:
                yield from visit(child1, same)

        for step1, child1 in children1:
            # A chain member can only reach *later* members through the
            # recursive position of its cycle production; the last member of a
            # chain fired a different production and has no red branches.
            cycle = cycles[step1.cycle]
            cycle_production, recursive_position = cycle.step(
                cycle.chain_offset(step1.start, step1.ordinal)
            )
            red_leaves: list[str] = []
            for branch_step, branch in child1.children.items():
                if (
                    isinstance(branch_step, ProductionStep)
                    and branch_step.production == cycle_production
                    and _is_red(spec, branch_step, recursive_position)
                ):
                    red_leaves.extend(branch.leaves())
            if not red_leaves:
                continue
            for step2, child2 in children2:
                if step2.ordinal > step1.ordinal:
                    yield red_leaves, child2.leaves()

        for step2, child2 in children2:
            cycle = cycles[step2.cycle]
            cycle_production, recursive_position = cycle.step(
                cycle.chain_offset(step2.start, step2.ordinal)
            )
            blue_leaves: list[str] = []
            for branch_step, branch in child2.children.items():
                if (
                    isinstance(branch_step, ProductionStep)
                    and branch_step.production == cycle_production
                    and _is_blue(spec, branch_step, recursive_position)
                ):
                    blue_leaves.extend(branch.leaves())
            if not blue_leaves:
                continue
            for step1, child1 in children1:
                if step1.ordinal > step2.ordinal:
                    yield child1.leaves(), blue_leaves

    if trie1.is_empty() or trie2.is_empty():
        return
    yield from visit(trie1.root, trie2.root)


# ---------------------------------------------------------------------------
# Public evaluators
# ---------------------------------------------------------------------------


def all_pairs_reachability(
    run: Run, l1: Sequence[str], l2: Sequence[str]
) -> set[tuple[str, str]]:
    """All pairs ``(u, v) ∈ l1 × l2`` with a (possibly empty) path ``u ⤳ v``.

    Runs in time linear in ``|l1| + |l2| + N`` (N = number of reachable
    pairs) plus a polynomial in the specification size; no per-pair decode is
    needed because the structural traversal only ever emits reachable pairs.
    """
    trie1 = LabelTrie.from_run_nodes(run, l1)
    trie2 = LabelTrie.from_run_nodes(run, l2)
    results: set[tuple[str, str]] = set()
    for group1, group2 in reachable_pair_groups(trie1, trie2, run.spec):
        for u in group1:
            for v in group2:
                results.add((u, v))
    return results


def all_pairs_safe_query(
    run: Run,
    l1: Sequence[str],
    l2: Sequence[str],
    index: QueryIndex,
    options: AllPairsOptions = AllPairsOptions(),
    pair_filter: Callable[[str, str], bool] | None = None,
) -> set[tuple[str, str]]:
    """Answer an all-pairs safe query over ``l1 × l2``.

    ``options.use_reachability_filter`` selects between:

    * **S2 / optRPL** (default): enumerate reachable pairs with the structural
      join, then apply the pairwise decode to each;
    * **S1 / RPL**: apply the pairwise decode to every pair of the cross
      product.
    """
    if pair_filter is None:
        def pair_filter(u: str, v: str) -> bool:
            return answer_pairwise_query(index, run.label_of(u), run.label_of(v))

    results: set[tuple[str, str]] = set()
    if not options.use_reachability_filter:
        for u in l1:
            for v in l2:
                if pair_filter(u, v):
                    results.add((u, v))
        return results

    trie1 = LabelTrie.from_run_nodes(run, l1)
    trie2 = LabelTrie.from_run_nodes(run, l2)
    for group1, group2 in reachable_pair_groups(trie1, trie2, run.spec):
        for u in group1:
            for v in group2:
                if (u, v) not in results and pair_filter(u, v):
                    results.add((u, v))
    return results
