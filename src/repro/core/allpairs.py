"""All-pairs safe queries (Algorithm 2 of the paper), with vectorized decoding.

Given two lists of run nodes ``l1`` and ``l2``, an all-pairs query asks for
every pair ``(u, v) ∈ l1 × l2`` with ``u —R→ v``.  Three strategies are
implemented; the first two match Options S1 and S2 of Section IV-A:

* **S1 (nested loop / "RPL")** — run the constant-time pairwise decode on
  every pair; Θ(|l1| · |l2|) decodes.
* **S2 (reachability filter / "optRPL")** — represent each list as a label
  trie (a projection of the compressed parse tree, Fig. 12), merge the two
  tries structurally to enumerate only the *reachable* pairs, and run the
  pairwise decode on those.  The traversal is the paper's Algorithm 2: at a
  composite parse-tree node, children of different body positions contribute
  all their leaves when one position reaches the other in the production
  body; at a recursive (``R``) node, an earlier chain member contributes the
  leaves under its "red" branches (branches that reach the recursive
  position) against everything under later members, and symmetrically "blue"
  branches for the other direction.
* **vectorized S2 ("optRPL-G", the default)** — exploit that all members of a
  group ``(U, V)`` emitted by the structural join share the same *crossing
  context*: the Algorithm-1 decode of any ``(u, v)`` in the group factors as

      ``exit(u → U's trie node) @ context @ enter(V's trie node → v)``

  where ``context`` (a crossing matrix, possibly composed with a chain
  descent/ascent) is constant across the group.  Instead of |U| · |V| full
  matrix chains, the evaluator memoizes per-trie-node *state vectors*: for
  every leaf ``u`` the row vector ``start-state @ exit(...)`` and for every
  leaf ``v`` the column vector ``enter(...) @ accepting-states``, each built
  bottom-up with one matrix-vector product per (leaf, ancestor) and shared by
  every group that touches the node.  A group then costs one matrix-vector
  product per member (pushing the row vectors through ``context``) plus a
  single bitmask intersection per pair.

:func:`all_pairs_reachability` is the special case ``R = _*`` which skips the
per-pair decode entirely and therefore runs in time linear in the input plus
output size (plus a polynomial in the specification size), which is the
optimality claim of Lemma 4.1's side effect.

The structural join deduplicates the input lists, and its groups partition
the reachable pairs, so every pair is decoded (or emitted) exactly once —
including pairs that *fail* the query filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.automata.boolean_matrix import BooleanMatrix
from repro.core.pairwise import (
    answer_pairwise_query,
    enter_step_matrix,
    exit_step_matrix,
)
from repro.core.query_index import QueryIndex
from repro.errors import LabelError
from repro.labeling.labels import ProductionStep, RecursionStep
from repro.labeling.parse_tree import LabelTrie, TrieNode
from repro.obs import get_tracer
from repro.workflow.run import Run
from repro.workflow.spec import Specification

__all__ = [
    "AllPairsOptions",
    "StructuralGroup",
    "all_pairs_safe_query",
    "all_pairs_iter",
    "all_pairs_reachability",
    "reachable_pair_groups",
    "structural_join",
]

PairGroup = tuple[list[str], list[str]]


@dataclass(frozen=True)
class AllPairsOptions:
    """Tuning knobs for the all-pairs evaluator.

    ``use_reachability_filter`` selects S2 (optRPL) over S1 (plain RPL);
    ``vectorized`` selects the group-at-a-time state-vector decode over the
    per-pair Algorithm-1 decode (only meaningful under S2).
    """

    use_reachability_filter: bool = True
    vectorized: bool = True


# ---------------------------------------------------------------------------
# Structural traversal (the reachable-pair enumeration of Algorithm 2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StructuralGroup:
    """One group of the structural join: every leaf under ``source`` reaches
    every leaf under ``target`` (payloads *at* the nodes for identity
    groups, which pair a label with itself).

    ``context`` builds the group's crossing-context matrix for a query index
    (the constant middle factor of every member pair's Algorithm-1 decode);
    ``None`` stands for the identity relation (the empty path).
    """

    source: TrieNode
    target: TrieNode
    payload_only: bool = False
    context: Callable[[QueryIndex], BooleanMatrix] | None = None

    def source_ids(self) -> list[str]:
        return list(self.source.payload) if self.payload_only else self.source.leaves()

    def target_ids(self) -> list[str]:
        return list(self.target.payload) if self.payload_only else self.target.leaves()


def _children_kind(node: TrieNode) -> str:
    kinds = {type(step) for step in node.children}
    if not kinds:
        return "leaf"
    if kinds == {ProductionStep}:
        return "production"
    if kinds == {RecursionStep}:
        return "recursion"
    raise LabelError("a parse-tree node mixes production and recursion children")


def _is_red(spec: Specification, step: ProductionStep, recursive_position: int) -> bool:
    """A branch is red when its position reaches the recursive position."""
    return spec.production(step.production).body.reaches(step.position, recursive_position)


def _is_blue(spec: Specification, step: ProductionStep, recursive_position: int) -> bool:
    """A branch is blue when the recursive position reaches it."""
    return spec.production(step.production).body.reaches(recursive_position, step.position)


def structural_join(
    trie1: LabelTrie, trie2: LabelTrie, spec: Specification
) -> Iterator[StructuralGroup]:
    """Enumerate the groups of Algorithm 2's structural join.

    Every ``u`` under a group's source node reaches every ``v`` under its
    target node, and — provided the tries hold each leaf identifier once —
    every reachable pair of leaves is covered by exactly one group.
    """

    def cross_context(
        production: int, source: int, target: int
    ) -> Callable[[QueryIndex], BooleanMatrix]:
        def build(index: QueryIndex) -> BooleanMatrix:
            return index.cross(production, source, target)

        return build

    def red_context(
        production: int, position: int, recursive_position: int,
        cycle: int, start: int, first: int, last: int,
    ) -> Callable[[QueryIndex], BooleanMatrix]:
        # Crossing out of a red branch, then descending the recursion chain
        # to the later member (Algorithm 1's decode for diverging ordinals).
        def build(index: QueryIndex) -> BooleanMatrix:
            crossing = index.cross(production, position, recursive_position)
            if crossing.is_zero():
                return crossing
            return crossing @ index.descend_chain(cycle, start, first, last)

        return build

    def blue_context(
        production: int, position: int, recursive_position: int,
        cycle: int, start: int, first: int, last: int,
    ) -> Callable[[QueryIndex], BooleanMatrix]:
        # Climbing out of the nesting to the earlier member, then crossing
        # from the recursive position into a blue branch.
        def build(index: QueryIndex) -> BooleanMatrix:
            crossing = index.cross(production, recursive_position, position)
            if crossing.is_zero():
                return crossing
            return index.ascend_chain(cycle, start, first, last) @ crossing

        return build

    def visit(node1: TrieNode, node2: TrieNode) -> Iterator[StructuralGroup]:
        if node1.payload and node2.payload:
            # Identical labels: the same node appears in both lists (the empty
            # path makes it reachable from itself).
            yield StructuralGroup(node1, node2, payload_only=True)

        kind1 = _children_kind(node1)
        kind2 = _children_kind(node2)
        if kind1 == "leaf" or kind2 == "leaf":
            return
        if kind1 != kind2:
            raise LabelError("the two label tries disagree on the parse-tree structure")

        if kind1 == "production":
            # Case 1: children belong to the same simple workflow.
            for step1, child1 in node1.children.items():
                for step2, child2 in node2.children.items():
                    if step1.production != step2.production:
                        raise LabelError(
                            "sibling labels use different productions for the same node"
                        )
                    if step1.position == step2.position:
                        yield from visit(child1, child2)
                    elif spec.production(step1.production).body.reaches(
                        step1.position, step2.position
                    ):
                        yield StructuralGroup(
                            child1,
                            child2,
                            context=cross_context(
                                step1.production, step1.position, step2.position
                            ),
                        )
            return

        # Case 2: children are members of the same recursion chain.
        cycles = spec.production_graph.cycles
        children1 = node1.sorted_children()
        children2 = node2.sorted_children()
        by_ordinal2 = {step.ordinal: child for step, child in children2}
        for step1, child1 in children1:
            # Same ordinal: recurse into the same chain member.
            same = by_ordinal2.get(step1.ordinal)
            if same is not None:
                yield from visit(child1, same)

        for step1, child1 in children1:
            # A chain member can only reach *later* members through the
            # recursive position of its cycle production; the last member of a
            # chain fired a different production and has no red branches.
            cycle = cycles[step1.cycle]
            cycle_production, recursive_position = cycle.step(
                cycle.chain_offset(step1.start, step1.ordinal)
            )
            red_branches = [
                (branch_step, branch)
                for branch_step, branch in child1.children.items()
                if isinstance(branch_step, ProductionStep)
                and branch_step.production == cycle_production
                and _is_red(spec, branch_step, recursive_position)
            ]
            if not red_branches:
                continue
            for step2, child2 in children2:
                if step2.ordinal <= step1.ordinal:
                    continue
                for branch_step, branch in red_branches:
                    yield StructuralGroup(
                        branch,
                        child2,
                        context=red_context(
                            cycle_production,
                            branch_step.position,
                            recursive_position,
                            step1.cycle,
                            step1.start,
                            step1.ordinal + 1,
                            step2.ordinal - 1,
                        ),
                    )

        for step2, child2 in children2:
            cycle = cycles[step2.cycle]
            cycle_production, recursive_position = cycle.step(
                cycle.chain_offset(step2.start, step2.ordinal)
            )
            blue_branches = [
                (branch_step, branch)
                for branch_step, branch in child2.children.items()
                if isinstance(branch_step, ProductionStep)
                and branch_step.production == cycle_production
                and _is_blue(spec, branch_step, recursive_position)
            ]
            if not blue_branches:
                continue
            for step1, child1 in children1:
                if step1.ordinal <= step2.ordinal:
                    continue
                for branch_step, branch in blue_branches:
                    yield StructuralGroup(
                        child1,
                        branch,
                        context=blue_context(
                            cycle_production,
                            branch_step.position,
                            recursive_position,
                            step2.cycle,
                            step2.start,
                            step1.ordinal - 1,
                            step2.ordinal + 1,
                        ),
                    )

    if trie1.is_empty() or trie2.is_empty():
        return
    yield from visit(trie1.root, trie2.root)


def reachable_pair_groups(
    trie1: LabelTrie, trie2: LabelTrie, spec: Specification
) -> Iterator[PairGroup]:
    """Enumerate groups ``(U, V)`` such that every ``u ∈ U`` reaches every
    ``v ∈ V`` in the run, and — provided the tries hold each leaf identifier
    once — every reachable pair of leaves appears in exactly one emitted
    group.

    This is the leaf-list view of :func:`structural_join` (red branches are
    emitted as separate groups, which keeps the partition disjoint).
    """
    for group in structural_join(trie1, trie2, spec):
        yield group.source_ids(), group.target_ids()


# ---------------------------------------------------------------------------
# Group-at-a-time vectorized decoding (optRPL-G)
# ---------------------------------------------------------------------------


class _VectorTables:
    """Per-trie-node state-vector tables for one query index.

    ``alphas(node)`` lists ``(leaf id, row vector)`` for every leaf under the
    node, where the vector is the DFA start state pushed through the exit
    walk from the leaf up to the node.  ``betas(node)`` lists ``(leaf id,
    column vector)``: the accepting states pulled through the entry walk from
    the node down to the leaf.  A pair ``(u, v)`` of a group with context
    matrix ``C`` matches the query iff ``(alpha_u @ C) & beta_v`` is
    non-empty — exactly Algorithm 1's ``exit @ C @ enter`` relation probed at
    (start, accepting).

    Tables are memoized on :attr:`TrieNode.memo` keyed by the index object,
    so each is computed once per trie node per query even when the node is
    shared by many groups (or by both sides of the join when ``l1 == l2``).
    """

    def __init__(self, index: QueryIndex) -> None:
        self._index = index
        self._alpha_key = ("vector-alphas", index)
        self._beta_key = ("vector-betas", index)

    def alphas(self, node: TrieNode) -> list[tuple[str, int]]:
        cached = node.memo.get(self._alpha_key)
        if cached is None:
            cached = [(leaf, self._index.start_mask) for leaf in node.payload]
            for step, child in node.children.items():
                matrix = exit_step_matrix(self._index, step)
                cached.extend(
                    (leaf, matrix.propagate_row(vector))
                    for leaf, vector in self.alphas(child)
                )
            node.memo[self._alpha_key] = cached
        return cached

    def betas(self, node: TrieNode) -> list[tuple[str, int]]:
        cached = node.memo.get(self._beta_key)
        if cached is None:
            cached = [(leaf, self._index.accepting_mask) for leaf in node.payload]
            for step, child in node.children.items():
                matrix = enter_step_matrix(self._index, step)
                cached.extend(
                    (leaf, matrix.propagate_column(vector))
                    for leaf, vector in self.betas(child)
                )
            node.memo[self._beta_key] = cached
        return cached


def _decode_group_vectorized(
    group: StructuralGroup, index: QueryIndex, tables: _VectorTables
) -> Iterator[tuple[str, str]]:
    """Yield the matching pairs of one structural-join group."""
    if group.payload_only:
        # Identical labels: the pair relation is the identity (empty path).
        if index.accepts(index.identity):
            for u in group.source.payload:
                for v in group.target.payload:
                    yield u, v
        return
    context = group.context(index)
    if context.is_zero():
        return
    betas = [(v, beta) for v, beta in tables.betas(group.target) if beta]
    if not betas:
        return
    for u, alpha in tables.alphas(group.source):
        reached = context.propagate_row(alpha)
        if not reached:
            continue
        for v, beta in betas:
            if reached & beta:
                yield u, v


# ---------------------------------------------------------------------------
# Public evaluators
# ---------------------------------------------------------------------------


def _unique(ids: Sequence[str]) -> list[str]:
    """Input order preserved, duplicates dropped (keeps the structural join's
    groups a disjoint partition of the pairs)."""
    return list(dict.fromkeys(ids))


def all_pairs_reachability(
    run: Run, l1: Sequence[str], l2: Sequence[str]
) -> set[tuple[str, str]]:
    """All pairs ``(u, v) ∈ l1 × l2`` with a (possibly empty) path ``u ⤳ v``.

    Runs in time linear in ``|l1| + |l2| + N`` (N = number of reachable
    pairs) plus a polynomial in the specification size; no per-pair decode is
    needed because the structural traversal only ever emits reachable pairs.
    """
    trie1 = LabelTrie.from_run_nodes(run, _unique(l1))
    trie2 = LabelTrie.from_run_nodes(run, _unique(l2))
    results: set[tuple[str, str]] = set()
    for group in structural_join(trie1, trie2, run.spec):
        for u in group.source_ids():
            for v in group.target_ids():
                results.add((u, v))
    return results


def all_pairs_iter(
    run: Run,
    l1: Sequence[str],
    l2: Sequence[str],
    index: QueryIndex,
    options: AllPairsOptions = AllPairsOptions(),
    pair_filter: Callable[[str, str], bool] | None = None,
) -> Iterator[tuple[str, str]]:
    """Stream the answers of an all-pairs safe query over ``l1 × l2``.

    Pairs are yielded as they are found, without materializing the result
    set; each matching pair is yielded exactly once.  ``options`` selects the
    strategy (see :class:`AllPairsOptions`); a custom ``pair_filter``
    replaces the Algorithm-1 decode and forces the per-pair strategies.
    """
    return get_tracer().wrap_iter(
        "decode.all_pairs",
        _all_pairs_gen(run, l1, l2, index, options, pair_filter),
        sources=len(l1),
        targets=len(l2),
        vectorized=options.vectorized,
        filtered=options.use_reachability_filter,
    )


def _all_pairs_gen(
    run: Run,
    l1: Sequence[str],
    l2: Sequence[str],
    index: QueryIndex,
    options: AllPairsOptions,
    pair_filter: Callable[[str, str], bool] | None,
) -> Iterator[tuple[str, str]]:
    unique1, unique2 = _unique(l1), _unique(l2)
    use_decode = pair_filter is None
    if pair_filter is None:
        def pair_filter(u: str, v: str) -> bool:
            return answer_pairwise_query(index, run.label_of(u), run.label_of(v))

    if not options.use_reachability_filter:
        for u in unique1:
            for v in unique2:
                if pair_filter(u, v):
                    yield u, v
        return

    trie1 = LabelTrie.from_run_nodes(run, unique1)
    trie2 = trie1 if unique1 == unique2 else LabelTrie.from_run_nodes(run, unique2)
    if options.vectorized and use_decode:
        tables = _VectorTables(index)
        for group in structural_join(trie1, trie2, run.spec):
            yield from _decode_group_vectorized(group, index, tables)
        return
    for group in structural_join(trie1, trie2, run.spec):
        for u in group.source_ids():
            for v in group.target_ids():
                if pair_filter(u, v):
                    yield u, v


def all_pairs_safe_query(
    run: Run,
    l1: Sequence[str],
    l2: Sequence[str],
    index: QueryIndex,
    options: AllPairsOptions = AllPairsOptions(),
    pair_filter: Callable[[str, str], bool] | None = None,
) -> set[tuple[str, str]]:
    """Answer an all-pairs safe query over ``l1 × l2``.

    ``options`` selects between:

    * **vectorized S2 / optRPL-G** (default): enumerate reachable groups with
      the structural join and decode each group at a time with state-vector
      operations;
    * **S2 / optRPL** (``vectorized=False``): same enumeration, but the full
      pairwise decode on every surviving pair;
    * **S1 / RPL** (``use_reachability_filter=False``): the pairwise decode
      on every pair of the cross product.
    """
    return set(all_pairs_iter(run, l1, l2, index, options, pair_filter))
