"""The public facade: :class:`ProvenanceQueryEngine`.

One engine instance wraps one workflow specification and exposes the whole
query pipeline of the paper:

* derive labeled runs (executions) of the specification,
* check query safety,
* answer pairwise queries from labels alone (Algorithm 1),
* answer all-pairs safe queries with or without the reachability filter
  (Algorithm 2, Options S1/S2),
* answer general queries through safe-subtree decomposition,
* answer plain reachability queries,

while caching the per-query indices (safety analysis + transition matrices),
which is the query-time "overhead" measured in Fig. 13a/b.

Caching goes through a bounded, shared
:class:`~repro.service.cache.IndexCache` keyed by the specification
fingerprint and the query's canonical normal form, so ``a|b`` and ``b|a``
share one index and several engines (or a whole
:class:`~repro.service.service.QueryService`) can pool their per-query work
by passing the same cache instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.automata.regex import RegexNode, parse_regex
from repro.core.allpairs import (
    AllPairsOptions,
    all_pairs_iter,
    all_pairs_reachability,
)
from repro.core.decomposition import (
    DecompositionPlan,
    evaluate_general_query,
    evaluate_general_query_iter,
)
from repro.core.pairwise import answer_pairwise_query, pairwise_reach_matrix
from repro.core.query_index import QueryIndex
from repro.core.safety import SafetyReport
from repro.errors import UnsafeQueryError
from repro.labeling.reachability import is_reachable
from repro.obs import get_tracer
from repro.workflow.derivation import derive_run
from repro.workflow.run import Run
from repro.workflow.spec import Specification

if TYPE_CHECKING:
    from repro.automata.boolean_matrix import BooleanMatrix
    from repro.core.exec import ExecutorConfig
    from repro.service.cache import IndexCache

__all__ = ["ProvenanceQueryEngine", "DEFAULT_CACHE_ENTRIES"]

DEFAULT_CACHE_ENTRIES = 128


class ProvenanceQueryEngine:
    """Regular path queries over executions of one workflow specification.

    Parameters
    ----------
    spec:
        The workflow specification the engine answers queries against.
    cache:
        An optional shared :class:`~repro.service.cache.IndexCache`.  By
        default each engine gets its own bounded cache
        (``DEFAULT_CACHE_ENTRIES`` entries); passing one cache to several
        engines lets them share per-query indexes across specifications.
    """

    def __init__(self, spec: Specification, *, cache: "IndexCache | None" = None) -> None:
        if cache is None:
            # Imported lazily: repro.service imports this module at load time.
            from repro.service.cache import IndexCache

            cache = IndexCache(max_entries=DEFAULT_CACHE_ENTRIES)
        self._spec = spec
        self._cache = cache

    # -- basics ----------------------------------------------------------------------

    @property
    def spec(self) -> Specification:
        return self._spec

    @property
    def cache(self) -> "IndexCache":
        """The (possibly shared) index cache backing this engine."""
        return self._cache

    def derive(
        self, *, seed: int | None = None, target_edges: int | None = None, **kwargs: Any
    ) -> Run:
        """Derive a labeled run of the specification (see :func:`derive_run`)."""
        return derive_run(self._spec, seed=seed, target_edges=target_edges, **kwargs)

    def _check_run(self, run: Run) -> None:
        # Compare grammar content, not object identity or display name: a run
        # reloaded from JSON (or a renamed spec) must still be answerable.
        if run.spec is not self._spec and run.spec.fingerprint != self._spec.fingerprint:
            raise ValueError(
                "the run was derived from a different specification than this engine's"
            )

    # -- safety ----------------------------------------------------------------------

    def safety_report(self, query: str | RegexNode) -> SafetyReport:
        """The full safety analysis of a query (cached)."""
        return self._cache.safety(self._spec, query)

    def is_safe(self, query: str | RegexNode) -> bool:
        """Is the query safe for this specification (Definition 13)?"""
        return self.safety_report(query).is_safe

    def query_index(self, query: str | RegexNode) -> QueryIndex:
        """The cached :class:`QueryIndex` of a safe query."""
        return self._cache.index(self._spec, query)

    def plan(self, query: str | RegexNode) -> DecompositionPlan:
        """The safe-subtree decomposition plan of a (possibly unsafe) query.

        Plans are cached in the shared :class:`IndexCache` (keyed by the
        query's canonical form), so repeated unsafe queries are planned once
        per specification; planning also warms the safe subqueries' safety
        reports and indexes.
        """
        return self._cache.plan(self._spec, query)

    def _subtree_index_provider(self) -> Callable[[RegexNode], QueryIndex]:
        """Safe-subquery indexes resolved through the shared cache."""
        return lambda node: self._cache.index(self._spec, node)

    # -- pairwise queries ---------------------------------------------------------------

    def reachable(self, run: Run, source: str, target: str) -> bool:
        """Plain reachability ``u ⤳ v`` decoded from labels (prior work [4])."""
        self._check_run(run)
        return is_reachable(run.label_of(source), run.label_of(target), self._spec)

    def pairwise(self, run: Run, source: str, target: str, query: str | RegexNode) -> bool:
        """Algorithm 1: does a path from ``source`` to ``target`` match the query?

        Requires the query to be safe; unsafe queries raise
        :class:`~repro.errors.UnsafeQueryError` (evaluate them with
        :meth:`evaluate` instead).
        """
        self._check_run(run)
        index = self.query_index(query)
        return answer_pairwise_query(index, run.label_of(source), run.label_of(target))

    def pairwise_states(
        self, run: Run, source: str, target: str, query: str | RegexNode
    ) -> "BooleanMatrix":
        """The full DFA-state relation realized by paths from source to target."""
        self._check_run(run)
        index = self.query_index(query)
        return pairwise_reach_matrix(index, run.label_of(source), run.label_of(target))

    # -- all-pairs queries ----------------------------------------------------------------

    def all_pairs_reachability(
        self, run: Run, l1: Sequence[str] | None = None, l2: Sequence[str] | None = None
    ) -> set[tuple[str, str]]:
        """All reachable pairs of ``l1 × l2`` in input+output-linear time."""
        self._check_run(run)
        universe1 = list(l1) if l1 is not None else list(run.node_ids())
        universe2 = list(l2) if l2 is not None else list(run.node_ids())
        return all_pairs_reachability(run, universe1, universe2)

    def all_pairs(
        self,
        run: Run,
        query: str | RegexNode,
        l1: Sequence[str] | None = None,
        l2: Sequence[str] | None = None,
        *,
        use_reachability_filter: bool = True,
        vectorized: bool = True,
    ) -> set[tuple[str, str]]:
        """Algorithm 2 for a *safe* query (vectorized S2 by default; see
        :class:`~repro.core.allpairs.AllPairsOptions`)."""
        return set(
            self.all_pairs_iter(
                run,
                query,
                l1,
                l2,
                use_reachability_filter=use_reachability_filter,
                vectorized=vectorized,
            )
        )

    def all_pairs_iter(
        self,
        run: Run,
        query: str | RegexNode,
        l1: Sequence[str] | None = None,
        l2: Sequence[str] | None = None,
        *,
        use_reachability_filter: bool = True,
        vectorized: bool = True,
    ) -> Iterator[tuple[str, str]]:
        """Stream the matching pairs of a *safe* all-pairs query.

        Pairs are yielded as they are found (each exactly once, in no
        particular order) without ever materializing the result set, so a
        consumer can stop early or process millions of pairs in constant
        memory.  Unsafe queries raise
        :class:`~repro.errors.UnsafeQueryError`; use :meth:`evaluate_iter`
        for those.
        """
        self._check_run(run)
        index = self.query_index(query)
        universe1 = list(l1) if l1 is not None else list(run.node_ids())
        universe2 = list(l2) if l2 is not None else list(run.node_ids())
        return all_pairs_iter(
            run,
            universe1,
            universe2,
            index,
            AllPairsOptions(
                use_reachability_filter=use_reachability_filter, vectorized=vectorized
            ),
        )

    def evaluate(
        self,
        run: Run,
        query: str | RegexNode,
        l1: Sequence[str] | None = None,
        l2: Sequence[str] | None = None,
        *,
        use_reachability_filter: bool = True,
        vectorized: bool = True,
        strategy: str = "auto",
        direction: str = "auto",
        executor: "ExecutorConfig | None" = None,
    ) -> set[tuple[str, str]]:
        """Answer any all-pairs query, safe or not.

        Safe queries go straight to Algorithm 2; unsafe queries are
        decomposed into their maximal safe subqueries plus an unsafe
        remainder (Section IV-B) evaluated with restriction pushdown: the
        ``l1``/``l2`` lists bound every intermediate relation instead of
        being applied to a whole-run result.  ``strategy`` routes the unsafe
        remainder (``"auto"``, ``"frontier"``, or ``"join"``), ``direction``
        orients the frontier strategy (``"backward"`` searches from the
        targets over the reversed macro DFA), and ``executor`` tunes the
        physical execution (parallel per-seed fan-out; see
        :class:`~repro.core.exec.ExecutorConfig` and
        :func:`~repro.core.decomposition.evaluate_general_query`).
        """
        if strategy not in ("auto", "frontier", "join"):
            # Validate up front: safe queries never reach the decomposition
            # engine, so a typo must not pass silently until a query happens
            # to be unsafe.
            raise ValueError(
                f"unknown strategy {strategy!r}; use 'auto', 'frontier' or 'join'"
            )
        if direction not in ("auto", "forward", "backward"):
            raise ValueError(
                f"unknown direction {direction!r}; use 'auto', 'forward' or 'backward'"
            )
        self._check_run(run)
        tracer = get_tracer()
        with tracer.span(
            "query.evaluate", strategy=strategy, direction=direction
        ) as evaluation:
            with tracer.span("query.parse"):
                node = parse_regex(query)
            safe = True
            try:
                with tracer.span("query.safety"):
                    self.query_index(node)
            except UnsafeQueryError:
                safe = False
            evaluation.set("safe", safe)
            if not safe:
                with tracer.span("query.execute", path="decomposition"):
                    return evaluate_general_query(
                        run,
                        node,
                        l1,
                        l2,
                        plan=self.plan(node),
                        use_reachability_filter=use_reachability_filter,
                        vectorized=vectorized,
                        index_provider=self._subtree_index_provider(),
                        strategy=strategy,
                        direction=direction,
                        executor=executor,
                    )
            with tracer.span("query.execute", path="safe-allpairs"):
                return self.all_pairs(
                    run,
                    node,
                    l1,
                    l2,
                    use_reachability_filter=use_reachability_filter,
                    vectorized=vectorized,
                )

    def evaluate_iter(
        self,
        run: Run,
        query: str | RegexNode,
        l1: Sequence[str] | None = None,
        l2: Sequence[str] | None = None,
        *,
        use_reachability_filter: bool = True,
        vectorized: bool = True,
        direction: str = "auto",
        executor: "ExecutorConfig | None" = None,
    ) -> Iterator[tuple[str, str]]:
        """Stream the answers of any all-pairs query, safe or not.

        Safe queries stream straight out of the group-at-a-time evaluator
        (constant memory).  Unsafe queries stream through the executor
        layer's per-seed frontier search — forward from the sources, or
        backward from the targets over the reversed macro DFA
        (``direction``), optionally fanned across a worker pool with ordered
        or unordered streaming merge (``executor``; see
        :class:`~repro.core.exec.ExecutorConfig`): memory is bounded by the
        region of the run reachable from ``l1`` (and co-reachable from
        ``l2``) plus the routed safe subqueries' relations — never by the
        result set, and never by materializing a whole-run relation.
        Validation (run/spec match, parsing, safety, planning) runs eagerly,
        before the iterator is returned.
        """
        self._check_run(run)
        tracer = get_tracer()
        with tracer.span("query.parse"):
            node = parse_regex(query)
        safe = True
        try:
            with tracer.span("query.safety"):
                self.query_index(node)
        except UnsafeQueryError:
            safe = False
        if not safe:
            return tracer.wrap_iter(
                "query.stream",
                evaluate_general_query_iter(
                    run,
                    node,
                    l1,
                    l2,
                    plan=self.plan(node),
                    use_reachability_filter=use_reachability_filter,
                    vectorized=vectorized,
                    index_provider=self._subtree_index_provider(),
                    direction=direction,
                    executor=executor,
                ),
                path="decomposition",
            )
        return tracer.wrap_iter(
            "query.stream",
            self.all_pairs_iter(
                run,
                node,
                l1,
                l2,
                use_reachability_filter=use_reachability_filter,
                vectorized=vectorized,
            ),
            path="safe-allpairs",
        )

    # -- reporting -------------------------------------------------------------------------

    def describe(self) -> str:
        # Count only this specification's entries: the cache may be shared
        # with other engines (or a whole QueryService) serving other specs.
        entries = self._cache.entry_count_for(self._spec.fingerprint)
        return (
            f"ProvenanceQueryEngine over {self._spec.name!r} "
            f"({entries} cached query entries)"
        )
