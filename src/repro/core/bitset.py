"""Dense node interning and the uint64-packed bitset compute kernel.

The set-based machinery in :mod:`repro.core.relations` represents run-scale
state as ``set[str]`` / ``set[tuple[str, str]]`` and pays a hash lookup per
element.  This module re-platforms that data path on *dense interned ids*
(each run node gets an index ``0 .. n-1``, assigned once per
:class:`~repro.workflow.run.Run` and memoized on it) and *packed bitsets*:

* a node set is one unbounded Python integer whose bit ``i`` is node ``i``
  (CPython stores it as an array of native words, so ``&``/``|``/``~`` run
  word-parallel at C speed — 64 nodes per machine operation);
* a relation or adjacency structure is one such row per source node, with
  bit ``j`` of row ``i`` meaning ``i → j``.

Rows serialize to a fixed-width **little-endian uint64 word layout**
(``row_byte_width`` = ``ceil(n / 64) * 8`` bytes per row, exactly the layout
of an ``array('Q')`` buffer), which is what the shared-memory worker arena
(:mod:`repro.core.exec.arena`) and the store's packed matrix format exchange.

When numpy is importable (a soft dependency, probed at import time — see
:data:`HAS_NUMPY`) wide row unions additionally take a vectorized path:
rows are mirrored into an ``(n, words)`` ``uint64`` matrix and a frontier
propagation becomes one ``np.bitwise_or.reduce`` over the selected rows.
The kernel is exactly equivalent with or without numpy; the probe only
switches implementations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Protocol, Sequence

from repro.automata.dfa import DFA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workflow.run import Run

__all__ = [
    "WORD_BITS",
    "HAS_NUMPY",
    "word_count",
    "row_byte_width",
    "bit_indices",
    "rows_to_bytes",
    "rows_from_bytes",
    "NodeInterner",
    "PackedAdjacency",
    "RowPropagator",
    "PackedGraph",
    "PackedRunView",
    "build_run_view",
    "closure_mask",
    "PackedRelation",
    "PackedFrontier",
]

WORD_BITS = 64


def _load_numpy() -> Any:
    """Probe for numpy without making it a hard dependency."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy


_NUMPY: Any = _load_numpy()
HAS_NUMPY: bool = _NUMPY is not None

# Vectorize a propagation only when it unions at least this many rows (below
# that, the Python big-int loop wins on constant factors) ...
_NUMPY_MIN_FANOUT = 32
# ... and only mirror a dense uint64 matrix for graphs up to this many nodes
# (the mirror costs n * ceil(n/64) * 8 bytes; 16384 nodes = 32 MiB).
_DENSE_NODE_LIMIT = 1 << 14


def word_count(bits: int) -> int:
    """Number of 64-bit words needed for a ``bits``-wide bitset row."""
    return (bits + WORD_BITS - 1) // WORD_BITS


def row_byte_width(bits: int) -> int:
    """Serialized row width in bytes: whole little-endian uint64 words."""
    return word_count(bits) * 8


def bit_indices(mask: int) -> list[int]:
    """Indices of the set bits of ``mask``, ascending."""
    out: list[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def rows_to_bytes(rows: Sequence[int], bits: int) -> bytes:
    """Serialize rows into the fixed-width little-endian word layout."""
    width = row_byte_width(bits)
    return b"".join(row.to_bytes(width, "little") for row in rows)


def rows_from_bytes(buffer: bytes | memoryview, bits: int, count: int) -> list[int]:
    """Parse ``count`` fixed-width rows back into Python-int bitsets.

    Accepts a ``memoryview`` so callers can parse straight out of a mapped
    shared-memory segment without first copying the buffer.
    """
    width = row_byte_width(bits)
    view = memoryview(buffer)
    if len(view) < width * count:
        raise ValueError(
            f"buffer holds {len(view)} bytes; {count} rows of {width} bytes need "
            f"{width * count}"
        )
    return [
        int.from_bytes(view[index * width : (index + 1) * width], "little")
        for index in range(count)
    ]


class NodeInterner:
    """Dense ``node id -> bit index`` table for one run, built once.

    ``ids`` preserves run node order, so bit indices (and therefore every
    packed row) are deterministic for a given run.
    """

    __slots__ = ("ids", "index", "full_mask")

    def __init__(self, ids: Iterable[str]) -> None:
        self.ids: tuple[str, ...] = tuple(ids)
        self.index: dict[str, int] = {
            node_id: position for position, node_id in enumerate(self.ids)
        }
        self.full_mask: int = (1 << len(self.ids)) - 1

    def __len__(self) -> int:
        return len(self.ids)

    def bit_of(self, node_id: str) -> int | None:
        """Bit index of a node id, or ``None`` for ids not in the run."""
        return self.index.get(node_id)

    def mask_of(self, node_ids: Iterable[str]) -> int:
        """Pack a node-id collection into a bitset (unknown ids dropped)."""
        index = self.index
        mask = 0
        for node_id in node_ids:
            position = index.get(node_id)
            if position is not None:
                mask |= 1 << position
        return mask

    def nodes_of(self, mask: int) -> list[str]:
        """Unpack a bitset back into node ids, in bit (= run) order."""
        ids = self.ids
        return [ids[position] for position in bit_indices(mask)]


class RowPropagator(Protocol):
    """Anything that can union its rows over a source mask.

    Both :class:`PackedAdjacency` and the executor's lazily-materialized
    macro adjacency satisfy this; the frontier search only needs
    :meth:`propagate`.
    """

    def propagate(self, mask: int) -> int:
        """Union of ``rows[i]`` over the set bits ``i`` of ``mask``."""
        ...


class PackedAdjacency:
    """One packed row per source node; ``propagate`` is the kernel hot loop."""

    __slots__ = ("node_count", "rows", "_dense")

    def __init__(self, node_count: int, rows: Sequence[int]) -> None:
        if len(rows) != node_count:
            raise ValueError(f"expected {node_count} rows, got {len(rows)}")
        self.node_count = node_count
        self.rows: list[int] = list(rows)
        # Lazily-built numpy mirror; idempotent to race on (see _matrix).
        self._dense: Any = None

    @classmethod
    def from_edges(
        cls, node_count: int, edges: Iterable[tuple[int, int]]
    ) -> "PackedAdjacency":
        rows = [0] * node_count
        for source, target in edges:
            rows[source] |= 1 << target
        return cls(node_count, rows)

    def propagate(self, mask: int) -> int:
        """Union of the successor rows of every set bit of ``mask``."""
        if (
            _NUMPY is not None
            and 0 < self.node_count <= _DENSE_NODE_LIMIT
            and mask.bit_count() >= _NUMPY_MIN_FANOUT
        ):
            return self._propagate_dense(mask)
        rows = self.rows
        out = 0
        while mask:
            low = mask & -mask
            out |= rows[low.bit_length() - 1]
            mask ^= low
        return out

    def _matrix(self) -> Any:
        """The ``(n, words)`` uint64 mirror of the rows, built on first use.

        Safe to race from threads: every builder computes the same immutable
        array and the attribute store is atomic under the GIL.
        """
        dense = self._dense
        if dense is None:
            words = word_count(self.node_count)
            flat = _NUMPY.frombuffer(
                rows_to_bytes(self.rows, self.node_count), dtype=_NUMPY.uint64
            )
            dense = flat.reshape(self.node_count, words)
            self._dense = dense
        return dense

    def _propagate_dense(self, mask: int) -> int:
        width = row_byte_width(self.node_count)
        mask_bytes = _NUMPY.frombuffer(
            mask.to_bytes(width, "little"), dtype=_NUMPY.uint8
        )
        selected = _NUMPY.unpackbits(mask_bytes, bitorder="little")[: self.node_count]
        rows = self._matrix()[selected.astype(bool)]
        if not len(rows):
            return 0
        out = _NUMPY.bitwise_or.reduce(rows, axis=0)
        return int.from_bytes(out.tobytes(), "little")

    def to_bytes(self) -> bytes:
        return rows_to_bytes(self.rows, self.node_count)

    @classmethod
    def from_bytes(
        cls, buffer: bytes | memoryview, node_count: int
    ) -> "PackedAdjacency":
        return cls(node_count, rows_from_bytes(buffer, node_count, node_count))


class PackedGraph:
    """One traversal direction of a run in packed form."""

    __slots__ = ("by_tag", "any_tag")

    def __init__(self, by_tag: Mapping[str, PackedAdjacency], any_tag: PackedAdjacency) -> None:
        self.by_tag: dict[str, PackedAdjacency] = dict(by_tag)
        self.any_tag = any_tag


class PackedRunView:
    """The memoized packed form of a run: interner plus both directions.

    Built once per run (see ``Run.packed``) and reused by every query, which
    is what retires the old per-call adjacency rebuilds in the join and
    closure paths.
    """

    __slots__ = ("interner", "forward", "backward")

    def __init__(self, interner: NodeInterner, forward: PackedGraph, backward: PackedGraph) -> None:
        self.interner = interner
        self.forward = forward
        self.backward = backward

    def graph(self, direction: str) -> PackedGraph:
        if direction == "forward":
            return self.forward
        if direction == "backward":
            return self.backward
        raise ValueError(f"unknown direction {direction!r}")


def build_run_view(run: "Run") -> PackedRunView:
    """Intern a run's nodes and pack both adjacency directions by tag."""
    interner = NodeInterner(run.nodes)
    index = interner.index
    node_count = len(interner)
    forward_by_tag: dict[str, list[int]] = {}
    backward_by_tag: dict[str, list[int]] = {}
    forward_any = [0] * node_count
    backward_any = [0] * node_count
    for edge in run.edges:
        source = index[edge.source]
        target = index[edge.target]
        source_bit = 1 << source
        target_bit = 1 << target
        tag_forward = forward_by_tag.get(edge.tag)
        if tag_forward is None:
            tag_forward = [0] * node_count
            forward_by_tag[edge.tag] = tag_forward
            backward_by_tag[edge.tag] = [0] * node_count
        tag_forward[source] |= target_bit
        backward_by_tag[edge.tag][target] |= source_bit
        forward_any[source] |= target_bit
        backward_any[target] |= source_bit
    forward = PackedGraph(
        {tag: PackedAdjacency(node_count, rows) for tag, rows in forward_by_tag.items()},
        PackedAdjacency(node_count, forward_any),
    )
    backward = PackedGraph(
        {tag: PackedAdjacency(node_count, rows) for tag, rows in backward_by_tag.items()},
        PackedAdjacency(node_count, backward_any),
    )
    return PackedRunView(interner, forward, backward)


def closure_mask(adjacency: RowPropagator, seeds: int) -> int:
    """Reachability closure of a seed mask (seeds included), by wavefront.

    Each round propagates the whole frontier in one word-parallel union, so
    the loop runs once per BFS level instead of once per node.
    """
    reach = seeds
    frontier = seeds
    while frontier:
        fresh = adjacency.propagate(frontier) & ~reach
        reach |= fresh
        frontier = fresh
    return reach


class PackedRelation:
    """A node-pair relation as packed rows (bit ``j`` of row ``i`` = ``i → j``)."""

    __slots__ = ("node_count", "rows")

    def __init__(self, node_count: int, rows: Sequence[int]) -> None:
        if len(rows) != node_count:
            raise ValueError(f"expected {node_count} rows, got {len(rows)}")
        self.node_count = node_count
        self.rows: list[int] = list(rows)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def empty(cls, node_count: int) -> "PackedRelation":
        return cls(node_count, [0] * node_count)

    @classmethod
    def identity(cls, node_count: int, universe: int) -> "PackedRelation":
        """The diagonal over a node universe (the empty path)."""
        rows = [0] * node_count
        for position in bit_indices(universe):
            rows[position] = 1 << position
        return cls(node_count, rows)

    @classmethod
    def from_pairs(
        cls, interner: NodeInterner, pairs: Iterable[tuple[str, str]]
    ) -> "PackedRelation":
        """Pack a set-based relation (pairs with unknown ids are dropped)."""
        index = interner.index
        rows = [0] * len(interner)
        for source, target in pairs:
            source_bit = index.get(source)
            target_bit = index.get(target)
            if source_bit is not None and target_bit is not None:
                rows[source_bit] |= 1 << target_bit
        return cls(len(interner), rows)

    @classmethod
    def from_adjacency(
        cls, adjacency: PackedAdjacency, allowed: int | None
    ) -> "PackedRelation":
        """A single-step relation from packed adjacency, restricted to a
        universe mask on both endpoints (``None`` = unrestricted)."""
        if allowed is None:
            return cls(adjacency.node_count, adjacency.rows)
        rows = [0] * adjacency.node_count
        source_mask = allowed
        adjacency_rows = adjacency.rows
        while source_mask:
            low = source_mask & -source_mask
            position = low.bit_length() - 1
            rows[position] = adjacency_rows[position] & allowed
            source_mask ^= low
        return cls(adjacency.node_count, rows)

    # -- inspection --------------------------------------------------------------

    def is_empty(self) -> bool:
        return not any(self.rows)

    def pair_count(self) -> int:
        return sum(row.bit_count() for row in self.rows)

    def to_pairs(self, interner: NodeInterner) -> set[tuple[str, str]]:
        """Unpack into the set-based :data:`~repro.core.relations.NodePairs`."""
        ids = interner.ids
        out: set[tuple[str, str]] = set()
        for position, row in enumerate(self.rows):
            if not row:
                continue
            source = ids[position]
            for target in bit_indices(row):
                out.add((source, ids[target]))
        return out

    # -- algebra -----------------------------------------------------------------

    def union(self, other: "PackedRelation") -> "PackedRelation":
        return PackedRelation(
            self.node_count,
            [mine | theirs for mine, theirs in zip(self.rows, other.rows)],
        )

    def compose(self, other: "PackedRelation") -> "PackedRelation":
        """Relational composition: row ``i`` becomes the union of the other
        relation's rows over row ``i``'s set bits (a boolean matrix product
        computed word-parallel)."""
        other_rows = other.rows
        out = [0] * self.node_count
        for position, row in enumerate(self.rows):
            acc = 0
            while row:
                low = row & -row
                acc |= other_rows[low.bit_length() - 1]
                row ^= low
            out[position] = acc
        return PackedRelation(self.node_count, out)

    def transitive_closure(self) -> "PackedRelation":
        """``R+`` by in-place row sweeps to a fixpoint.

        Each sweep replaces row ``i`` with ``row[i] | union(row[j] for j in
        row[i])`` against the *current* rows, so reachability discovered
        early in a sweep accelerates later rows; sweeps repeat until no row
        changes.  Equivalent to the set-based semi-naive fixpoint.
        """
        rows = list(self.rows)
        changed = True
        while changed:
            changed = False
            for position, row in enumerate(rows):
                if not row:
                    continue
                acc = row
                pending = row
                while pending:
                    low = pending & -pending
                    acc |= rows[low.bit_length() - 1]
                    pending ^= low
                if acc != row:
                    rows[position] = acc
                    changed = True
        return PackedRelation(self.node_count, rows)

    def with_diagonal(self, universe: int) -> "PackedRelation":
        """Add the identity over a universe mask (``R`` → ``R ∪ id``)."""
        rows = list(self.rows)
        for position in bit_indices(universe):
            rows[position] |= 1 << position
        return PackedRelation(self.node_count, rows)

    def restrict(self, sources: int | None, targets: int | None) -> "PackedRelation":
        """Keep pairs with the source in ``sources`` and target in ``targets``
        (``None`` = unconstrained, mirroring the set-based ``restrict``)."""
        rows = self.rows
        out = [0] * self.node_count
        target_mask = -1 if targets is None else targets
        if sources is None:
            for position, row in enumerate(rows):
                out[position] = row & target_mask
        else:
            pending = sources
            while pending:
                low = pending & -pending
                position = low.bit_length() - 1
                out[position] = rows[position] & target_mask
                pending ^= low
        return PackedRelation(self.node_count, out)


class _MergedRows:
    """The lazily-unioned rows of several adjacency matrices.

    A frontier bucket like "every tag except one" would cost a full
    ``n``-row merge to materialize eagerly — per DFA state, per pool worker,
    exactly the startup the arena exists to avoid.  Instead the union of
    each row is computed the first time a frontier actually touches it and
    cached, so compile time is O(states) and the merge cost is bounded by
    the rows a search really visits.  Safe to race from threads: every
    writer stores the same value and list-item assignment is atomic under
    the GIL.
    """

    __slots__ = ("node_count", "_sources", "_rows")

    def __init__(self, matrices: Sequence[PackedAdjacency]) -> None:
        self.node_count = matrices[0].node_count
        self._sources: tuple[list[int], ...] = tuple(m.rows for m in matrices)
        self._rows: list[int | None] = [None] * self.node_count

    def propagate(self, mask: int) -> int:
        rows = self._rows
        sources = self._sources
        out = 0
        while mask:
            low = mask & -mask
            position = low.bit_length() - 1
            row = rows[position]
            if row is None:
                row = 0
                for source in sources:
                    row |= source[position]
                rows[position] = row
            out |= row
            mask ^= low
        return out


class PackedFrontier:
    """A compiled product frontier search: DFA × packed adjacency.

    The constructor pre-resolves, per DFA state, the list of live moves —
    ``(next state, row propagator)`` for every transition that is neither
    dead-state-bound nor over a tag absent from the run and macros — so each
    :meth:`search` round does one word-parallel ``propagate`` per live move
    instead of a per-edge dictionary probe.

    Tags a state sends to the *same* next state are merged into one
    propagator: a wildcard self-loop (every tag → same state, the ``_*``
    workhorse) costs a single propagation per frontier instead of one per
    tag.  When such a bucket covers every tag of ``by_tag`` the
    caller-provided ``any_tag`` matrix (the run view already memoizes it)
    is used directly; partial buckets union their rows lazily through
    :class:`_MergedRows`, keeping compilation — which runs in every pool
    worker — free of O(n · tags) work.
    """

    __slots__ = ("start", "accepting", "moves", "allowed")

    def __init__(
        self,
        by_tag: Mapping[str, PackedAdjacency],
        dfa: DFA,
        *,
        allowed: int,
        macros: Mapping[str, RowPropagator] | None = None,
        any_tag: PackedAdjacency | None = None,
    ) -> None:
        dead = dfa.dead_state()
        tag_count = len(by_tag)
        moves: list[list[tuple[int, RowPropagator]]] = []
        for state in range(dfa.state_count):
            entries: list[tuple[int, RowPropagator]] = []
            buckets: dict[int, list[PackedAdjacency]] = {}
            for tag, next_state in dfa.transitions[state].items():
                if next_state == dead:
                    continue
                adjacency = by_tag.get(tag)
                if adjacency is not None:
                    buckets.setdefault(next_state, []).append(adjacency)
                if macros:
                    macro = macros.get(tag)
                    if macro is not None:
                        entries.append((next_state, macro))
            for next_state, group in buckets.items():
                if len(group) == 1:
                    entries.append((next_state, group[0]))
                elif any_tag is not None and len(group) == tag_count:
                    entries.append((next_state, any_tag))
                else:
                    entries.append((next_state, _MergedRows(group)))
            moves.append(entries)
        self.start = dfa.start
        self.accepting: tuple[int, ...] = tuple(dfa.accepting)
        self.moves = moves
        self.allowed = allowed

    def search(self, seed_bit: int) -> int:
        """Mask of nodes some accepted path reaches from the seed bit index.

        The per-(node, state) bookkeeping of the set-based search collapses
        into one ``seen`` mask per DFA state; each worklist step advances a
        whole node-mask frontier through one DFA move word-parallel.
        """
        seed_mask = 1 << seed_bit
        if not seed_mask & self.allowed:
            return 0
        state_count = len(self.moves)
        seen = [0] * state_count
        seen[self.start] = seed_mask
        worklist: list[tuple[int, int]] = [(self.start, seed_mask)]
        while worklist:
            state, mask = worklist.pop()
            for next_state, propagator in self.moves[state]:
                fresh = propagator.propagate(mask) & self.allowed & ~seen[next_state]
                if fresh:
                    seen[next_state] |= fresh
                    worklist.append((next_state, fresh))
        result = 0
        for state in self.accepting:
            result |= seen[state]
        return result
