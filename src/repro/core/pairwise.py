"""Pairwise safe queries (Algorithm 1 of the paper).

Given the labels of two run nodes and a :class:`~repro.core.query_index.QueryIndex`
for a safe query, :func:`pairwise_reach_matrix` computes the relation

    ``M[q1][q2] = 1  iff  some path from u to v drives the DFA from q1 to q2``

by walking the two labels to their divergence point in the compressed parse
tree and composing specification-level transition matrices — exactly the
label decode of the reachability scheme, lifted from booleans to ``|Q| x |Q|``
matrices.  :func:`answer_pairwise_query` then just checks whether the start
state reaches an accepting state in that relation.

The running time is bounded by the label length (at most the compressed
parse-tree depth, itself bounded by the specification size) times ``|Q|^3``
for matrix products; it does not depend on the run size.  Recursion chains of
arbitrary length are collapsed through the cycle powers cached in the query
index.
"""

from __future__ import annotations

from repro.automata.boolean_matrix import BooleanMatrix
from repro.core.query_index import QueryIndex
from repro.errors import LabelError
from repro.labeling.labels import (
    Label,
    LabelStep,
    ProductionStep,
    RecursionStep,
    common_prefix_length,
)

__all__ = [
    "pairwise_reach_matrix",
    "answer_pairwise_query",
    "exit_step_matrix",
    "enter_step_matrix",
]


def _expect_production_step(label: Label, index: int) -> ProductionStep:
    if index >= len(label) or not isinstance(label[index], ProductionStep):
        raise LabelError(
            "label ends at a recursion-chain member; only labels of run nodes "
            "(atomic module executions) can be decoded"
        )
    return label[index]  # type: ignore[return-value]


def exit_step_matrix(index: QueryIndex, step: LabelStep) -> BooleanMatrix:
    """Transitions from the output of the node identified by ``step`` to the
    output of its parent context (one level of the exit walk).

    Public so the group-at-a-time decoder of :mod:`repro.core.allpairs` can
    accumulate the same walk as per-trie-node state vectors.
    """
    if isinstance(step, ProductionStep):
        return index.to_sink(step.production, step.position)
    # Climbing out of a recursion chain: from the output of chain child
    # ``ordinal`` to the output of chain child 0 (the whole chain expansion).
    return index.ascend_chain(step.cycle, step.start, step.ordinal - 1, 0)


def enter_step_matrix(index: QueryIndex, step: LabelStep) -> BooleanMatrix:
    """Transitions from the input of the parent context to the input of the
    node identified by ``step`` (one level of the entry walk).

    Public for the same reason as :func:`exit_step_matrix`.
    """
    if isinstance(step, ProductionStep):
        return index.from_source(step.production, step.position)
    # Descending into a recursion chain: from the input of chain child 0 to
    # the input of chain child ``ordinal``.
    return index.descend_chain(step.cycle, step.start, 0, step.ordinal - 1)


def _exit_matrix(index: QueryIndex, suffix: Label) -> BooleanMatrix:
    """Transitions from the node labeled by the full suffix up to the output
    of the suffix's topmost context (deepest step composed first)."""
    result = index.identity
    for step in reversed(suffix):
        result = result @ exit_step_matrix(index, step)
        if result.is_zero():
            return result
    return result


def _enter_matrix(index: QueryIndex, suffix: Label) -> BooleanMatrix:
    """Transitions from the input of the suffix's topmost context down to the
    node labeled by the full suffix (shallowest step composed first)."""
    result = index.identity
    for step in suffix:
        result = result @ enter_step_matrix(index, step)
        if result.is_zero():
            return result
    return result


def pairwise_reach_matrix(
    index: QueryIndex, label_u: Label, label_v: Label
) -> BooleanMatrix:
    """The DFA-state relation realized by paths from ``u`` to ``v``.

    Identical labels denote the same node and yield the identity relation
    (only the empty path).  Labels that cannot belong to the same run raise
    :class:`~repro.errors.LabelError`.
    """
    if label_u == label_v:
        return index.identity

    split = common_prefix_length(label_u, label_v)
    if split == len(label_u) or split == len(label_v):
        raise LabelError(
            "one label is a prefix of the other; labels of run nodes can never be nested"
        )
    step_u = label_u[split]
    step_v = label_v[split]

    if isinstance(step_u, ProductionStep) and isinstance(step_v, ProductionStep):
        if step_u.production != step_v.production:
            raise LabelError(
                "labels diverge with different productions under the same parse-tree node"
            )
        crossing = index.cross(step_u.production, step_u.position, step_v.position)
        if crossing.is_zero():
            return index.zero
        exit_part = _exit_matrix(index, label_u[split + 1 :])
        if exit_part.is_zero():
            return index.zero
        enter_part = _enter_matrix(index, label_v[split + 1 :])
        return exit_part @ crossing @ enter_part

    if isinstance(step_u, RecursionStep) and isinstance(step_v, RecursionStep):
        if step_u.cycle != step_v.cycle or step_u.start != step_v.start:
            raise LabelError("labels diverge with inconsistent recursion chains")
        cycle_index, start = step_u.cycle, step_u.start

        if step_u.ordinal < step_v.ordinal:
            # u sits under an earlier chain member: cross from u's branch to
            # the recursive position, then descend to v's chain member.
            branch = _expect_production_step(label_u, split + 1)
            production_index, recursive_position = index.cycle_production(
                cycle_index, start, step_u.ordinal
            )
            if branch.production != production_index:
                raise LabelError(
                    "a non-terminal chain member did not use its cycle production"
                )
            crossing = index.cross(production_index, branch.position, recursive_position)
            if crossing.is_zero():
                return index.zero
            exit_part = _exit_matrix(index, label_u[split + 2 :])
            if exit_part.is_zero():
                return index.zero
            descent = index.descend_chain(
                cycle_index, start, step_u.ordinal + 1, step_v.ordinal - 1
            )
            enter_part = _enter_matrix(index, label_v[split + 1 :])
            return exit_part @ crossing @ descent @ enter_part

        # u sits under a later (more deeply nested) chain member: climb out of
        # the nesting to v's chain member, then cross from the recursive
        # position to v's branch.
        branch = _expect_production_step(label_v, split + 1)
        production_index, recursive_position = index.cycle_production(
            cycle_index, start, step_v.ordinal
        )
        if branch.production != production_index:
            raise LabelError(
                "a non-terminal chain member did not use its cycle production"
            )
        crossing = index.cross(production_index, recursive_position, branch.position)
        if crossing.is_zero():
            return index.zero
        exit_part = _exit_matrix(index, label_u[split + 1 :])
        if exit_part.is_zero():
            return index.zero
        ascent = index.ascend_chain(
            cycle_index, start, step_u.ordinal - 1, step_v.ordinal + 1
        )
        enter_part = _enter_matrix(index, label_v[split + 2 :])
        return exit_part @ ascent @ crossing @ enter_part

    raise LabelError("labels diverge with mixed step kinds under the same parse-tree node")


def answer_pairwise_query(index: QueryIndex, label_u: Label, label_v: Label) -> bool:
    """Algorithm 1: does some path from ``u`` to ``v`` match the query?"""
    return index.accepts(pairwise_reach_matrix(index, label_u, label_v))
