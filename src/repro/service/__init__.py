"""Serving layer: batched multi-run queries over a shared index cache.

This package turns the single-spec, single-query
:class:`~repro.core.engine.ProvenanceQueryEngine` into a service-shaped
subsystem:

* :mod:`repro.service.cache` — a bounded, thread-safe LRU of per-query
  indexes keyed by ``(specification fingerprint, canonical query text)``,
  shared across engines, runs and requests;
* :mod:`repro.service.requests` — the batch request/result model and its
  JSONL wire format (used by ``repro batch``);
* :mod:`repro.service.service` — :class:`QueryService`, which registers many
  runs, deduplicates index builds across a batch and evaluates independent
  requests concurrently.
"""

from repro.core.exec import ExecutorConfig, WorkerBudget
from repro.service.cache import CacheStats, IndexCache
from repro.service.requests import (
    BatchFormatError,
    QueryRequest,
    QueryResult,
    read_requests_jsonl,
    request_from_dict,
    request_to_dict,
    result_to_dict,
)
from repro.service.service import QueryService

__all__ = [
    "BatchFormatError",
    "CacheStats",
    "ExecutorConfig",
    "IndexCache",
    "WorkerBudget",
    "QueryRequest",
    "QueryResult",
    "QueryService",
    "read_requests_jsonl",
    "request_from_dict",
    "request_to_dict",
    "result_to_dict",
]
