"""The multi-run batch query service.

A :class:`QueryService` is the serving-layer counterpart of
:class:`~repro.core.engine.ProvenanceQueryEngine`: where an engine wraps one
specification, the service hosts *many* registered runs (typically loaded
from the JSON files written by ``repro derive``) and answers *batches* of
pairwise / all-pairs / reachability requests against them, all through one
shared bounded :class:`~repro.service.cache.IndexCache`.

What the service adds over bare engines:

* **cross-run, cross-query index sharing** — runs of the same grammar share
  one engine (keyed by specification fingerprint), and equivalent query
  spellings share one cached index, so a batch that asks ``a|b`` of run 1
  and ``b|a`` of run 2 builds a single index;
* **batch-level build deduplication** — before evaluation, the distinct
  ``(spec, query)`` pairs of a batch are pre-built once (concurrently), so
  a thousand requests sharing three queries pay for three index builds;
* **concurrent evaluation** — independent requests of a batch are evaluated
  on a thread pool; results come back in request order, and one failing
  request becomes an error *result* instead of aborting the batch;
* **warm restarts** — with ``store_dir=`` the cache gains a persistent disk
  tier (:mod:`repro.store`) and the run registry survives the process, so a
  restarted service answers previously-seen queries without rebuilding a
  single index or plan.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

import dataclasses

from repro.core.decomposition import label_routed_subtrees, warm_frontier_dfa
from repro.core.engine import ProvenanceQueryEngine
from repro.core.exec import ExecutorConfig, WorkerBudget
from repro.errors import ReproError
from repro.obs import SpanContext, clock, get_registry, get_tracer
from repro.service.cache import CacheStats, IndexCache
from repro.store import IndexStore
from repro.service.requests import (
    BatchFormatError,
    QueryRequest,
    QueryResult,
    request_from_dict,
)
from repro.workflow.run import Run
from repro.workflow.serialization import load_run

__all__ = ["QueryService"]

_DEFAULT_CACHE_ENTRIES = 512


def _default_workers() -> int:
    return min(32, (os.cpu_count() or 1) + 4)


def _same_run(left: Run, right: Run) -> bool:
    """Content equality of two runs (grammar by fingerprint, graph by parts);
    object identity and display names do not matter."""
    return (
        left.spec.fingerprint == right.spec.fingerprint
        and left.nodes == right.nodes
        and left.edges == right.edges
    )


class QueryService:
    """Serve query batches over a set of registered runs (see module notes).

    Parameters
    ----------
    cache:
        The shared index cache; a bounded default is created when omitted.
        Passing an explicit cache lets several services (or services plus
        standalone engines) pool their per-query work.
    max_workers:
        Thread-pool width for batch evaluation and index pre-building.
    store_dir / store:
        A persistent tier (:class:`~repro.store.IndexStore`, or a directory
        to create one in).  The store backs the index cache (memory → disk →
        build) *and* persists the run registry: previously registered runs —
        labels included, so no re-labeling — are re-registered on
        construction, which is what lets a restarted service answer its first
        previously-seen query with zero index or plan rebuilds.
    executor:
        The default :class:`~repro.core.exec.ExecutorConfig` for unsafe-query
        evaluation (frontier direction, per-query parallel fan-out, merge
        order).  The service attaches its own :class:`WorkerBudget` of
        ``max_workers`` slots, *shared with the batch pool*: each in-flight
        batch request leases one slot, and a parallel frontier execution
        leases its fan-out from the free remainder — so a saturated batch
        degrades frontier searches to serial instead of oversubscribing.
    """

    def __init__(
        self,
        *,
        cache: IndexCache | None = None,
        max_workers: int | None = None,
        store_dir: str | Path | None = None,
        store: IndexStore | None = None,
        executor: ExecutorConfig | None = None,
    ) -> None:
        if store is None and store_dir is not None:
            store = IndexStore(store_dir)
        if cache is None:
            cache = IndexCache(_DEFAULT_CACHE_ENTRIES, store=store)
        elif store is not None:
            # Raises if the cache already persists in a *different* directory:
            # splitting the run registry and the index entries across two
            # stores would silently break the warm-restart contract.  For the
            # same directory the cache keeps its original instance — adopt it
            # so the registry and the entries share one set of counters.
            cache.attach_store(store)
            store = cache.store
        elif cache.store is not None:
            # No explicit store, but the cache has one: keep the registry and
            # the entries together in that store.
            store = cache.store
        self._store = store
        self._cache = cache
        self._max_workers = max_workers if max_workers is not None else _default_workers()
        if self._max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._budget = WorkerBudget(self._max_workers)
        self._executor = self._with_budget(executor or ExecutorConfig())
        self._lock = threading.Lock()
        self._runs: dict[str, Run] = {}  # guarded-by: _lock
        self._engines: dict[str, ProvenanceQueryEngine] = {}  # guarded-by: _lock
        # The persisted registry is adopted by id only (filenames, no
        # parsing); run content loads lazily on first use, so restart cost
        # does not grow with the registry.
        self._pending_run_ids: set[str] = (  # guarded-by: _lock
            set(store.run_ids()) if store is not None else set()
        )
        # Observability: request latencies go to a histogram; state that
        # already lives behind the cache's and budget's own locks is polled
        # through a collector instead of being counted twice.  A newer
        # service instance re-registers the collector name and the snapshot
        # follows it (exactly the registry's replacement semantics).
        registry = get_registry()
        self._latency = registry.histogram(
            "repro_service_request_seconds", "batch request latency"
        )
        registry.register_collector("query_service", self._collect_metrics)

    def _collect_metrics(self) -> dict[str, float]:
        """The polled gauges of this service's live state."""
        stats = self._cache.stats
        return {
            "repro_cache_entries": float(stats.entries),
            "repro_cache_total_cost": float(stats.total_cost),
            "repro_worker_budget_capacity": float(self._budget.capacity),
            "repro_worker_budget_in_use": float(self._budget.in_use),
        }

    def _with_budget(self, config: ExecutorConfig) -> ExecutorConfig:
        """A copy of ``config`` leasing its fan-out from this service's
        shared worker budget (an existing budget is respected)."""
        if config.budget is not None:
            return config
        return dataclasses.replace(config, budget=self._budget)

    @property
    def executor(self) -> ExecutorConfig:
        """The default executor configuration (budget attached)."""
        return self._executor

    # -- registration ------------------------------------------------------------

    def register_run(self, run: Run, run_id: str | None = None) -> str:
        """Register a run under ``run_id`` (default ``run-<n>``); returns the id.

        Re-registering the *same* run content under an existing id is a
        no-op returning the id (so restarting against a persistent registry
        and then replaying the original registrations is idempotent); a
        *different* run under a taken id still raises.
        """
        return self._register(run, run_id, persist=True)

    def _register(self, run: Run, run_id: str | None, persist: bool) -> str:
        if run_id is not None:
            # Materialize a same-named persisted run first, so the content
            # equality check below compares against it instead of silently
            # shadowing (and overwriting) what the registry already holds.
            self._materialize(run_id)
        with self._lock:
            if run_id is None:
                taken = set(self._runs) | self._pending_run_ids
                counter = len(taken) + 1
                while f"run-{counter}" in taken:
                    counter += 1
                run_id = f"run-{counter}"
            existing = self._runs.get(run_id)
            if existing is not None:
                if _same_run(existing, run):
                    return run_id
                raise ValueError(f"run id {run_id!r} is already registered")
            fingerprint = run.spec.fingerprint
            if fingerprint not in self._engines:
                self._engines[fingerprint] = ProvenanceQueryEngine(
                    run.spec, cache=self._cache
                )
            self._runs[run_id] = run
        # Build the packed interning table once at registration, outside the
        # lock: every packed-kernel join/closure and every arena pack reuses
        # this memo, so the first query never pays the interning cost.
        _ = run.packed
        if persist and self._store is not None:
            self._store.save_run(run_id, run)
        return run_id

    def _materialize(self, run_id: str) -> Run | None:
        """Load a pending persisted run into the registry (idempotent).

        An unreadable artifact drops out of the pending set — the store
        counted the corruption — so the service keeps serving everything
        else; concurrent loads are harmless because registration of
        identical content is a no-op.
        """
        with self._lock:
            run = self._runs.get(run_id)
            pending = run is None and run_id in self._pending_run_ids
        if run is not None or not pending:
            return run
        loaded = self._store.load_run(run_id) if self._store is not None else None
        with self._lock:
            self._pending_run_ids.discard(run_id)
        if loaded is None:
            return None
        self._register(loaded, run_id, persist=False)
        with self._lock:
            return self._runs.get(run_id)

    def load_run_file(self, path: str | Path, run_id: str | None = None) -> str:
        """Load a run JSON file (see ``repro derive``) and register it.

        The default id is the file stem, so ``runs/r7.json`` registers as
        ``r7``.
        """
        path = Path(path)
        return self.register_run(load_run(path), run_id=run_id or path.stem)

    def run_ids(self) -> tuple[str, ...]:
        """All registered run ids, including persisted runs not yet loaded."""
        with self._lock:
            return tuple(sorted(set(self._runs) | self._pending_run_ids))

    def get_run(self, run_id: str) -> Run:
        with self._lock:
            run = self._runs.get(run_id)
        if run is None:
            run = self._materialize(run_id)
        if run is None:
            raise KeyError(
                f"unknown run id {run_id!r}; registered runs: {list(self.run_ids())}"
            )
        return run

    def engine_for(self, run_id: str) -> ProvenanceQueryEngine:
        """The shared engine serving the given run's specification."""
        run = self.get_run(run_id)
        with self._lock:
            return self._engines[run.spec.fingerprint]

    # -- cache -------------------------------------------------------------------

    @property
    def cache(self) -> IndexCache:
        return self._cache

    @property
    def store(self) -> IndexStore | None:
        """The persistent tier backing this service, when configured."""
        return self._store

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    def warm(self, run_id: str, queries: Iterable[str]) -> dict[str, str]:
        """Pre-build the per-query state of the given queries for a run's
        grammar and report what happened, query by query.

        Safe queries get their :class:`~repro.core.query_index.QueryIndex`
        cached; unsafe queries get their decomposition plan cached plus the
        indexes of exactly the safe subqueries the evaluator's cost routing
        will send to the labeling engine on this run, so the first real
        request pays no per-query build either way.  The returned mapping
        holds one status per query: ``"safe"``, ``"unsafe: ..."``, or
        ``"error: ..."`` for queries the library rejects (typos included —
        only :class:`~repro.errors.ReproError` is caught, anything else is a
        bug and propagates).
        """
        run = self.get_run(run_id)
        return {query: self._probe(run, query) for query in queries}

    def _probe(self, run: Run, query: str) -> str:
        """Warm the cache for one query and describe the outcome.

        Expected per-query failures (:class:`~repro.errors.ReproError`:
        syntax errors, bad queries) become an ``"error: ..."`` status — they
        resurface as error results when the query is actually evaluated —
        while unexpected exceptions propagate instead of being swallowed.
        """
        spec = run.spec
        try:
            if self._cache.safety(spec, query).is_safe:
                self._cache.index(spec, query)
                return "safe"
            plan = self._cache.plan(spec, query)
            routed = label_routed_subtrees(plan, run)
            for subtree in routed:
                self._cache.index(spec, subtree)
            # Memoize the frontier strategy's macro DFAs — forward and
            # reversed, so backward searches restart warm too — for this
            # run's routing, then re-account/persist the entry so the DFAs
            # count against the cache budget and survive restarts with the
            # plan.
            warm_frontier_dfa(plan, run)
            warm_frontier_dfa(plan, run, direction="backward")
            self._cache.sync(spec, query)
            warmed = len(routed)
            return (
                f"unsafe: plan cached, {warmed} safe "
                f"subquer{'y' if warmed == 1 else 'ies'} warmed"
            )
        except ReproError as error:
            return f"error: {error}"

    # -- evaluation --------------------------------------------------------------

    def execute(self, request: QueryRequest | Mapping[str, Any]) -> QueryResult:
        """Evaluate one request, returning an error result on failure."""
        return self._execute(self._coerce(request), position=0)

    def run_batch(
        self, requests: Iterable[QueryRequest | Mapping[str, Any]]
    ) -> list[QueryResult]:
        """Evaluate a batch concurrently; results are in request order."""
        return list(self.iter_batch(requests))

    def iter_batch(
        self, requests: Iterable[QueryRequest | Mapping[str, Any]]
    ) -> Iterator[QueryResult]:
        """Stream batch results in request order as they become available.

        Unlike :meth:`run_batch` this never holds the whole result list:
        each result is yielded as soon as it (and its predecessors) finish.
        """
        batch = [self._coerce(request) for request in requests]
        if not batch:
            return iter(())

        def generate() -> Iterator[QueryResult]:
            tracer = get_tracer()
            with tracer.span("service.batch", requests=len(batch)) as batch_span:
                # Pool threads carry no span stack of their own: each request
                # is handed the batch span's context and re-attaches it, so
                # its service.request span nests here instead of floating.
                parent = batch_span.context if tracer.enabled else None
                pool = ThreadPoolExecutor(max_workers=self._max_workers)
                try:
                    self._prebuild(batch, pool)
                    futures = [
                        pool.submit(self._execute, request, position, parent)
                        for position, request in enumerate(batch)
                    ]
                    for future in futures:
                        yield future.result()
                finally:
                    pool.shutdown(wait=True)

        return generate()

    def stream_pairs(
        self,
        request: QueryRequest | Mapping[str, Any],
        *,
        executor: ExecutorConfig | None = None,
    ) -> Iterator[tuple[str, str]]:
        """Stream the matching pairs of one ``allpairs`` request.

        Unlike :meth:`execute`, the pairs are yielded as the evaluator finds
        them (unsorted, each exactly once) without materializing the result
        set, so callers can cap, paginate or pipe arbitrarily large answers.
        Unsafe queries stream too, through the executor layer's per-seed
        frontier search (direction-aware, optionally fanned across a worker
        pool — memory bounded by the reachable region, not the result; see
        :meth:`ProvenanceQueryEngine.evaluate_iter`).  ``executor`` overrides
        the service default for this call; either way the fan-out leases its
        workers from the budget shared with the batch pool.  Failures raise
        instead of becoming error results, since there is no result record
        to carry them; request validation, run lookup, query parsing and the
        safety check all happen eagerly, before the first pair is drawn.
        """
        request = self._coerce(request)
        if request.op != "allpairs":
            raise BatchFormatError(
                f"stream_pairs only supports op 'allpairs', got {request.op!r}"
            )
        run = self.get_run(request.run)
        engine = self.engine_for(request.run)
        config = self._with_budget(executor) if executor is not None else self._executor
        return engine.evaluate_iter(
            run,
            request.query,
            list(request.sources) if request.sources is not None else None,
            list(request.targets) if request.targets is not None else None,
            use_reachability_filter=request.use_reachability_filter,
            executor=config,
        )

    def _coerce(self, request: QueryRequest | Mapping[str, Any]) -> QueryRequest:
        if isinstance(request, QueryRequest):
            return request
        return request_from_dict(dict(request))

    def _prebuild(self, batch: Sequence[QueryRequest], pool: ThreadPoolExecutor) -> None:
        """Build each distinct ``(spec, canonical query)`` of the batch once."""
        work: dict[tuple[str, str], tuple[Run, str]] = {}
        for request in batch:
            if request.query is None:
                continue
            try:
                run = self.get_run(request.run)
                key = IndexCache.key_for(run.spec, request.query)
            except Exception:
                continue  # unknown run / unparsable query: reported per request
            if key not in work and not self._cache.contains_key(key):
                work[key] = (run, request.query)
        if not work:
            return
        for future in [
            pool.submit(self._probe, run, query) for run, query in work.values()
        ]:
            try:
                future.result()
            except Exception:
                # Pre-building is best-effort: whatever went wrong resurfaces
                # as that request's error result during evaluation.
                pass

    def _execute(
        self,
        request: QueryRequest,
        position: int,
        parent: SpanContext | None = None,
    ) -> QueryResult:
        request_id = request.request_id if request.request_id is not None else str(position)
        tracer = get_tracer()
        started = clock.now()

        def fail(message: str) -> QueryResult:
            elapsed = clock.now() - started
            self._latency.observe(elapsed)
            return QueryResult(
                request_id=request_id,
                op=request.op,
                run=request.run,
                ok=False,
                error=message,
                elapsed=elapsed,
            )

        with tracer.attach(parent), tracer.span(
            "service.request", op=request.op, run=request.run
        ) as span:
            try:
                run = self.get_run(request.run)
            except KeyError as error:
                span.set("ok", False)
                return fail(str(error).strip('"'))
            engine = self.engine_for(request.run)
            try:
                answer: bool | None = None
                pairs: tuple[tuple[str, str], ...] | None = None
                if request.op == "reachability":
                    answer = engine.reachable(run, request.source, request.target)
                elif request.op == "pairwise":
                    if engine.is_safe(request.query):
                        answer = engine.pairwise(
                            run, request.source, request.target, request.query
                        )
                    else:
                        answer = (request.source, request.target) in engine.evaluate(
                            run,
                            request.query,
                            [request.source],
                            [request.target],
                            use_reachability_filter=request.use_reachability_filter,
                        )
                else:  # allpairs — the only remaining validated op
                    # Materializing anyway, so let evaluate() cost-route the
                    # unsafe remainder instead of forcing the streaming path.
                    # The request leases one budget slot for its own thread;
                    # a parallel frontier execution inside leases its fan-out
                    # from whatever the rest of the batch leaves free.
                    with self._budget.lease(1):
                        matches = engine.evaluate(
                            run,
                            request.query,
                            list(request.sources) if request.sources is not None else None,
                            list(request.targets) if request.targets is not None else None,
                            use_reachability_filter=request.use_reachability_filter,
                            executor=self._executor,
                        )
                    pairs = tuple(sorted(matches))
            except Exception as error:
                span.set("ok", False)
                return fail(f"{type(error).__name__}: {error}")
            span.set("ok", True)
            elapsed = clock.now() - started
            self._latency.observe(elapsed)
            return QueryResult(
                request_id=request_id,
                op=request.op,
                run=request.run,
                ok=True,
                answer=answer,
                pairs=pairs,
                elapsed=elapsed,
            )

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> str:
        with self._lock:
            runs = len(set(self._runs) | self._pending_run_ids)
            engines = len(self._engines)
        executor = self._executor
        return (
            f"QueryService({runs} runs, {engines} grammars, "
            f"workers={self._max_workers}, "
            f"executor=direction:{executor.direction}/fanout:{executor.workers}) "
            f"{self._cache.stats.describe()}"
        )
