"""A bounded, shared cache of per-query indexes.

The paper's query-time cost splits into a *per-query* part (minimal DFA,
safety analysis, transition matrices — Fig. 13a/b's "overhead") and a
*per-pair* part that is constant once the index exists.  At service scale the
per-query part dominates, so this module centralises it behind one
thread-safe LRU keyed by ``(specification fingerprint, canonical query
text)``:

* the fingerprint (:attr:`~repro.workflow.spec.Specification.fingerprint`)
  makes independently constructed but identical grammars share entries, and
* the canonical query text (:func:`~repro.automata.regex.canonical_query_text`)
  makes syntactically different but equivalent spellings (``a|b`` vs
  ``b|a``, redundant parentheses, ``(e*)*``) hit the same entry.

One entry stores the :class:`~repro.core.safety.SafetyReport`, — for safe
queries — the :class:`~repro.core.query_index.QueryIndex` built from it, and
— on demand — the :class:`~repro.core.decomposition.DecompositionPlan`, so a
safety probe followed by an index build runs the DFA pipeline once and an
unsafe query is planned once per specification instead of once per request.
Unsafe verdicts are cached too: re-asking about an unsafe query is a hit.
Planning probes subtree safety through the cache itself, so the safe
subqueries' reports and indexes land in the cache as a side effect.

The cache is bounded by entry count and, optionally, by total "cost" (the
sum of ``|Q|²`` over cached DFAs plus the memoized macro DFAs of attached
plans — a proxy for the boolean-matrix memory an entry pins).  Eviction is
least-recently-used.  Builds for distinct keys run concurrently; concurrent
requests for the *same* key are deduplicated with a per-key build lock so the
work happens once.

A persistent second tier can sit underneath: with ``store=``
(:class:`~repro.store.IndexStore`) a memory miss first consults the disk
store — a hit reconstructs the entry with *zero* safety checks, index builds
or plan builds — and every build (and plan attach) is written back, so a
fresh process starts warm from whatever earlier processes computed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.automata.regex import (
    RegexNode,
    canonical_query_text,
    canonicalize_regex,
    parse_regex,
)
from repro.core.decomposition import DecompositionPlan, plan_decomposition
from repro.core.query_index import QueryIndex
from repro.core.safety import SafetyReport, analyze_safety, query_dfa
from repro.errors import UnsafeQueryError
from repro.obs import get_registry, get_tracer
from repro.workflow.spec import Specification

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import IndexStore

__all__ = ["CacheStats", "IndexCache"]

CacheKey = tuple[str, str]


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    index_builds: int = 0
    safety_checks: int = 0
    plan_builds: int = 0
    entries: int = 0
    total_cost: int = 0
    # Disk-tier counters; all zero when no store is attached.
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    store_errors: int = 0
    store_evictions: int = 0
    store_skipped_writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> str:
        text = (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.1%}, evictions={self.evictions}, "
            f"index_builds={self.index_builds}, entries={self.entries}"
        )
        if self.store_hits or self.store_misses or self.store_writes:
            text += (
                f", store_hits={self.store_hits}, store_misses={self.store_misses}, "
                f"store_writes={self.store_writes}"
            )
        return text + ")"


@dataclass
class _Entry:
    """One cached query: its safety report, (when safe) its index, and (once
    requested) its decomposition plan.  ``plan_mutations`` is the plan's
    mutation count at the last persist, so memo growth that changes no cost
    (direction decisions) still triggers a re-persist."""

    report: SafetyReport
    index: QueryIndex | None
    cost: int
    plan: DecompositionPlan | None = None
    plan_mutations: int = -1


class IndexCache:
    """Thread-safe LRU of ``(spec fingerprint, canonical query)`` → index.

    Parameters
    ----------
    max_entries:
        Upper bound on cached queries; the least recently used entry is
        evicted first.  Must be at least 1.
    max_cost:
        Optional bound on the summed ``state_count²`` of cached DFAs (plus
        attached plans' macro DFAs).  The most recently inserted entry is
        never evicted, so a single oversized query still gets cached (and
        evicts everything older).
    store:
        Optional persistent second tier (:class:`~repro.store.IndexStore`).
        Lookups fall back to it before building, and builds are written back,
        so entries survive process restarts.
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_cost: int | None = None,
        store: "IndexStore | None" = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_cost is not None and max_cost < 1:
            raise ValueError("max_cost must be positive (or None for unbounded)")
        self.max_entries = max_entries
        self.max_cost = max_cost
        self._lock = threading.Lock()
        self._store = store  # guarded-by: _lock
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()  # guarded-by: _lock
        self._total_cost = 0  # guarded-by: _lock
        self._build_locks: dict[CacheKey, threading.Lock] = {}  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._index_builds = 0  # guarded-by: _lock
        self._safety_checks = 0  # guarded-by: _lock
        self._plan_builds = 0  # guarded-by: _lock
        # Process-wide metrics mirror the per-instance counters above (the
        # instruments are leaf locks, safe to bump under ``_lock``); the
        # dataclass snapshot stays the per-cache schema-stable surface.
        registry = get_registry()
        self._hit_counter = registry.counter(
            "repro_cache_hits_total", "in-memory index-cache hits"
        )
        self._miss_counter = registry.counter(
            "repro_cache_misses_total", "in-memory index-cache misses"
        )
        self._eviction_counter = registry.counter(
            "repro_cache_evictions_total", "index-cache LRU evictions"
        )
        self._build_counter = registry.counter(
            "repro_cache_index_builds_total", "query index builds"
        )
        self._safety_counter = registry.counter(
            "repro_cache_safety_checks_total", "query safety analyses"
        )
        self._plan_counter = registry.counter(
            "repro_cache_plan_builds_total", "decomposition plan builds"
        )

    # -- keys --------------------------------------------------------------------

    @staticmethod
    def key_for(spec: Specification, query: str | RegexNode) -> CacheKey:
        """The cache key of a query against a specification."""
        return (spec.fingerprint, canonical_query_text(query))

    # -- lookups -----------------------------------------------------------------

    def safety(self, spec: Specification, query: str | RegexNode) -> SafetyReport:
        """The (cached) safety analysis of a query against a specification."""
        return self._lookup(spec, query).report

    def index(self, spec: Specification, query: str | RegexNode) -> QueryIndex:
        """The (cached) :class:`QueryIndex` of a safe query.

        Raises :class:`~repro.errors.UnsafeQueryError` for unsafe queries;
        the unsafe verdict itself is cached, so repeated probes are cheap.
        """
        entry = self._lookup(spec, query)
        if entry.index is None:
            report = entry.report
            raise UnsafeQueryError(
                f"query {canonical_query_text(query)!r} is not safe for "
                f"specification {spec.name!r}; "
                f"{len(report.violations)} inconsistent module(s): "
                f"{sorted({violation.module for violation in report.violations})}"
            )
        return entry.index

    def plan(self, spec: Specification, query: str | RegexNode) -> DecompositionPlan:
        """The (cached) safe-subtree decomposition plan of a query.

        The plan is built from the query's canonical form (so equivalent
        spellings share one plan) and memoizes its own cost-routing and macro
        DFAs, which is what lets a service answer repeated unsafe queries
        without re-planning.  Subtree safety is probed through this cache, so
        planning also warms the safe subqueries' reports and indexes.

        Every call re-accounts the entry's cost: the plan (and any macro DFAs
        memoized since the last call) now counts against ``max_cost``, and a
        changed entry is re-persisted to the store.
        """
        node = parse_regex(query)
        key = self.key_for(spec, node)
        entry = self._lookup(spec, node)
        plan = entry.plan
        if plan is None:
            plan = plan_decomposition(
                spec,
                canonicalize_regex(node),
                is_safe=lambda subtree: self.safety(spec, subtree).is_safe,
            )
            # Planning probed subtrees through the cache, which may have
            # evicted the root's entry in a tightly bounded cache — re-fetch
            # so the plan is attached to the entry that is actually cached.
            entry = self._lookup(spec, node)
            with self._lock:
                self._plan_builds += 1
                # Benign race: concurrent builders produce equivalent plans
                # and the last one wins.
                entry.plan = plan
            self._plan_counter.inc()
            self._reaccount(key, entry)
            self._persist(key, entry)
        elif self._reaccount(key, entry) or self._plan_stale(entry):
            # Macro DFAs or direction decisions memoized since the last call
            # grew the plan; re-persist so the store copy carries them too.
            self._persist(key, entry)
        return plan

    def sync(self, spec: Specification, query: str | RegexNode) -> None:
        """Re-account a cached entry's cost and, if it changed, re-persist it.

        Evaluators memoize macro DFAs on a plan *after* the entry was
        inserted; warm-up paths call this so both the ``max_cost`` budget and
        the store copy reflect the plan's real footprint.  Unknown or evicted
        keys are a no-op.
        """
        key = self.key_for(spec, query)
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return
        changed = self._reaccount(key, entry)
        if changed or self._plan_stale(entry):
            self._persist(key, entry)

    def prepare(self, spec: Specification, query: str | RegexNode) -> None:
        """Ensure the query's entry (safety report plus, when safe, its
        index) is cached, without raising for unsafe queries."""
        self._lookup(spec, query)

    def contains(self, spec: Specification, query: str | RegexNode) -> bool:
        """Is the query cached (without touching recency or statistics)?"""
        return self.contains_key(self.key_for(spec, query))

    def contains_key(self, key: CacheKey) -> bool:
        """Membership test for a precomputed key (no parsing under the lock)."""
        with self._lock:
            return key in self._entries

    def entry_count_for(self, fingerprint: str) -> int:
        """Number of cached entries belonging to one specification
        fingerprint (what an engine sharing this cache should report as its
        own, rather than the whole cache's entry count)."""
        with self._lock:
            return sum(1 for spec_print, _ in self._entries if spec_print == fingerprint)

    # -- internals ---------------------------------------------------------------

    def _lookup(self, spec: Specification, query: str | RegexNode) -> _Entry:
        node = parse_regex(query)
        key = self.key_for(spec, node)
        with get_tracer().span("cache.lookup") as span:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._hits += 1
                    self._hit_counter.inc()
                    self._entries.move_to_end(key)
                    span.set("hit", True)
                    return entry
                build_lock = self._build_locks.setdefault(key, threading.Lock())
            # Build outside the cache lock so distinct keys build in parallel;
            # the per-key lock makes concurrent requests for one key build once.
            with build_lock:
                try:
                    with self._lock:
                        entry = self._entries.get(key)
                        if entry is not None:
                            self._hits += 1
                            self._hit_counter.inc()
                            self._entries.move_to_end(key)
                            span.set("hit", True)
                            return entry
                    entry = self._restore(spec, key)
                    span.set("restored", entry is not None)
                    if entry is None:
                        entry = self._build_coordinated(spec, node, key)
                    with self._lock:
                        self._misses += 1
                        self._miss_counter.inc()
                        self._insert(key, entry)
                    span.set("hit", False)
                    return entry
                finally:
                    with self._lock:
                        self._build_locks.pop(key, None)

    def _build_coordinated(
        self, spec: Specification, node: RegexNode, key: CacheKey
    ) -> _Entry:
        """Build an entry, coordinating with other *processes* through the
        store's per-entry lock file when a store is attached.

        The in-process build lock already deduplicates threads; the store
        lock extends that across a fleet sharing one volume: the loser waits
        on the winner's lock, then finds the finished artifact on disk and
        restores it instead of rebuilding.  An unacquirable lock (timeout,
        read-only volume) degrades to a plain duplicated build.
        """
        store = self.store
        if store is None:
            return self._build(spec, node, key)
        with store.entry_lock(key[0], key[1]) as acquired:
            if acquired:
                # Another process may have finished while we waited.
                entry = self._restore(spec, key)
                if entry is not None:
                    return entry
            entry = self._build(spec, node, key)
            self._persist(key, entry)
        return entry

    def _build(self, spec: Specification, node: RegexNode, key: CacheKey) -> _Entry:
        with get_tracer().span("cache.build") as span:
            dfa = query_dfa(spec, node)
            report = analyze_safety(spec, dfa)
            with self._lock:
                self._safety_checks += 1
            self._safety_counter.inc()
            index: QueryIndex | None = None
            if report.is_safe:
                # Reuse the safety analysis instead of calling build_query_index,
                # which would redo the DFA construction and the fixpoint.
                index = QueryIndex(
                    spec=spec, dfa=report.dfa, lambdas=report.lambdas, query_text=key[1]
                )
                with self._lock:
                    self._index_builds += 1
                self._build_counter.inc()
            span.set("safe", report.is_safe)
            span.set("states", report.dfa.state_count)
            return _Entry(report=report, index=index, cost=report.dfa.state_count**2)

    @staticmethod
    def _entry_cost(entry: _Entry) -> int:
        cost = entry.report.dfa.state_count**2
        if entry.plan is not None:
            cost += entry.plan.cost()
        return cost

    def _restore(self, spec: Specification, key: CacheKey) -> _Entry | None:
        """Second-tier lookup: reconstruct an entry from the store, if any.

        A restored entry increments no build counters — that is the point of
        the store — but its cost is re-derived so the budget stays honest.
        """
        store = self.store
        if store is None:
            return None
        with get_tracer().span("cache.restore") as span:
            stored = store.load(spec, key[1])
            span.set("hit", stored is not None)
        if stored is None:
            return None
        entry = _Entry(report=stored.report, index=stored.index, cost=0, plan=stored.plan)
        entry.cost = self._entry_cost(entry)
        if entry.plan is not None:
            # The restored plan *is* the store copy: mark it persisted as-is,
            # or the first plan()/sync() after every warm restart would
            # re-serialize the entry only for the content-addressed skip to
            # throw the write away.
            entry.plan_mutations = entry.plan.mutations
        return entry

    @staticmethod
    def _plan_stale(entry: _Entry) -> bool:
        """Has the attached plan memoized anything since the last persist?"""
        return entry.plan is not None and entry.plan.mutations != entry.plan_mutations

    def _persist(self, key: CacheKey, entry: _Entry) -> None:
        """Write an entry through to the store (no-op without one; the store
        swallows and counts its own failures)."""
        store = self.store
        if store is not None:
            if entry.plan is not None:
                entry.plan_mutations = entry.plan.mutations
            store.save(
                key[0], key[1], report=entry.report, index=entry.index, plan=entry.plan
            )

    def _reaccount(self, key: CacheKey, entry: _Entry) -> bool:
        """Recompute an entry's cost (e.g. after a plan attach or new macro
        DFA memoization) and re-run eviction; returns whether it changed."""
        cost = self._entry_cost(entry)
        with self._lock:
            if cost == entry.cost:
                return False
            if self._entries.get(key) is entry:
                self._total_cost += cost - entry.cost
                entry.cost = cost
                self._evict_over_budget()
            else:
                entry.cost = cost
            return True

    def _insert(self, key: CacheKey, entry: _Entry) -> None:  # holds-lock: _lock
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._total_cost -= previous.cost
        self._entries[key] = entry
        self._total_cost += entry.cost
        self._evict_over_budget()

    def _evict_over_budget(self) -> None:  # holds-lock: _lock
        """LRU-evict down to the configured bounds (cache lock held)."""
        while len(self._entries) > 1 and (
            len(self._entries) > self.max_entries
            or (self.max_cost is not None and self._total_cost > self.max_cost)
        ):
            _, evicted = self._entries.popitem(last=False)
            self._total_cost -= evicted.cost
            self._evictions += 1
            self._eviction_counter.inc()

    # -- management --------------------------------------------------------------

    @property
    def store(self) -> "IndexStore | None":
        """The persistent second tier, when one is attached."""
        with self._lock:
            return self._store

    def attach_store(self, store: "IndexStore") -> None:
        """Attach a persistent tier after construction (used by
        :class:`~repro.service.service.QueryService` when it is handed an
        explicit cache plus a ``store_dir``).  A second store for the *same*
        directory keeps the already-attached instance (and its counters); a
        store for a different directory is refused, because splitting entries
        across stores would silently break warm restarts."""
        with self._lock:
            if self._store is not None and self._store is not store:
                if Path(self._store.root).resolve() != Path(store.root).resolve():
                    raise ValueError("cache already has a different store attached")
                return
            self._store = store

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        with self._lock:
            self._entries.clear()
            self._total_cost = 0

    @property
    def stats(self) -> CacheStats:
        attached = self.store
        store = attached.counters if attached is not None else None
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                index_builds=self._index_builds,
                safety_checks=self._safety_checks,
                plan_builds=self._plan_builds,
                entries=len(self._entries),
                total_cost=self._total_cost,
                store_hits=store.hits if store else 0,
                store_misses=store.misses if store else 0,
                store_writes=store.writes if store else 0,
                store_errors=store.errors if store else 0,
                store_evictions=store.evictions if store else 0,
                store_skipped_writes=store.skipped_writes if store else 0,
            )

    def describe(self) -> str:
        stats = self.stats
        bounds = f"max_entries={self.max_entries}"
        if self.max_cost is not None:
            bounds += f", max_cost={self.max_cost}"
        return f"IndexCache({bounds}) {stats.describe()}"
