"""Request/result model of the batch query service, with JSONL transport.

A batch is a sequence of independent :class:`QueryRequest` records, each
naming a registered run and one of three operations:

``pairwise``
    Algorithm 1 — does some path from ``source`` to ``target`` match
    ``query``?  Unsafe queries fall back to the decomposition engine.
``allpairs``
    Algorithm 2 / decomposition — all matching pairs of ``sources x
    targets`` (both default to every node of the run).
``reachability``
    Plain label-decoded reachability ``source ⤳ target`` (no query).

The wire format is JSON Lines: one request object per line in, one result
object per line out, in request order, so a client can stream a long batch
through ``repro batch`` without buffering.  Example::

    {"op": "pairwise", "run": "r1", "query": "_* e _*", "source": "c:1", "target": "b:1"}
    {"op": "allpairs", "run": "r1", "query": "A+", "id": "q2"}
    {"op": "reachability", "run": "r1", "source": "c:1", "target": "b:1"}

Results echo the request ``id`` (or its 0-based batch position when absent)
and carry either an ``answer`` boolean, a ``pairs`` list, or an ``error``
string — a malformed or failing request never aborts the rest of the batch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import ReproError

__all__ = [
    "BatchFormatError",
    "QueryRequest",
    "QueryResult",
    "request_from_dict",
    "request_to_dict",
    "result_to_dict",
    "read_requests_jsonl",
]

_OPS = ("pairwise", "allpairs", "reachability")


class BatchFormatError(ReproError):
    """A batch request record is malformed (unknown op, missing field, ...)."""


@dataclass(frozen=True)
class QueryRequest:
    """One operation of a batch (see module docstring for the semantics)."""

    op: str
    run: str
    query: str | None = None
    source: str | None = None
    target: str | None = None
    sources: tuple[str, ...] | None = None
    targets: tuple[str, ...] | None = None
    use_reachability_filter: bool = True
    request_id: str | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise BatchFormatError(
                f"unknown op {self.op!r}; expected one of {list(_OPS)}"
            )
        if not self.run:
            raise BatchFormatError("request is missing the 'run' id")
        if self.op in ("pairwise", "allpairs") and not self.query:
            raise BatchFormatError(f"op {self.op!r} requires a 'query'")
        if self.op in ("pairwise", "reachability"):
            if not self.source or not self.target:
                raise BatchFormatError(
                    f"op {self.op!r} requires both 'source' and 'target'"
                )


@dataclass(frozen=True)
class QueryResult:
    """The outcome of one request; exactly one of answer/pairs/error is set."""

    request_id: str
    op: str
    run: str
    ok: bool
    answer: bool | None = None
    pairs: tuple[tuple[str, str], ...] | None = None
    error: str | None = None
    elapsed: float = 0.0


def request_from_dict(payload: dict[str, Any]) -> QueryRequest:
    """Validate and build a request from one decoded JSONL record."""
    if not isinstance(payload, dict):
        raise BatchFormatError(f"request must be a JSON object, got {type(payload).__name__}")
    known = {
        "op", "run", "query", "source", "target", "sources", "targets",
        "use_reachability_filter", "id",
    }
    unknown = set(payload) - known
    if unknown:
        raise BatchFormatError(f"unknown request field(s): {sorted(unknown)}")

    def _string_list(field: str) -> tuple[str, ...] | None:
        value = payload.get(field)
        if value is None:
            return None
        if not isinstance(value, list) or not all(isinstance(item, str) for item in value):
            raise BatchFormatError(f"{field!r} must be a list of node ids")
        return tuple(value)

    request_id = payload.get("id")
    return QueryRequest(
        op=str(payload.get("op", "")),
        run=str(payload.get("run", "")),
        query=payload.get("query"),
        source=payload.get("source"),
        target=payload.get("target"),
        sources=_string_list("sources"),
        targets=_string_list("targets"),
        use_reachability_filter=bool(payload.get("use_reachability_filter", True)),
        request_id=None if request_id is None else str(request_id),
    )


def request_to_dict(request: QueryRequest) -> dict[str, Any]:
    """The JSONL record of a request (inverse of :func:`request_from_dict`)."""
    record: dict[str, Any] = {"op": request.op, "run": request.run}
    if request.request_id is not None:
        record["id"] = request.request_id
    if request.query is not None:
        record["query"] = request.query
    if request.source is not None:
        record["source"] = request.source
    if request.target is not None:
        record["target"] = request.target
    if request.sources is not None:
        record["sources"] = list(request.sources)
    if request.targets is not None:
        record["targets"] = list(request.targets)
    if not request.use_reachability_filter:
        record["use_reachability_filter"] = False
    return record


def result_to_dict(result: QueryResult) -> dict[str, Any]:
    """The JSONL record of a result."""
    record: dict[str, Any] = {
        "id": result.request_id,
        "op": result.op,
        "run": result.run,
        "ok": result.ok,
    }
    if result.answer is not None:
        record["answer"] = result.answer
    if result.pairs is not None:
        # QueryService sorts pairs when building the result; keep that order.
        record["pairs"] = [list(pair) for pair in result.pairs]
    if result.error is not None:
        record["error"] = result.error
    record["elapsed_ms"] = round(result.elapsed * 1000, 3)
    return record


def read_requests_jsonl(lines: Iterable[str]) -> Iterator[QueryRequest]:
    """Parse a JSONL stream into requests.

    ``lines`` may come from any source — an open file handle, ``sys.stdin``,
    or a pre-split list; every line is normalized here (trailing newlines,
    ``\\r\\n`` endings and surrounding whitespace are stripped), so all
    sources parse identically.  Blank/whitespace-only lines and ``#``
    comments are skipped; malformed lines raise :class:`BatchFormatError`
    with the line number.
    """
    for line_number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise BatchFormatError(f"line {line_number}: invalid JSON ({error})") from error
        try:
            yield request_from_dict(payload)
        except BatchFormatError as error:
            raise BatchFormatError(f"line {line_number}: {error}") from error
