"""Regular-expression and finite-automata substrate.

The paper relies on the brics ``automaton`` Java library for parsing regular
path queries and minimizing DFAs (reference [1] of the paper).  This package
is a from-scratch Python replacement providing:

* a regular-expression abstract syntax tree over *edge tags* (multi-character
  symbols, not single characters) and a parser for the query syntax described
  in DESIGN.md (:mod:`repro.automata.regex`),
* Thompson construction of an NFA with epsilon transitions
  (:mod:`repro.automata.nfa`),
* subset-construction determinization and DFA completion
  (:mod:`repro.automata.dfa`),
* Hopcroft minimization (:mod:`repro.automata.minimize`), and
* compact boolean matrices over DFA state sets, used throughout the core
  engine for path-transition relations (:mod:`repro.automata.boolean_matrix`).
"""

from repro.automata.boolean_matrix import BooleanMatrix
from repro.automata.dfa import DFA
from repro.automata.minimize import minimize_dfa
from repro.automata.nfa import NFA, nfa_from_regex
from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
    parse_regex,
    regex_alphabet,
    regex_to_string,
)

__all__ = [
    "AnySymbol",
    "BooleanMatrix",
    "Concat",
    "DFA",
    "Epsilon",
    "NFA",
    "Plus",
    "RegexNode",
    "Star",
    "Symbol",
    "Union",
    "minimize_dfa",
    "nfa_from_regex",
    "parse_regex",
    "regex_alphabet",
    "regex_to_string",
]
