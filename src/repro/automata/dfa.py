"""Deterministic finite automata over edge tags.

A :class:`DFA` here is always *complete* over its alphabet: every state has a
transition for every tag.  Completeness is what makes the λ matrices of the
safety check (Section III-C of the paper) and the transition matrices of the
query-intersected specification well defined — a path whose tags fall out of
the query language simply drives the automaton into a dead state.

The alphabet of a query automaton is the union of the tags written in the
query and the edge tags of the workflow specification against which it is
evaluated (wildcard transitions expand over this alphabet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.automata.boolean_matrix import BooleanMatrix
from repro.automata.nfa import NFA, nfa_from_regex
from repro.automata.regex import RegexNode, parse_regex, regex_alphabet

__all__ = ["DFA", "dfa_from_regex", "determinize"]


@dataclass(frozen=True)
class DFA:
    """A complete deterministic finite automaton.

    States are ``0 .. state_count - 1``; ``transitions[state][tag]`` is always
    defined for every tag in :attr:`alphabet`.
    """

    state_count: int
    alphabet: frozenset[str]
    transitions: tuple[Mapping[str, int], ...]
    start: int
    accepting: frozenset[int]

    def __post_init__(self) -> None:
        for state, row in enumerate(self.transitions):
            missing = self.alphabet - set(row)
            if missing:
                raise ValueError(f"state {state} lacks transitions for {sorted(missing)}")

    # -- simulation ----------------------------------------------------------

    def step(self, state: int, tag: str) -> int:
        """Single transition; tags outside the alphabet go to the dead state
        if one exists, otherwise raise ``KeyError``."""
        row = self.transitions[state]
        if tag in row:
            return row[tag]
        dead = self.dead_state()
        if dead is not None:
            return dead
        raise KeyError(f"tag {tag!r} not in DFA alphabet and no dead state exists")

    def run(self, state: int, tags: Iterable[str]) -> int:
        """Extended transition function δ*."""
        current = state
        for tag in tags:
            current = self.step(current, tag)
        return current

    def accepts(self, tags: Iterable[str]) -> bool:
        return self.run(self.start, tags) in self.accepting

    def is_accepting(self, state: int) -> bool:
        return state in self.accepting

    # -- structure -----------------------------------------------------------

    def dead_state(self) -> int | None:
        """Return a non-accepting state with only self-loops, if any."""
        for state in range(self.state_count):
            if state in self.accepting:
                continue
            row = self.transitions[state]
            if all(target == state for target in row.values()):
                return state
        return None

    def accepts_epsilon(self) -> bool:
        return self.start in self.accepting

    def transition_matrix(self, tag: str) -> BooleanMatrix:
        """The relation ``q -> δ(q, tag)`` as a boolean matrix.

        Tags outside the alphabet map every state to the dead state (the
        empty relation when no dead state exists, meaning no path with that
        tag can ever satisfy the query).
        """
        size = self.state_count
        if tag in self.alphabet:
            return BooleanMatrix.from_pairs(
                size, ((state, self.transitions[state][tag]) for state in range(size))
            )
        dead = self.dead_state()
        if dead is None:
            return BooleanMatrix.zero(size)
        return BooleanMatrix.from_pairs(size, ((state, dead) for state in range(size)))

    def accepting_mask(self) -> int:
        """Bitmask over states with accepting states set (for matrix tests)."""
        mask = 0
        for state in self.accepting:
            mask |= 1 << state
        return mask

    def reversed(self, *, minimal: bool = True) -> "DFA":
        """The (by default minimal) complete DFA of the *reversed* language:
        ``w`` is accepted by the result iff ``reverse(w)`` is accepted here.

        Built by flipping every transition into an NFA (a fresh start state
        ε-branches to the old accepting states; the old start becomes the
        accept) and determinizing over the same alphabet.  The alphabet is
        carried verbatim — including synthetic macro symbols — and no ``ANY``
        labels exist in a DFA, so wildcard expansion cannot re-enter.

        The backward frontier search of the executor layer runs the product
        search from the *targets* over this automaton, following run edges
        against their direction; a node pair it reports is connected by some
        path whose reversed tag word the reversed DFA accepts, which is
        exactly a forward match of the original query.
        """
        from repro.automata.nfa import EPSILON, NFA

        transitions: dict[int, list[tuple[object, int]]] = {}
        for state, row in enumerate(self.transitions):
            for tag, target in row.items():
                transitions.setdefault(target, []).append((tag, state))
        start = self.state_count
        transitions[start] = [(EPSILON, state) for state in sorted(self.accepting)]
        nfa = NFA(
            start=start,
            accept=self.start,
            transitions=transitions,
            state_count=self.state_count + 1,
        )
        reversed_dfa = determinize(nfa, self.alphabet)
        if minimal:
            from repro.automata.minimize import minimize_dfa

            reversed_dfa = minimize_dfa(reversed_dfa)
        return reversed_dfa

    def reachable_states(self) -> frozenset[int]:
        seen = {self.start}
        stack = [self.start]
        while stack:
            state = stack.pop()
            for target in self.transitions[state].values():
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready representation (inverse of :meth:`from_dict`).

        Tags are kept verbatim — including the NUL-prefixed macro symbols of
        the decomposition engine, which JSON strings carry fine — so stored
        macro DFAs round-trip exactly.
        """
        return {
            "state_count": self.state_count,
            "alphabet": sorted(self.alphabet),
            "transitions": [
                {tag: row[tag] for tag in sorted(row)} for row in self.transitions
            ],
            "start": self.start,
            "accepting": sorted(self.accepting),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DFA":
        """Rebuild a DFA from :meth:`to_dict` output.

        Completeness is re-validated by ``__post_init__``, so a corrupted
        payload fails loudly here instead of mis-answering queries later.
        """
        return cls(
            state_count=int(payload["state_count"]),
            alphabet=frozenset(payload["alphabet"]),
            transitions=tuple(
                {str(tag): int(target) for tag, target in row.items()}
                for row in payload["transitions"]
            ),
            start=int(payload["start"]),
            accepting=frozenset(int(state) for state in payload["accepting"]),
        )

    def with_alphabet(self, alphabet: Iterable[str]) -> "DFA":
        """Return an equivalent DFA completed over a (larger) alphabet.

        Tags not previously in the alphabet behave like any tag the query
        does not mention: they lead to a dead state.
        """
        new_alphabet = frozenset(alphabet) | self.alphabet
        extra = new_alphabet - self.alphabet
        if not extra:
            return self
        dead = self.dead_state()
        transitions = [dict(row) for row in self.transitions]
        if dead is None:
            dead = len(transitions)
            transitions.append({})
        for row in transitions:
            for tag in extra:
                row.setdefault(tag, dead)
        for tag in new_alphabet:
            transitions[dead][tag] = dead
        # ensure previously-complete rows stay complete for the old alphabet
        for row in transitions:
            for tag in new_alphabet:
                row.setdefault(tag, dead)
        return DFA(
            state_count=len(transitions),
            alphabet=new_alphabet,
            transitions=tuple(transitions),
            start=self.start,
            accepting=self.accepting,
        )


def determinize(
    nfa: NFA, alphabet: Iterable[str], *, wildcard_tags: Iterable[str] | None = None
) -> DFA:
    """Subset construction over an explicit alphabet.

    Wildcard (``ANY``) transitions of the NFA are expanded over ``alphabet``
    by default, or over ``wildcard_tags`` when given — the decomposition
    engine passes the run's real edge tags there so that the synthetic macro
    symbols standing for safe subqueries are not matched by ``_``.  The
    result is complete: missing transitions go to a dead state, which is
    always materialized so that downstream code can rely on totality.
    """
    tags = frozenset(alphabet) | nfa.alphabet()
    wildcard = tags if wildcard_tags is None else frozenset(wildcard_tags)
    start_set = nfa.epsilon_closure({nfa.start})
    subset_index: dict[frozenset[int], int] = {start_set: 0}
    order: list[frozenset[int]] = [start_set]
    transitions: list[dict[str, int]] = [{}]
    queue = [start_set]
    while queue:
        current = queue.pop()
        current_id = subset_index[current]
        for tag in tags:
            target = nfa.epsilon_closure(
                nfa.move(current, tag, include_wildcard=tag in wildcard)
            )
            if target not in subset_index:
                subset_index[target] = len(order)
                order.append(target)
                transitions.append({})
                queue.append(target)
            transitions[current_id][tag] = subset_index[target]
    # The empty subset (if produced) already acts as the dead state; if it was
    # never produced, add one so the automaton is complete even for tags later
    # added via ``with_alphabet``.
    if frozenset() not in subset_index:
        dead = len(order)
        order.append(frozenset())
        transitions.append({tag: dead for tag in tags})
    accepting = frozenset(
        index for subset, index in subset_index.items() if nfa.accept in subset
    )
    return DFA(
        state_count=len(order),
        alphabet=tags,
        transitions=tuple(transitions),
        start=0,
        accepting=accepting,
    )


def dfa_from_regex(
    query: str | RegexNode, alphabet: Iterable[str] = (), *, minimal: bool = True
) -> DFA:
    """Build a (by default minimal) complete DFA for a query.

    ``alphabet`` should contain the edge tags of the workflow specification;
    tags mentioned in the query are always included.
    """
    node = parse_regex(query)
    tags = frozenset(alphabet) | regex_alphabet(node)
    dfa = determinize(nfa_from_regex(node), tags)
    if minimal:
        from repro.automata.minimize import minimize_dfa

        dfa = minimize_dfa(dfa)
    return dfa
