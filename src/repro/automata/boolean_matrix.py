"""Compact boolean matrices over small index sets.

The core query engine manipulates *path-transition relations*: for a DFA with
state set ``Q``, the relation ``M[q1][q2] = 1`` means "some path with the
property at hand drives the DFA from ``q1`` to ``q2``".  These relations are
composed by boolean matrix multiplication thousands of times per query, so the
representation matters even in pure Python.  Rows are stored as integer
bitmasks which makes multiplication a handful of integer OR operations.

DFAs for provenance queries are small (a few states), so these matrices are
typically 2x2 to 10x10.
"""

from __future__ import annotations

import base64
from typing import Iterable, Iterator, Sequence

__all__ = ["BooleanMatrix"]


class BooleanMatrix:
    """A square boolean matrix with rows stored as integer bitmasks.

    ``rows[i]`` has bit ``j`` set iff entry ``(i, j)`` is true.  Instances are
    immutable and hashable, so they can be cached and used in sets (the cycle
    power cache of the query index relies on this).
    """

    __slots__ = ("_size", "_rows")

    def __init__(self, size: int, rows: Sequence[int] | None = None) -> None:
        if size < 0:
            raise ValueError("matrix size must be non-negative")
        self._size = size
        if rows is None:
            self._rows: tuple[int, ...] = (0,) * size
        else:
            if len(rows) != size:
                raise ValueError(f"expected {size} rows, got {len(rows)}")
            mask = (1 << size) - 1
            self._rows = tuple(row & mask for row in rows)

    # -- constructors --------------------------------------------------------

    @classmethod
    def identity(cls, size: int) -> "BooleanMatrix":
        """The identity relation (used for empty paths / atomic modules)."""
        return cls(size, [1 << i for i in range(size)])

    @classmethod
    def zero(cls, size: int) -> "BooleanMatrix":
        """The empty relation."""
        return cls(size)

    @classmethod
    def full(cls, size: int) -> "BooleanMatrix":
        """The complete relation."""
        mask = (1 << size) - 1
        return cls(size, [mask] * size)

    @classmethod
    def from_pairs(cls, size: int, pairs: Iterable[tuple[int, int]]) -> "BooleanMatrix":
        """Build a matrix from explicit ``(row, column)`` pairs."""
        rows = [0] * size
        for row, column in pairs:
            if not (0 <= row < size and 0 <= column < size):
                raise ValueError(f"pair ({row}, {column}) outside a {size}x{size} matrix")
            rows[row] |= 1 << column
        return cls(size, rows)

    @classmethod
    def from_function(cls, size: int, mapping: dict[int, int]) -> "BooleanMatrix":
        """Build a matrix from a (partial) function ``row -> column``."""
        return cls.from_pairs(size, mapping.items())

    @classmethod
    def from_rows(cls, rows: Sequence[int]) -> "BooleanMatrix":
        """Rebuild a matrix from :meth:`to_rows` output (the matrix is square,
        so the size is the row count)."""
        return cls(len(rows), [int(row) for row in rows])

    # -- serialization -------------------------------------------------------

    def to_rows(self) -> list[int]:
        """The rows as a JSON-ready list of integer bitmasks.

        Python integers serialize losslessly at any size, so this round-trips
        matrices of arbitrary dimension (see :mod:`repro.store`).
        """
        return list(self._rows)

    def to_packed(self) -> str:
        """The rows as one base64 string of fixed-width little-endian bytes.

        Each row bitmask is packed into ``ceil(size / 8)`` bytes, so an
        ``n × n`` matrix costs ``~n²/6`` base64 characters instead of the
        ``O(n²)`` decimal digits of :meth:`to_rows` — the store's compact
        on-disk encoding (size travels separately, alongside the string).
        """
        width = (self._size + 7) // 8
        packed = b"".join(row.to_bytes(width, "little") for row in self._rows)
        return base64.b64encode(packed).decode("ascii")

    @classmethod
    def from_packed(cls, size: int, data: str) -> "BooleanMatrix":
        """Rebuild a matrix from :meth:`to_packed` output (strict: a payload
        whose byte length disagrees with ``size`` raises ``ValueError``).

        The whole payload is decoded as *one* little-endian integer and rows
        are sliced out by shift-and-mask — a single pass over the packed
        buffer instead of a bytes-slice-and-convert per row, which is what
        lets store format 2 deserialize straight into the row bitmasks.
        """
        packed = base64.b64decode(data.encode("ascii"), validate=True)
        width = (size + 7) // 8
        if len(packed) != width * size:
            raise ValueError(
                f"packed matrix holds {len(packed)} bytes, "
                f"a {size}x{size} matrix needs {width * size}"
            )
        if size == 0:
            return cls(0)
        buffer = int.from_bytes(packed, "little")
        row_bits = width * 8
        mask = (1 << row_bits) - 1
        rows = [(buffer >> (index * row_bits)) & mask for index in range(size)]
        return cls(size, rows)

    # -- basic queries -------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    @property
    def rows(self) -> tuple[int, ...]:
        return self._rows

    def get(self, row: int, column: int) -> bool:
        """Return entry ``(row, column)``."""
        return bool(self._rows[row] >> column & 1)

    def row_mask(self, row: int) -> int:
        """Return the bitmask of columns set in ``row``."""
        return self._rows[row]

    def is_zero(self) -> bool:
        return not any(self._rows)

    # -- state-vector products ----------------------------------------------------
    #
    # State vectors are plain integer bitmasks (bit ``i`` = state ``i``), so
    # the group-at-a-time decoder can move single DFA-state *sets* through a
    # relation in O(|Q|) integer operations instead of paying for a full
    # |Q| x |Q| matrix product per node pair.

    def propagate_row(self, mask: int) -> int:
        """Row-vector product ``v @ M`` for the row vector ``mask``.

        Returns the bitmask of columns reachable from any row in ``mask``.
        Bits of ``mask`` outside the matrix are ignored.
        """
        remaining = mask & ((1 << self._size) - 1)
        result = 0
        rows = self._rows
        while remaining:
            low_bit = remaining & -remaining
            result |= rows[low_bit.bit_length() - 1]
            remaining ^= low_bit
        return result

    def propagate_column(self, mask: int) -> int:
        """Column-vector product ``M @ v`` for the column vector ``mask``.

        Returns the bitmask of rows whose successors intersect ``mask``.
        """
        result = 0
        bit = 1
        for row in self._rows:
            if row & mask:
                result |= bit
            bit <<= 1
        return result

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate over all true ``(row, column)`` entries."""
        for row_index, row in enumerate(self._rows):
            remaining = row
            while remaining:
                low_bit = remaining & -remaining
                yield row_index, low_bit.bit_length() - 1
                remaining ^= low_bit

    # -- algebra -------------------------------------------------------------

    def __or__(self, other: "BooleanMatrix") -> "BooleanMatrix":
        self._check_compatible(other)
        return BooleanMatrix(self._size, [a | b for a, b in zip(self._rows, other._rows)])

    def __and__(self, other: "BooleanMatrix") -> "BooleanMatrix":
        self._check_compatible(other)
        return BooleanMatrix(self._size, [a & b for a, b in zip(self._rows, other._rows)])

    def __matmul__(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """Boolean matrix product: ``(A @ B)[i][k]`` iff exists j with
        ``A[i][j]`` and ``B[j][k]``."""
        self._check_compatible(other)
        other_rows = other._rows
        result_rows = []
        for row in self._rows:
            accumulator = 0
            remaining = row
            while remaining:
                low_bit = remaining & -remaining
                accumulator |= other_rows[low_bit.bit_length() - 1]
                remaining ^= low_bit
            result_rows.append(accumulator)
        return BooleanMatrix(self._size, result_rows)

    def power(self, exponent: int) -> "BooleanMatrix":
        """Boolean matrix power by repeated squaring (exponent >= 0)."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        result = BooleanMatrix.identity(self._size)
        base = self
        remaining = exponent
        while remaining:
            if remaining & 1:
                result = result @ base
            base = base @ base
            remaining >>= 1
        return result

    def transitive_closure(self) -> "BooleanMatrix":
        """Return the transitive closure (without the reflexive part)."""
        closure = self
        while True:
            expanded = closure | (closure @ closure)
            if expanded == closure:
                return closure
            closure = expanded

    def reflexive_transitive_closure(self) -> "BooleanMatrix":
        """Return the reflexive-transitive closure."""
        return self.transitive_closure() | BooleanMatrix.identity(self._size)

    def transpose(self) -> "BooleanMatrix":
        columns = [0] * self._size
        for row_index, row in enumerate(self._rows):
            remaining = row
            while remaining:
                low_bit = remaining & -remaining
                columns[low_bit.bit_length() - 1] |= 1 << row_index
                remaining ^= low_bit
        return BooleanMatrix(self._size, columns)

    # -- dunder plumbing -----------------------------------------------------

    def _check_compatible(self, other: "BooleanMatrix") -> None:
        if not isinstance(other, BooleanMatrix):
            raise TypeError(f"expected BooleanMatrix, got {type(other).__name__}")
        if self._size != other._size:
            raise ValueError(f"size mismatch: {self._size} vs {other._size}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanMatrix):
            return NotImplemented
        return self._size == other._size and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._size, self._rows))

    def __repr__(self) -> str:
        body = ", ".join(format(row, f"0{self._size}b")[::-1] for row in self._rows)
        return f"BooleanMatrix({self._size}, [{body}])"
