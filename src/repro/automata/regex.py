"""Regular path query abstract syntax and parser.

Queries in the paper are regular expressions over *edge tags* (Definition 8):

    e := c | e1 e2 | e1 + e2 | e1* | e1+
    c := epsilon | _ | a

where ``a`` is an edge tag, ``_`` is the wildcard matching any single tag and
``epsilon`` is the empty string.  Because edge tags are whole words (module
names such as ``BLAST``), the concrete syntax accepted by :func:`parse_regex`
uses explicit operators rather than single-character juxtaposition:

* tags are identifiers made of letters, digits, ``_``, ``-`` and ``:``
  (a standalone ``_`` is the wildcard, not a tag),
* concatenation is written with ``.`` or simply with whitespace,
* alternation is written with ``|``,
* ``*`` and ``+`` are postfix repetition operators,
* ``_`` is the wildcard, ``~`` (or the word ``eps``) is the empty string,
* parentheses group.

The paper's motivating query ``x.(a1|a2)+.s._*.p`` parses as written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import QuerySyntaxError

__all__ = [
    "RegexNode",
    "Epsilon",
    "Symbol",
    "AnySymbol",
    "Concat",
    "Union",
    "Star",
    "Plus",
    "parse_regex",
    "regex_to_string",
    "regex_alphabet",
    "regex_size",
    "regex_is_nullable",
    "canonicalize_regex",
    "canonical_query_text",
]


class RegexNode:
    """Base class of regular-expression syntax tree nodes.

    Nodes are immutable and hashable so they can be used as dictionary keys
    (the decomposition engine memoizes evaluation results per subtree).
    """

    def children(self) -> tuple["RegexNode", ...]:
        """Return the child nodes (empty for leaves)."""
        return ()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return regex_to_string(self)


@dataclass(frozen=True)
class Epsilon(RegexNode):
    """The empty string."""


@dataclass(frozen=True)
class Symbol(RegexNode):
    """A single edge tag."""

    tag: str


@dataclass(frozen=True)
class AnySymbol(RegexNode):
    """The wildcard ``_`` matching any single edge tag."""


@dataclass(frozen=True)
class Concat(RegexNode):
    """Concatenation of two or more subexpressions."""

    parts: tuple[RegexNode, ...]

    def children(self) -> tuple[RegexNode, ...]:
        return self.parts


@dataclass(frozen=True)
class Union(RegexNode):
    """Alternation of two or more subexpressions."""

    parts: tuple[RegexNode, ...]

    def children(self) -> tuple[RegexNode, ...]:
        return self.parts


@dataclass(frozen=True)
class Star(RegexNode):
    """Zero or more repetitions of the child expression."""

    child: RegexNode

    def children(self) -> tuple[RegexNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Plus(RegexNode):
    """One or more repetitions of the child expression."""

    child: RegexNode

    def children(self) -> tuple[RegexNode, ...]:
        return (self.child,)


def concat(parts: Sequence[RegexNode]) -> RegexNode:
    """Build a concatenation node, flattening nested concatenations and
    dropping redundant epsilons."""
    flat: list[RegexNode] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        elif isinstance(part, Epsilon):
            continue
        else:
            flat.append(part)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(parts: Sequence[RegexNode]) -> RegexNode:
    """Build an alternation node, flattening nested alternations and
    removing duplicate alternatives while preserving order."""
    flat: list[RegexNode] = []
    seen: set[RegexNode] = set()
    for part in parts:
        candidates = part.parts if isinstance(part, Union) else (part,)
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                flat.append(candidate)
    if not flat:
        raise QuerySyntaxError("alternation requires at least one alternative")
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_OPERATOR_CHARS = {"(", ")", "|", "*", "+", ".", "~"}
_TAG_EXTRA_CHARS = {"-", ":", "_"}


@dataclass(frozen=True)
class _Token:
    kind: str  # "tag", "(", ")", "|", "*", "+", ".", "_", "~"
    text: str
    position: int


def _tokenize(text: str) -> Iterator[_Token]:
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _OPERATOR_CHARS:
            yield _Token(char, char, index)
            index += 1
            continue
        if char.isalnum() or char in _TAG_EXTRA_CHARS:
            start = index
            while index < length and (text[index].isalnum() or text[index] in _TAG_EXTRA_CHARS):
                index += 1
            word = text[start:index]
            if word == "eps":
                yield _Token("~", word, start)
            elif word == "_":
                yield _Token("_", word, start)
            else:
                yield _Token("tag", word, start)
            continue
        raise QuerySyntaxError(f"unexpected character {char!r} at position {index}")


# ---------------------------------------------------------------------------
# Recursive-descent parser
#
#   expr     := term ("|" term)*
#   term     := factor+
#   factor   := atom ("*" | "+")*
#   atom     := tag | "_" | "~" | "(" expr ")"
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: Sequence[_Token], source: str) -> None:
        self._tokens = list(tokens)
        self._index = 0
        self._source = source

    def parse(self) -> RegexNode:
        node = self._expr()
        if self._index != len(self._tokens):
            token = self._tokens[self._index]
            raise QuerySyntaxError(
                f"unexpected {token.text!r} at position {token.position} in {self._source!r}"
            )
        return node

    # -- helpers ------------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    # -- grammar ------------------------------------------------------------

    def _expr(self) -> RegexNode:
        terms = [self._term()]
        while True:
            token = self._peek()
            if token is not None and token.kind == "|":
                self._advance()
                terms.append(self._term())
            else:
                break
        return union(terms)

    def _term(self) -> RegexNode:
        factors: list[RegexNode] = []
        while True:
            token = self._peek()
            if token is None or token.kind in {")", "|"}:
                break
            if token.kind == ".":
                self._advance()
                continue
            factors.append(self._factor())
        if not factors:
            raise QuerySyntaxError(
                f"empty alternative in {self._source!r}; write '~' for the empty string"
            )
        return concat(factors)

    def _factor(self) -> RegexNode:
        node = self._atom()
        while True:
            token = self._peek()
            if token is not None and token.kind in {"*", "+"}:
                self._advance()
                node = Star(node) if token.kind == "*" else Plus(node)
            else:
                break
        return node

    def _atom(self) -> RegexNode:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError(f"unexpected end of query in {self._source!r}")
        if token.kind == "tag":
            self._advance()
            return Symbol(token.text)
        if token.kind == "_":
            self._advance()
            return AnySymbol()
        if token.kind == "~":
            self._advance()
            return Epsilon()
        if token.kind == "(":
            self._advance()
            node = self._expr()
            closing = self._peek()
            if closing is None or closing.kind != ")":
                raise QuerySyntaxError(f"missing ')' in {self._source!r}")
            self._advance()
            return node
        raise QuerySyntaxError(
            f"unexpected {token.text!r} at position {token.position} in {self._source!r}"
        )


def parse_regex(text: str | RegexNode) -> RegexNode:
    """Parse a regular path query string into a syntax tree.

    Passing an already-built :class:`RegexNode` returns it unchanged, which
    lets every public API accept either form.
    """
    if isinstance(text, RegexNode):
        return text
    tokens = list(_tokenize(text))
    if not tokens:
        return Epsilon()
    return _Parser(tokens, text).parse()


# ---------------------------------------------------------------------------
# Utilities on syntax trees
# ---------------------------------------------------------------------------


def regex_to_string(node: RegexNode) -> str:
    """Render a syntax tree back to the concrete query syntax."""

    def render(current: RegexNode, parent_priority: int) -> str:
        # priorities: union=0, concat=1, repetition=2, atom=3
        if isinstance(current, Epsilon):
            return "~"
        if isinstance(current, AnySymbol):
            return "_"
        if isinstance(current, Symbol):
            return current.tag
        if isinstance(current, Union):
            text = " | ".join(render(part, 0) for part in current.parts)
            return f"({text})" if parent_priority > 0 else text
        if isinstance(current, Concat):
            text = " . ".join(render(part, 1) for part in current.parts)
            return f"({text})" if parent_priority > 1 else text
        if isinstance(current, Star):
            return f"{render(current.child, 3)}*"
        if isinstance(current, Plus):
            return f"{render(current.child, 3)}+"
        raise TypeError(f"unknown regex node {current!r}")

    return render(node, 0)


def regex_alphabet(node: RegexNode) -> frozenset[str]:
    """Return the set of explicit tags mentioned in the expression."""
    tags: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Symbol):
            tags.add(current.tag)
        stack.extend(current.children())
    return frozenset(tags)


def regex_uses_wildcard(node: RegexNode) -> bool:
    """Return True when the expression contains the wildcard ``_``."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, AnySymbol):
            return True
        stack.extend(current.children())
    return False


def regex_size(node: RegexNode) -> int:
    """Number of syntax tree nodes; used as the query-size measure |R|."""
    count = 0
    stack = [node]
    while stack:
        current = stack.pop()
        count += 1
        stack.extend(current.children())
    return count


def regex_is_nullable(node: RegexNode) -> bool:
    """Does the expression's language contain the empty string?"""
    if isinstance(node, Epsilon) or isinstance(node, Star):
        return True
    if isinstance(node, (Symbol, AnySymbol)):
        return False
    if isinstance(node, Concat):
        return all(regex_is_nullable(part) for part in node.parts)
    if isinstance(node, Union):
        return any(regex_is_nullable(part) for part in node.parts)
    if isinstance(node, Plus):
        return regex_is_nullable(node.child)
    raise TypeError(f"unknown regex node {node!r}")


# ---------------------------------------------------------------------------
# Canonical normal form
#
# ``canonicalize_regex`` rewrites a syntax tree into a normal form such that
# many syntactically different but language-equivalent queries become
# *identical* trees, which is what lets a shared index cache recognise
# ``a|b`` and ``b|a`` (or ``(a)`` and ``a``) as the same query.  Every rewrite
# is language-preserving:
#
# * concatenations are flattened and epsilon factors dropped,
# * alternations are flattened, de-duplicated and sorted (rendering order),
# * an epsilon alternative is dropped when a sibling is already nullable,
# * ``(e*)* -> e*``, ``(e+)* -> e*``, ``(e*)+ -> e*``, ``(e+)+ -> e+``,
#   ``~* -> ~``, ``~+ -> ~``,
# * ``e+`` with nullable ``e`` becomes ``e*`` (their languages coincide),
# * under a repetition, epsilon alternatives of the child are redundant:
#   ``(a|~)* -> a*``.
#
# The form is a fixpoint: canonicalizing a canonical tree returns an equal
# tree, so canonical text is a stable cache key.
# ---------------------------------------------------------------------------


def _strip_epsilon_alternatives(node: RegexNode) -> RegexNode:
    """Drop epsilon alternatives of a top-level union (valid under ``*``/``+``)."""
    if isinstance(node, Union):
        remaining = [part for part in node.parts if not isinstance(part, Epsilon)]
        if len(remaining) != len(node.parts):
            if len(remaining) == 1:
                return remaining[0]
            return Union(tuple(remaining))
    return node


def canonicalize_regex(node: RegexNode) -> RegexNode:
    """Rewrite a query into its canonical normal form (see module notes).

    The result accepts exactly the same tag sequences as the input; the
    rewrite is idempotent, so the rendered canonical text is a stable key for
    caching per-query work across equivalent query spellings.
    """
    if isinstance(node, (Epsilon, Symbol, AnySymbol)):
        return node
    if isinstance(node, Concat):
        return concat([canonicalize_regex(part) for part in node.parts])
    if isinstance(node, Union):
        flat: list[RegexNode] = []
        for part in node.parts:
            candidate = canonicalize_regex(part)
            flat.extend(candidate.parts if isinstance(candidate, Union) else (candidate,))
        unique: list[RegexNode] = []
        seen: set[RegexNode] = set()
        for part in flat:
            if part not in seen:
                seen.add(part)
                unique.append(part)
        non_epsilon = [part for part in unique if not isinstance(part, Epsilon)]
        if len(non_epsilon) < len(unique) and any(
            regex_is_nullable(part) for part in non_epsilon
        ):
            unique = non_epsilon
        if len(unique) == 1:
            return unique[0]
        unique.sort(key=regex_to_string)
        return Union(tuple(unique))
    if isinstance(node, Star):
        child = _strip_epsilon_alternatives(canonicalize_regex(node.child))
        if isinstance(child, Epsilon):
            return Epsilon()
        if isinstance(child, (Star, Plus)):
            return canonicalize_regex(Star(child.child))
        return Star(child)
    if isinstance(node, Plus):
        child = canonicalize_regex(node.child)
        if isinstance(child, Epsilon):
            return Epsilon()
        if isinstance(child, Plus):
            return canonicalize_regex(Plus(child.child))
        if isinstance(child, Star) or regex_is_nullable(child):
            return canonicalize_regex(Star(child))
        return Plus(child)
    raise TypeError(f"unknown regex node {node!r}")


def canonical_query_text(query: str | RegexNode) -> str:
    """Parse, canonicalize and render a query — the cross-query cache key."""
    return regex_to_string(canonicalize_regex(parse_regex(query)))
