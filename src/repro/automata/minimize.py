"""DFA minimization (Hopcroft's partition-refinement algorithm).

Lemma 3.2 of the paper shows that safety of a query only needs to be checked
on the *minimal* DFA, and the size of the query-intersected specification
``G^R`` is proportional to the number of DFA states, so minimization directly
reduces both the safety-check and the decoding cost.
"""

from __future__ import annotations

from collections import defaultdict

from repro.automata.dfa import DFA

__all__ = ["minimize_dfa"]


def _prune_unreachable(dfa: DFA) -> DFA:
    """Drop states not reachable from the start state."""
    reachable = sorted(dfa.reachable_states())
    if len(reachable) == dfa.state_count:
        return dfa
    remap = {old: new for new, old in enumerate(reachable)}
    transitions = tuple(
        {tag: remap[target] for tag, target in dfa.transitions[old].items()}
        for old in reachable
    )
    return DFA(
        state_count=len(reachable),
        alphabet=dfa.alphabet,
        transitions=transitions,
        start=remap[dfa.start],
        accepting=frozenset(remap[s] for s in dfa.accepting if s in remap),
    )


def minimize_dfa(dfa: DFA) -> DFA:
    """Return the minimal complete DFA equivalent to ``dfa``.

    Uses Hopcroft's algorithm on the reachable part of the automaton.  The
    result is complete over the same alphabet; a dead state survives exactly
    when some string is rejected only by falling off the language.
    """
    dfa = _prune_unreachable(dfa)
    states = range(dfa.state_count)
    alphabet = dfa.alphabet

    accepting = set(dfa.accepting)
    non_accepting = set(states) - accepting

    # Initial partition: accepting vs. non-accepting (drop empty blocks).
    partition: list[set[int]] = [block for block in (accepting, non_accepting) if block]
    worklist: list[set[int]] = [set(block) for block in partition]

    # Precompute inverse transitions: for each tag, target -> set of sources.
    inverse: dict[str, dict[int, set[int]]] = {tag: defaultdict(set) for tag in alphabet}
    for state in states:
        for tag, target in dfa.transitions[state].items():
            inverse[tag][target].add(state)

    while worklist:
        splitter = worklist.pop()
        for tag in alphabet:
            predecessors: set[int] = set()
            for target in splitter:
                predecessors |= inverse[tag].get(target, set())
            if not predecessors:
                continue
            next_partition: list[set[int]] = []
            for block in partition:
                inside = block & predecessors
                outside = block - predecessors
                if inside and outside:
                    next_partition.append(inside)
                    next_partition.append(outside)
                    # Keep the worklist consistent: replace the block if it is
                    # pending, otherwise enqueue the smaller half.
                    replaced = False
                    for index, pending in enumerate(worklist):
                        if pending == block:
                            worklist[index] = inside
                            worklist.append(outside)
                            replaced = True
                            break
                    if not replaced:
                        worklist.append(inside if len(inside) <= len(outside) else outside)
                else:
                    next_partition.append(block)
            partition = next_partition

    # Build the quotient automaton.
    block_of: dict[int, int] = {}
    for block_index, block in enumerate(partition):
        for state in block:
            block_of[state] = block_index
    transitions = []
    for block in partition:
        representative = next(iter(block))
        transitions.append(
            {tag: block_of[target] for tag, target in dfa.transitions[representative].items()}
        )
    minimal = DFA(
        state_count=len(partition),
        alphabet=alphabet,
        transitions=tuple(transitions),
        start=block_of[dfa.start],
        accepting=frozenset(block_of[state] for state in dfa.accepting),
    )
    return _prune_unreachable(minimal)
