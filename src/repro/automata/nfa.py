"""Thompson construction of nondeterministic finite automata.

The NFA operates over whole edge tags (strings).  Two transition label kinds
exist in addition to ordinary tags: ``EPSILON`` (no input consumed) and
``ANY`` (the wildcard ``_`` of the query language, matching any single tag).
``ANY`` transitions are only expanded into concrete tags at determinization
time when the full alphabet is known (the alphabet of a query is the union of
the specification's edge tags and the tags written in the query itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
    parse_regex,
)

__all__ = ["EPSILON", "ANY", "NFA", "nfa_from_regex"]


class _Marker:
    """Singleton-style marker used for epsilon and wildcard labels."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


EPSILON = _Marker("EPSILON")
ANY = _Marker("ANY")


@dataclass
class NFA:
    """A nondeterministic finite automaton with a single start and accept state.

    Thompson construction always yields exactly one accept state, which keeps
    the combinators below simple.  States are integers local to the automaton.
    """

    start: int
    accept: int
    transitions: dict[int, list[tuple[object, int]]] = field(default_factory=dict)
    state_count: int = 0

    def add_transition(self, source: int, label: object, target: int) -> None:
        self.transitions.setdefault(source, []).append((label, target))

    def alphabet(self) -> frozenset[str]:
        """Explicit tags appearing on transitions (excludes ANY/EPSILON)."""
        tags = set()
        for edges in self.transitions.values():
            for label, _ in edges:
                if isinstance(label, str):
                    tags.add(label)
        return frozenset(tags)

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """Return the set of states reachable via epsilon transitions."""
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for label, target in self.transitions.get(state, ()):
                if label is EPSILON and target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def move(
        self, states: Iterable[int], tag: str, *, include_wildcard: bool = True
    ) -> frozenset[int]:
        """Return states reachable from ``states`` by consuming ``tag``
        (wildcard transitions match every tag unless ``include_wildcard`` is
        off, which lets determinization keep synthetic tags — e.g. the macro
        symbols standing for safe subqueries — out of the wildcard's reach)."""
        result = set()
        for state in states:
            for label, target in self.transitions.get(state, ()):
                if (include_wildcard and label is ANY) or label == tag:
                    result.add(target)
        return frozenset(result)

    def accepts(self, tags: Iterable[str]) -> bool:
        """Direct NFA simulation; used by tests as an independent oracle."""
        current = self.epsilon_closure({self.start})
        for tag in tags:
            current = self.epsilon_closure(self.move(current, tag))
            if not current:
                return False
        return self.accept in current

    def reversed(self) -> "NFA":
        """The NFA of the reversed language: every transition flipped, start
        and accept swapped.  ``EPSILON``/``ANY`` labels reverse unchanged, so
        the reversal of a Thompson automaton is again a single-start,
        single-accept automaton over the same labels."""
        transitions: dict[int, list[tuple[object, int]]] = {}
        for source, edges in self.transitions.items():
            for label, target in edges:
                transitions.setdefault(target, []).append((label, source))
        return NFA(
            start=self.accept,
            accept=self.start,
            transitions=transitions,
            state_count=self.state_count,
        )


class _Builder:
    """Allocates states and assembles fragment automata."""

    def __init__(self) -> None:
        self._next_state = 0
        self._transitions: dict[int, list[tuple[object, int]]] = {}

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def link(self, source: int, label: object, target: int) -> None:
        self._transitions.setdefault(source, []).append((label, target))

    def build(self, node: RegexNode) -> tuple[int, int]:
        """Return the (start, accept) fragment for ``node``."""
        if isinstance(node, Epsilon):
            start, accept = self.new_state(), self.new_state()
            self.link(start, EPSILON, accept)
            return start, accept
        if isinstance(node, Symbol):
            start, accept = self.new_state(), self.new_state()
            self.link(start, node.tag, accept)
            return start, accept
        if isinstance(node, AnySymbol):
            start, accept = self.new_state(), self.new_state()
            self.link(start, ANY, accept)
            return start, accept
        if isinstance(node, Concat):
            start, accept = self.build(node.parts[0])
            for part in node.parts[1:]:
                next_start, next_accept = self.build(part)
                self.link(accept, EPSILON, next_start)
                accept = next_accept
            return start, accept
        if isinstance(node, Union):
            start, accept = self.new_state(), self.new_state()
            for part in node.parts:
                part_start, part_accept = self.build(part)
                self.link(start, EPSILON, part_start)
                self.link(part_accept, EPSILON, accept)
            return start, accept
        if isinstance(node, Star):
            inner_start, inner_accept = self.build(node.child)
            start, accept = self.new_state(), self.new_state()
            self.link(start, EPSILON, inner_start)
            self.link(start, EPSILON, accept)
            self.link(inner_accept, EPSILON, inner_start)
            self.link(inner_accept, EPSILON, accept)
            return start, accept
        if isinstance(node, Plus):
            inner_start, inner_accept = self.build(node.child)
            start, accept = self.new_state(), self.new_state()
            self.link(start, EPSILON, inner_start)
            self.link(inner_accept, EPSILON, inner_start)
            self.link(inner_accept, EPSILON, accept)
            return start, accept
        raise TypeError(f"unknown regex node {node!r}")

    def finish(self, start: int, accept: int) -> NFA:
        return NFA(
            start=start,
            accept=accept,
            transitions=self._transitions,
            state_count=self._next_state,
        )


def nfa_from_regex(query: str | RegexNode) -> NFA:
    """Build a Thompson NFA for the given query string or syntax tree."""
    node = parse_regex(query)
    builder = _Builder()
    start, accept = builder.build(node)
    return builder.finish(start, accept)
