"""Benchmark harness reproducing the paper's evaluation (Section V).

Every table/figure of the paper has a corresponding experiment function in
:mod:`repro.bench.experiments`; ``python -m repro.bench <figure>`` (or
``repro bench <figure>`` via the CLI) runs it and prints the same series the
paper plots.  ``pytest benchmarks/ --benchmark-only`` exercises the same
code paths under pytest-benchmark for regression tracking.

Because this reproduction runs pure Python rather than the paper's Java
implementation, absolute times differ; the harness therefore defaults to a
scaled-down workload (the ``small`` scale) that preserves the comparisons —
who wins, how costs grow, where the crossovers are.  Set the environment
variable ``REPRO_BENCH_SCALE=paper`` to run the paper-sized workloads.
"""

from repro.bench.harness import BenchScale, ExperimentResult, current_scale, format_table
from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "BenchScale",
    "ExperimentResult",
    "current_scale",
    "format_table",
    "run_experiment",
]
