"""Benchmarking: declarative scenarios, trajectory gating, paper figures.

The declarative layer (:mod:`repro.bench.scenarios`,
:mod:`repro.bench.catalog`, :mod:`repro.bench.gate`) expresses every
benchmark as a config object — grammar family × run size × query class ×
executor configuration — executed by one generic harness into a uniform
``repro-bench-trajectory/1`` run table, which ``repro bench gate`` compares
against the stored trajectory under ``benchmarks/trajectory/``.

The legacy layer (:mod:`repro.bench.experiments`) reproduces the paper's
evaluation figures (Section V); ``repro bench figures fig13a`` (or the
shorthand ``repro bench fig13a``) prints the same series the paper plots.
Because this reproduction runs pure Python rather than the paper's Java
implementation, absolute times differ; the comparisons — who wins, how costs
grow, where the crossovers are — are what the tables preserve.
"""

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import BenchScale, ExperimentResult, current_scale, format_table
from repro.bench.scenarios import (
    ExecutorFactors,
    Invariant,
    Scenario,
    ScenarioResult,
    run_scenario,
    run_suite,
)

__all__ = [
    "EXPERIMENTS",
    "BenchScale",
    "ExecutorFactors",
    "ExperimentResult",
    "Invariant",
    "Scenario",
    "ScenarioResult",
    "current_scale",
    "format_table",
    "run_experiment",
    "run_scenario",
    "run_suite",
]
