"""The scenario catalog: every benchmark of the repo as a declarative entry.

The entries fall into two groups:

* **ported** — the claims the old hand-rolled ``bench_*.py`` scripts tracked
  (fig13 overhead/pairwise/all-pairs/Kleene, fig15 restriction pushdown,
  service throughput, store warm restarts, frontier direction/parallelism),
  now expressed as points in the factor space of
  :class:`~repro.bench.scenarios.Scenario`;
* **new coverage** — the synthetic grammar families (deep recursion, wide
  alternation, dense wildcards), an adversarial dense-wildcard unsafe query,
  and a mixed safe/unsafe service batch, which the declarative matrix makes
  cheap to add.

:data:`INVARIANTS` declares the cross-scenario performance relations the old
scripts asserted inline (backward < forward, parallel ≥ 2x, warm restart
≥ 4.5x); ``repro bench gate`` enforces them on every gated run.
:func:`check_catalog` is the fail-fast validation behind ``repro bench
check``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.bench.scenarios import (
    SCALES,
    ExecutorFactors,
    Invariant,
    Scenario,
    ScenarioError,
    WORKLOADS,
    resolve_grammar,
    run_scenario,
)
from repro.errors import ReproError

__all__ = ["CATALOG", "INVARIANTS", "check_catalog", "get_scenario", "select"]

_CI = ("ci", "full")

#: The frontier-direction/parallelism workload shared by four entries below:
#: a large loop-heavy QBLast run, every node as a source, three
#: high-fan-in targets — the regime where direction and fan-out matter.
_FRONTIER = {
    "grammar": "qblast",
    "query_class": "unsafe-allpairs",
    "run_edges": 9000,
    "params": (("query", "_* qx_b _*"), ("lists", "few-targets")),
    "suites": _CI,
}

#: First-contact queries in the Fig. 13b overhead regime (multi-state DFAs),
#: the workload whose per-query build cost the store elides.
_RESTART_QUERIES = (
    "_* B1 _* B2 _* B3 _* B4 _* B5 _*",
    "_* q_prep _* B1 _* B2 _* B3 _* B4 _*",
    "(_* B1 _* q_prep _* B2 _*) | (_* B3 _* B4 _* B5 _*)",
    "(B1 | q_prep)+ . _* . (B2 | B3)+ . _* . (B4 | B5)+",
    "_* B5 _* B4 _* B3 _* B2 _* B1 _*",
    "(_* q_prep _* B5 _*) | (_* B1 _* B2 _* B3 _* B4 _*)",
)

CATALOG: tuple[Scenario, ...] = (
    # -- ported: fig13a/b — safety-check overhead -------------------------------
    Scenario(
        id="fig13a-overhead-synthetic",
        title="safety-check overhead, synthetic grammar (Fig. 13a)",
        grammar="synthetic:400",
        query_class="overhead",
        run_edges=0,
        params=(("queries", 10), ("k", 3)),
        suites=_CI,
    ),
    Scenario(
        id="fig13b-overhead-bioaid",
        title="safety-check overhead vs query size, BioAID (Fig. 13b)",
        grammar="bioaid",
        query_class="overhead",
        run_edges=0,
        params=(("queries", 10), ("k", 6)),
        suites=_CI,
    ),
    # -- ported: fig13c/d — pairwise decode -------------------------------------
    Scenario(
        id="fig13c-pairwise-bioaid",
        title="pairwise IFQ decode per pair, BioAID (Fig. 13c)",
        grammar="bioaid",
        query_class="pairwise",
        run_edges=1000,
        params=(("pairs", 600), ("k", 3)),
        suites=_CI,
    ),
    Scenario(
        id="fig13d-pairwise-qblast",
        title="pairwise IFQ decode at larger k, QBLast (Fig. 13d)",
        grammar="qblast",
        query_class="pairwise",
        run_edges=1000,
        params=(("pairs", 600), ("k", 6)),
        suites=_CI,
    ),
    # -- ported: fig13e/f — all-pairs safe IFQs ---------------------------------
    Scenario(
        id="fig13e-allpairs-ifq-bioaid",
        title="all-pairs safe IFQ, BioAID (Fig. 13e)",
        grammar="bioaid",
        query_class="safe-allpairs",
        run_edges=1500,
        params=(("k", 3),),
        suites=_CI,
    ),
    Scenario(
        id="fig13f-allpairs-ifq-qblast",
        title="all-pairs safe IFQ, QBLast (Fig. 13f)",
        grammar="qblast",
        query_class="safe-allpairs",
        run_edges=1500,
        params=(("k", 3),),
        # seed chosen so the sampled IFQ's endpoints survive the ci-scale
        # list cap: a zero-pair checksum would gate nothing.
        seed=3,
        suites=_CI,
    ),
    # -- ported: fig13g/h — all-pairs Kleene star -------------------------------
    Scenario(
        id="fig13g-kleene-bioaid",
        title="all-pairs Kleene star on fork-heavy BioAID runs (Fig. 13g)",
        grammar="bioaid",
        query_class="kleene-allpairs",
        run_edges=4000,
        params=(("kleene_tag", "f1_fork"),),
        suites=_CI,
    ),
    Scenario(
        id="fig13h-kleene-qblast",
        title="all-pairs Kleene star on loop-heavy QBLast runs (Fig. 13h)",
        grammar="qblast",
        query_class="kleene-allpairs",
        run_edges=4000,
        params=(("kleene_tag", "q1_loop"),),
        suites=_CI,
    ),
    # -- ported: fig15 — unsafe queries and restriction pushdown ----------------
    Scenario(
        id="fig15-unsafe-bioaid",
        title="unsafe query via decomposition, BioAID (Fig. 15)",
        grammar="bioaid",
        query_class="unsafe-allpairs",
        run_edges=1200,
        params=(("query", "_* f1_fork _*"),),
        suites=_CI,
    ),
    Scenario(
        id="fig15-restricted-pushdown-qblast",
        title="restricted (5x5) unsafe query: pushdown regime (PR 3)",
        grammar="qblast",
        query_class="unsafe-allpairs",
        run_edges=3000,
        params=(("query", "_* qx_b _*"), ("lists", "restricted")),
        suites=_CI,
    ),
    # -- ported: executor direction + parallelism (PR 5) ------------------------
    Scenario(
        id="frontier-forward",
        title="frontier search, forward from every source",
        executor=ExecutorFactors(strategy="frontier", direction="forward"),
        **_FRONTIER,
    ),
    Scenario(
        id="frontier-backward",
        title="frontier search, backward from the three targets",
        executor=ExecutorFactors(strategy="frontier", direction="backward"),
        **_FRONTIER,
    ),
    Scenario(
        id="frontier-serial",
        title="frontier search, serial per-seed execution",
        executor=ExecutorFactors(strategy="frontier", direction="forward", workers=1),
        **_FRONTIER,
    ),
    Scenario(
        id="frontier-parallel-4w",
        title="frontier search, 4-worker per-seed fan-out",
        executor=ExecutorFactors(strategy="frontier", direction="forward", workers=4),
        **_FRONTIER,
    ),
    # -- ported: service throughput (PR 1/2) ------------------------------------
    Scenario(
        id="service-throughput-cold",
        title="mixed batch through a fresh service (first-contact cost)",
        grammar="qblast",
        query_class="service-batch",
        run_edges=600,
        params=(
            ("mode", "cold"),
            ("batch_size", 96),
            ("batch_queries", ("_* B1 _*", "_* q_prep _*", "(_* B1 _*) | (_* q_prep _*)")),
        ),
        suites=_CI,
    ),
    Scenario(
        id="service-throughput-warm",
        title="mixed batch through a warm long-lived service (steady state)",
        grammar="qblast",
        query_class="service-batch",
        run_edges=600,
        params=(
            ("mode", "warm"),
            ("batch_size", 96),
            ("batch_queries", ("_* B1 _*", "_* q_prep _*", "(_* B1 _*) | (_* q_prep _*)")),
        ),
        suites=_CI,
    ),
    # -- ported: store warm restarts (PR 4) -------------------------------------
    Scenario(
        id="store-restart-cold",
        title="fresh-service first-contact batch, no store",
        grammar="qblast",
        query_class="warm-restart",
        run_edges=600,
        executor=ExecutorFactors(store=False),
        params=(("batch_queries", _RESTART_QUERIES),),
        suites=_CI,
    ),
    Scenario(
        id="store-restart-warm",
        title="fresh-service first-contact batch from a pre-built store",
        grammar="qblast",
        query_class="warm-restart",
        run_edges=600,
        executor=ExecutorFactors(store=True),
        params=(("batch_queries", _RESTART_QUERIES),),
        suites=_CI,
    ),
    # -- new coverage: synthetic grammar families -------------------------------
    # Deep recursion makes every tag count execution-dependent, so *all*
    # IFQs over this family are unsafe: exactly the decomposition-heavy
    # regime the family exists to stress.
    Scenario(
        id="deep-recursion-unsafe",
        title="unsafe IFQ over a deeply recursive synthetic grammar",
        grammar="deep-recursion:300",
        query_class="unsafe-allpairs",
        run_edges=1200,
        params=(("k", 3),),
        suites=_CI,
    ),
    Scenario(
        id="wide-alternation-unsafe",
        title="unsafe query over an alternative-rich synthetic grammar",
        grammar="wide-alternation:300",
        query_class="unsafe-allpairs",
        run_edges=1200,
        params=(("query", "_* op0 _*"),),
        suites=_CI,
    ),
    Scenario(
        id="dense-wildcard-adversarial",
        title="adversarial dense-wildcard unsafe query (frontier stays saturated)",
        grammar="dense-wildcard:250",
        query_class="adversarial-unsafe",
        run_edges=1500,
        params=(("query", "_* op0 _* op0 _*"),),
        suites=_CI,
    ),
    # -- new coverage: compute-kernel A/B (PR 10) -------------------------------
    # The same join-strategy evaluation of a wildcard-dense unsafe query on
    # both kernels: the regime where relation algebra dominates, so the
    # packed bitset rows (word-parallel compose/closure) must beat the
    # per-element set path by a wide margin ('packed-kernel-5x' below).
    Scenario(
        id="kernel-packed-join",
        title="dense-wildcard join evaluation on the packed bitset kernel",
        grammar="dense-wildcard:250",
        query_class="unsafe-allpairs",
        run_edges=1200,
        executor=ExecutorFactors(strategy="join", kernel="packed"),
        params=(("query", "_* op0 _*"),),
        seed=1,
        suites=_CI,
    ),
    Scenario(
        id="kernel-sets-join",
        title="the same join evaluation on the legacy set-based kernel",
        grammar="dense-wildcard:250",
        query_class="unsafe-allpairs",
        run_edges=1200,
        executor=ExecutorFactors(strategy="join", kernel="sets"),
        params=(("query", "_* op0 _*"),),
        seed=1,
        suites=_CI,
    ),
    # -- new coverage: observability overhead -----------------------------------
    # The same unsafe all-pairs evaluation, with and without a recording
    # tracer installed; the 'tracer-overhead' invariant bounds the gap, and
    # the untraced arm doubles as the null-tracer-cost regression guard.
    Scenario(
        id="obs-untraced",
        title="all-pairs evaluation under the null tracer (production default)",
        grammar="qblast",
        query_class="obs-overhead",
        run_edges=1500,
        params=(("query", "_* qx_b _*"), ("traced", False)),
        suites=_CI,
    ),
    Scenario(
        id="obs-traced",
        title="the same all-pairs evaluation under a recording tracer",
        grammar="qblast",
        query_class="obs-overhead",
        run_edges=1500,
        params=(("query", "_* qx_b _*"), ("traced", True)),
        suites=_CI,
    ),
    # -- new coverage: mixed safe/unsafe batch ----------------------------------
    Scenario(
        id="mixed-batch-qblast",
        title="service batch mixing safe pairwise with unsafe all-pairs requests",
        grammar="qblast",
        query_class="service-batch",
        run_edges=600,
        params=(
            ("mode", "warm"),
            ("batch_size", 80),
            ("batch_queries", ("_* B1 _*", "_* q_prep _*")),
            ("unsafe_query", "_* qx_b _*"),
        ),
        suites=_CI,
    ),
)

INVARIANTS: tuple[Invariant, ...] = (
    Invariant(
        id="backward-beats-forward",
        fast="frontier-backward",
        slow="frontier-forward",
        note="with |l2|=3 and |l1|=all nodes the reversed-DFA search must win",
    ),
    Invariant(
        id="parallel-2x",
        fast="frontier-parallel-4w",
        slow="frontier-serial",
        factor=2.0,
        min_cpus=4,
        note="per-seed process fan-out at 4 workers must give >= 2x",
    ),
    # The dedicated store benchmark historically showed ~4.5-6x; the bound
    # here is looser because the scenario repays service construction and
    # batch evaluation in both arms, which dilutes the ratio and adds noise.
    Invariant(
        id="warm-restart-3.5x",
        fast="store-restart-warm",
        slow="store-restart-cold",
        factor=3.5,
        note="store-backed restart must elide >= 3.5x of the first-contact cost",
    ),
    Invariant(
        id="service-cache-wins",
        fast="service-throughput-warm",
        slow="service-throughput-cold",
        note="a warm shared cache must beat per-batch rebuilds",
    ),
    Invariant(
        id="packed-kernel-5x",
        fast="kernel-packed-join",
        slow="kernel-sets-join",
        factor=5.0,
        note="the uint64 bitset kernel must beat the set reference >= 5x on "
        "the dense-wildcard join workload",
    ),
    # Deliberately inverted roles: the gate checks slow >= factor * fast, so
    # naming the *untraced* arm as 'slow' with factor 0.8 bounds the traced
    # arm at <= 1.25x of the untraced baseline.
    Invariant(
        id="tracer-overhead",
        fast="obs-traced",
        slow="obs-untraced",
        factor=0.8,
        note="a recording tracer may cost at most 25% over the null-tracer path",
    ),
)


def get_scenario(scenario_id: str) -> Scenario:
    for scenario in CATALOG:
        if scenario.id == scenario_id:
            return scenario
    raise ScenarioError(
        f"unknown scenario {scenario_id!r}; run 'repro bench list' for the catalog"
    )


def select(
    *, suite: str = "ci", ids: Sequence[str] | None = None
) -> tuple[Scenario, ...]:
    """Scenarios to run: an explicit id list, or every member of a suite."""
    if ids:
        return tuple(get_scenario(scenario_id) for scenario_id in ids)
    chosen = tuple(scenario for scenario in CATALOG if scenario.in_suite(suite))
    if not chosen:
        known = sorted({name for scenario in CATALOG for name in scenario.suites})
        raise ScenarioError(f"no scenarios in suite {suite!r}; known suites: {known + ['all']}")
    return chosen


def check_catalog(
    *,
    runnable: bool = False,
    scale: str = "smoke",
    progress: Callable[[str], None] | None = None,
) -> list[str]:
    """Validate the catalog; returns a list of problems (empty = healthy).

    Static checks: unique ids, resolvable grammar factors, known query
    classes and scales, executor factors that construct, invariants that
    reference existing scenarios.  With ``runnable=True`` every entry is
    additionally *executed* at the given scale, so a broken benchmark
    definition fails fast without timing anything meaningful.
    """
    problems: list[str] = []
    seen: set[str] = set()
    for scenario in CATALOG:
        if scenario.id in seen:
            problems.append(f"duplicate scenario id {scenario.id!r}")
        seen.add(scenario.id)
        if scenario.query_class not in WORKLOADS:
            problems.append(
                f"{scenario.id}: unknown query class {scenario.query_class!r}"
            )
        try:
            resolve_grammar(scenario.grammar)
        except ScenarioError as error:
            problems.append(f"{scenario.id}: {error}")
        try:
            from repro.core.exec import ExecutorConfig

            ExecutorConfig(
                direction=scenario.executor.direction,
                workers=scenario.executor.workers,
                kernel=scenario.executor.kernel,
            )
            if scenario.executor.strategy not in ("auto", "frontier", "join"):
                raise ValueError(f"unknown strategy {scenario.executor.strategy!r}")
        except ValueError as error:
            problems.append(f"{scenario.id}: bad executor factors: {error}")
        unknown_suites = set(scenario.suites) - set(_CI) - {"smoke"}
        if not scenario.suites or unknown_suites:
            problems.append(f"{scenario.id}: bad suites {scenario.suites!r}")
    for invariant in INVARIANTS:
        for reference in (invariant.fast, invariant.slow):
            if reference not in seen:
                problems.append(
                    f"invariant {invariant.id!r} references unknown scenario {reference!r}"
                )
    if scale not in SCALES:
        problems.append(f"unknown scale {scale!r}")
    if runnable and not problems:
        for scenario in CATALOG:
            if progress is not None:
                progress(f"running {scenario.id} at scale {scale} ...")
            try:
                result = run_scenario(scenario, scale, repetitions=1)
            except (ReproError, ValueError, KeyError) as error:
                problems.append(f"{scenario.id}: failed at scale {scale}: {error}")
            else:
                if not result.checksum:
                    problems.append(f"{scenario.id}: produced no checksum")
    return problems
