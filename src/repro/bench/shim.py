"""Pytest shims for the retired hand-rolled ``benchmarks/bench_*.py`` files.

Every old benchmark script is now a declarative entry in
:mod:`repro.bench.catalog`; the files under ``benchmarks/`` remain only as
thin pointers so ``pytest benchmarks/`` keeps exercising the same code paths
(at smoke scale, with no timing claims — timing and gating live in
``repro bench run`` / ``repro bench gate``).
"""

from __future__ import annotations

from typing import Callable

import pytest


def scenario_smoke_tests(*scenario_ids: str) -> Callable[[str], None]:
    """A parametrized pytest function running catalog entries at smoke scale."""

    @pytest.mark.parametrize("scenario_id", scenario_ids)
    def test_scenario_smoke(scenario_id: str) -> None:
        from repro.bench.catalog import get_scenario
        from repro.bench.scenarios import run_scenario

        result = run_scenario(get_scenario(scenario_id), "smoke", repetitions=1)
        assert result.checksum
        assert result.repetitions == 1

    return test_scenario_smoke
