"""Declarative benchmark scenarios and the generic harness that runs them.

A :class:`Scenario` is a pure config object describing one benchmark as a
point in a factor space — grammar family × run size × query class × executor
configuration (``direction``, ``workers``, ``strategy``, store on/off) — plus
the suites it belongs to.  The catalog (:mod:`repro.bench.catalog`) registers
the scenarios; this module knows how to *execute* any of them through one
generic harness:

1. resolve the grammar factor into a :class:`~repro.workflow.spec.Specification`
   (built-ins, ``synthetic:<size>``, or one of the synthetic *families*:
   ``deep-recursion:<size>``, ``wide-alternation:<size>``,
   ``dense-wildcard:<size>``),
2. build the workload named by ``query_class`` (the builders in
   :data:`WORKLOADS` — all setup cost lives here, outside the timed region),
3. time the workload action ``repetitions`` times and emit one uniform row:
   scenario id, factors, repetitions, median/p95 latency, and a
   result-count checksum so correctness regressions surface alongside
   performance regressions.

:func:`run_suite` aggregates rows into the ``repro-bench-trajectory/1``
document that ``repro bench gate`` (:mod:`repro.bench.gate`) compares against
the stored trajectory.  Every random choice is seeded by the scenario, so
checksums are reproducible across machines and Python versions.
"""

from __future__ import annotations

import hashlib
import json
import os
import statistics
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.exec import ExecutorConfig
    from repro.core.relations import NodePairs
    from repro.service.requests import QueryRequest, QueryResult
    from repro.workflow.run import Run
    from repro.workflow.spec import Specification

__all__ = [
    "SCHEMA",
    "SCALES",
    "ExecutorFactors",
    "Invariant",
    "Scenario",
    "ScenarioResult",
    "ScenarioScale",
    "calibrate",
    "resolve_grammar",
    "run_scenario",
    "run_suite",
]

#: Version tag of the trajectory document this module emits.
SCHEMA = "repro-bench-trajectory/1"


class ScenarioError(ReproError):
    """A scenario config that cannot be resolved or executed."""


# ---------------------------------------------------------------------------
# Factors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutorFactors:
    """The executor-configuration axis of the factor space.

    Mirrors the executor knobs: frontier ``direction``, parallel ``workers``
    fan-out, unsafe-remainder ``strategy``, the compute ``kernel``
    (``packed`` bitsets vs the legacy ``sets`` path), and whether a
    persistent :class:`~repro.store.IndexStore` backs the service
    (``store``).
    """

    direction: str = "auto"
    workers: int = 1
    strategy: str = "auto"
    kernel: str = "auto"
    store: bool = False

    def as_dict(self) -> dict[str, object]:
        return {
            "direction": self.direction,
            "workers": self.workers,
            "strategy": self.strategy,
            "kernel": self.kernel,
            "store": self.store,
        }


@dataclass(frozen=True)
class ScenarioScale:
    """How one named scale shrinks or grows every scenario.

    ``smoke`` exists to *exercise* every catalog entry in seconds with no
    meaningful timing (the CI no-timing smoke and ``repro bench check``);
    ``ci`` is the gated trajectory scale; ``full`` is for local deep dives.
    """

    name: str
    edge_divisor: int  # scenario.run_edges // divisor (floored at min_edges)
    repetitions: int
    list_limit: int  # all-pairs node-list sample bound
    batch_divisor: int  # service batch sizes // divisor
    min_edges: int = 40


SCALES: dict[str, ScenarioScale] = {
    scale.name: scale
    for scale in (
        ScenarioScale("smoke", edge_divisor=20, repetitions=1, list_limit=30, batch_divisor=8),
        ScenarioScale("ci", edge_divisor=1, repetitions=3, list_limit=150, batch_divisor=1),
        ScenarioScale("full", edge_divisor=1, repetitions=5, list_limit=None, batch_divisor=1),
    )
}


@dataclass(frozen=True)
class Scenario:
    """One declarative benchmark: a point in the factor space plus identity.

    ``params`` carries query-class-specific knobs (query text, IFQ size ``k``,
    list shapes, batch sizes) as a hashable tuple of pairs; use
    :meth:`param` to read them.  ``run_edges`` is the run size at the ``ci``
    scale — other scales derive from it via :class:`ScenarioScale`.
    """

    id: str
    title: str
    grammar: str
    query_class: str
    run_edges: int
    executor: ExecutorFactors = ExecutorFactors()
    suites: tuple[str, ...] = ("ci",)
    params: tuple[tuple[str, object], ...] = ()
    seed: int = 0

    def param(self, key: str, default: Any = None) -> Any:
        return dict(self.params).get(key, default)

    def factors(self) -> dict[str, object]:
        return {
            "grammar": self.grammar,
            "query_class": self.query_class,
            "run_edges": self.run_edges,
            "executor": self.executor.as_dict(),
            "params": dict(self.params),
            "seed": self.seed,
        }

    def in_suite(self, suite: str) -> bool:
        return suite == "all" or suite in self.suites


@dataclass(frozen=True)
class Invariant:
    """A relation between two scenarios' timings that must hold in a run.

    These replace the hard-coded asserts of the old ``bench_*.py`` scripts
    (backward beats forward, parallel ≥ 2x, warm restart ≥ 4.5x): the gate
    checks them on the *current* results, independently of the stored
    trajectory.  ``min_cpus`` guards claims the hardware cannot express.
    """

    id: str
    fast: str  # scenario id expected to be faster
    slow: str  # scenario id expected to be slower
    factor: float = 1.0  # require slow_median >= factor * fast_median
    min_cpus: int = 1
    note: str = ""


@dataclass
class ScenarioResult:
    """One uniform run-table row."""

    scenario_id: str
    factors: dict[str, object]
    repetitions: int
    times_s: list[float]
    checksum: str
    detail: str = ""

    @property
    def median_s(self) -> float:
        return statistics.median(self.times_s)

    @property
    def p95_s(self) -> float:
        ordered = sorted(self.times_s)
        if len(ordered) == 1:
            return ordered[0]
        rank = 0.95 * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)

    def as_dict(self) -> dict[str, object]:
        return {
            "id": self.scenario_id,
            "factors": self.factors,
            "repetitions": self.repetitions,
            "times_s": [round(value, 6) for value in self.times_s],
            "median_s": round(self.median_s, 6),
            "p95_s": round(self.p95_s, 6),
            "checksum": self.checksum,
            "detail": self.detail,
        }


# ---------------------------------------------------------------------------
# Grammar families
# ---------------------------------------------------------------------------

_FAMILY_KWARGS: dict[str, dict[str, float]] = {
    # Long self-recursive chains: stresses closure/Kleene machinery.
    "deep-recursion": {"recursion_fraction": 0.85, "alternative_fraction": 0.1},
    # Almost every composite has an alternative implementation: a rich
    # source of unsafe queries and decomposition work.
    "wide-alternation": {"recursion_fraction": 0.1, "alternative_fraction": 0.9},
    # A tiny tag vocabulary makes every tag frequent, so `_*`-heavy queries
    # match densely and frontier searches stay alive across the whole run.
    "dense-wildcard": {"tag_vocabulary_size": 5, "branchiness": 0.5},
}


def resolve_grammar(token: str) -> "Specification":
    """Resolve a grammar factor into a specification.

    Accepts the built-in names (``bioaid``, ``qblast``, ``paper-example``),
    ``synthetic:<size>``, and the synthetic families of :data:`_FAMILY_KWARGS`
    as ``<family>:<size>``.
    """
    from repro.datasets.myexperiment import bioaid_specification, qblast_specification
    from repro.datasets.paper_example import paper_specification
    from repro.datasets.synthetic import generate_synthetic_specification

    builtins = {
        "bioaid": bioaid_specification,
        "qblast": qblast_specification,
        "paper-example": paper_specification,
    }
    if token in builtins:
        return builtins[token]()
    family, _, size_text = token.partition(":")
    if not size_text:
        raise ScenarioError(
            f"unknown grammar factor {token!r}; use one of {sorted(builtins)} or "
            f"'<family>:<size>' with a family in {['synthetic', *sorted(_FAMILY_KWARGS)]}"
        )
    try:
        size = int(size_text)
    except ValueError:
        raise ScenarioError(f"grammar factor {token!r} has a non-integer size") from None
    if family == "synthetic":
        return generate_synthetic_specification(size, seed=1)
    try:
        kwargs = _FAMILY_KWARGS[family]
    except KeyError:
        raise ScenarioError(
            f"unknown grammar family {family!r}; "
            f"use one of {['synthetic', *sorted(_FAMILY_KWARGS)]}"
        ) from None
    return generate_synthetic_specification(size, seed=1, name=f"{family}-{size}", **kwargs)


# ---------------------------------------------------------------------------
# Checksums
# ---------------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(item) for item in value)
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, dict):
        return {key: _canonical(item) for key, item in sorted(value.items())}
    if isinstance(value, list):
        return [_canonical(item) for item in value]
    return value


def result_checksum(value: Any) -> str:
    """A short stable digest of a workload result (size + content hash).

    Pair sets, counts and batch summaries all reduce to canonical JSON, so
    the same scenario producing a different *answer* — not just a different
    timing — flips the checksum and fails the gate.
    """
    canonical = _canonical(value)
    blob = json.dumps(canonical, sort_keys=True, default=str).encode()
    size = len(canonical) if isinstance(canonical, (list, dict)) else canonical
    return f"{size}:{hashlib.sha256(blob).hexdigest()[:12]}"


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------
#
# A builder maps (scenario, scale) -> a zero-argument action whose return
# value is checksummed.  Everything expensive that is *not* the measured
# claim (grammar resolution, run derivation, planning warm-up) happens in
# the builder, before the first timed call.


class _Prepared:
    def __init__(self, action: Callable[[], object], detail: str = "") -> None:
        self.action = action
        self.detail = detail


def _edges(scenario: Scenario, scale: ScenarioScale) -> int:
    return max(scale.min_edges, scenario.run_edges // scale.edge_divisor)


def _lists(
    run: "Run", scenario: Scenario, scale: ScenarioScale
) -> tuple[list[str], list[str]]:
    from repro.datasets.runs import node_lists

    limit = scale.list_limit
    override = scenario.param("list_limit")
    if override is not None and limit is not None:
        limit = min(int(override), limit)
    elif override is not None:
        limit = int(override)
    return node_lists(run, limit=limit, seed=scenario.seed + 2)


def _executor_config(scenario: Scenario) -> "ExecutorConfig":
    from repro.core.exec import ExecutorConfig

    return ExecutorConfig(
        direction=scenario.executor.direction,
        workers=scenario.executor.workers,
        kernel=scenario.executor.kernel,
    )


def _make_run(
    scenario: Scenario, scale: ScenarioScale, spec: "Specification | None" = None
) -> "Run":
    from repro.datasets.runs import generate_run

    spec = spec if spec is not None else resolve_grammar(scenario.grammar)
    return generate_run(spec, _edges(scenario, scale), seed=scenario.seed + 1)


def _build_overhead(scenario: Scenario, scale: ScenarioScale) -> _Prepared:
    """Fig. 13a/b: per-query safety-check + index-build overhead."""
    from repro.core.query_index import build_query_index
    from repro.core.safety import analyze_safety, query_dfa
    from repro.datasets.queries import generate_ifq

    spec = resolve_grammar(scenario.grammar)
    count = int(scenario.param("queries", 8))
    if scale.name == "smoke":
        count = min(count, 2)
    k = int(scenario.param("k", 3))
    queries = [generate_ifq(spec, k, seed=scenario.seed + index * 31) for index in range(count)]

    def action() -> dict[str, int]:
        safe = 0
        for query in queries:
            report = analyze_safety(spec, query_dfa(spec, query))
            if report.is_safe:
                build_query_index(spec, query)
                safe += 1
        return {"queries": len(queries), "safe": safe}

    return _Prepared(action, detail=f"{count} IFQs (k={k})")


def _build_pairwise(scenario: Scenario, scale: ScenarioScale) -> _Prepared:
    """Fig. 13c/d: per-pair decode over a sampled pair batch."""
    import random

    from repro.core.pairwise import answer_pairwise_query
    from repro.core.query_index import build_query_index

    spec = resolve_grammar(scenario.grammar)
    run = _make_run(scenario, scale, spec)
    pair_count = max(20, int(scenario.param("pairs", 600)) // scale.batch_divisor)
    rng = random.Random(scenario.seed + 3)
    nodes = list(run.node_ids())
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(pair_count)]
    query = _resolved_query(scenario, run, require_safe=True)
    query_index = build_query_index(spec, query)

    def action() -> dict[str, int]:
        matched = 0
        for source, target in pairs:
            if answer_pairwise_query(query_index, run.label_of(source), run.label_of(target)):
                matched += 1
        return {"pairs": len(pairs), "matched": matched}

    return _Prepared(action, detail=f"{pair_count} pairs, query {query!r}")


def _resolved_query(
    scenario: Scenario,
    run: "Run",
    *,
    require_safe: bool = False,
    require_unsafe: bool = False,
) -> str:
    """The scenario's query: explicit ``params['query']``, or a generated
    IFQ (``params['prefer']`` biases tag frequency) filtered by safety."""
    from repro.core.decomposition import plan_decomposition
    from repro.datasets.index import EdgeTagIndex
    from repro.datasets.queries import generate_ifq, generate_ifq_along_path

    explicit = scenario.param("query")
    if explicit is not None:
        return str(explicit)
    spec = run.spec
    index = EdgeTagIndex.from_run(run)
    k = int(scenario.param("k", 3))
    prefer = scenario.param("prefer")

    def matches(query: str) -> bool:
        plan = plan_decomposition(spec, query)
        if require_safe and not plan.is_fully_safe:
            return False
        if require_unsafe and plan.is_fully_safe:
            return False
        return True

    for attempt in range(80):
        query = generate_ifq_along_path(
            run, k, seed=scenario.seed + attempt * 101, prefer=prefer, index=index
        )
        if matches(query):
            return query
    # Small runs may not offer length-k walks with the required safety, so
    # fall back to grammar-wide IFQs (still deterministic, still checked).
    for attempt in range(40):
        query = generate_ifq(spec, k, seed=scenario.seed + attempt * 17)
        if matches(query):
            return query
    raise ScenarioError(
        f"scenario {scenario.id!r}: could not generate a "
        f"{'safe' if require_safe else 'matching'} query for grammar {scenario.grammar!r}"
    )


def _build_allpairs(scenario: Scenario, scale: ScenarioScale) -> _Prepared:
    """Safe/unsafe all-pairs evaluation with the scenario's executor factors.

    ``params['lists']`` shapes the restriction lists: ``"all"`` (sampled
    node lists), ``"restricted"`` (a handful of each — the pushdown regime),
    or ``"few-targets"`` (every node as a source, the three largest-closure
    nodes as targets — the backward-direction regime).
    """
    from repro.core.decomposition import evaluate_general_query, plan_decomposition
    from repro.core.relations import backward_closure_nodes

    spec = resolve_grammar(scenario.grammar)
    run = _make_run(scenario, scale, spec)
    query = _resolved_query(
        scenario,
        run,
        require_safe=scenario.query_class == "safe-allpairs",
        require_unsafe=scenario.query_class in ("unsafe-allpairs", "adversarial-unsafe"),
    )
    plan = plan_decomposition(spec, query)
    shape = str(scenario.param("lists", "all"))
    if shape == "few-targets":
        l1 = list(run.node_ids())
        l2 = sorted(
            l1, key=lambda node: len(backward_closure_nodes(run, [node])), reverse=True
        )[:3]
    elif shape == "restricted":
        sampled1, sampled2 = _lists(run, scenario, scale)
        l1, l2 = sampled1[:5], sampled2[-5:]
    else:
        l1, l2 = _lists(run, scenario, scale)
    executor = _executor_config(scenario)
    kwargs = {
        "plan": plan,
        "strategy": scenario.executor.strategy,
        "direction": scenario.executor.direction,
        "executor": executor,
    }

    def action() -> "NodePairs":
        return evaluate_general_query(run, query, l1, l2, **kwargs)

    # Warm the plan's memoized (possibly reversed) macro DFAs so repetitions
    # time execution, not one-off planning.
    evaluate_general_query(run, query, l1[:1], l2[:1], **kwargs)
    return _Prepared(
        action,
        detail=f"query {query!r}, |l1|={len(l1)}, |l2|={len(l2)}, {_edges(scenario, scale)} edges",
    )


def _build_kleene(scenario: Scenario, scale: ScenarioScale) -> _Prepared:
    """Fig. 13g/h: Kleene-star all-pairs over a fork-heavy run."""
    from repro.core.decomposition import evaluate_general_query
    from repro.datasets.myexperiment import fork_production_indices
    from repro.datasets.runs import generate_fork_heavy_run

    spec = resolve_grammar(scenario.grammar)
    tag = scenario.param("kleene_tag")
    if tag is None:
        raise ScenarioError(f"scenario {scenario.id!r}: kleene workloads need params['kleene_tag']")
    forks = fork_production_indices(spec, str(tag))
    run = generate_fork_heavy_run(spec, _edges(scenario, scale), forks, seed=scenario.seed + 1)
    l1, l2 = _lists(run, scenario, scale)
    query = f"{tag}*"

    def action() -> "NodePairs":
        return evaluate_general_query(run, query, l1, l2)

    return _Prepared(action, detail=f"query {query!r}, |l1|={len(l1)}")


def _mixed_batch(
    scenario: Scenario, scale: ScenarioScale, run_id: str, run: "Run"
) -> "list[QueryRequest]":
    """A deterministic service batch: pairwise + reachability + (optionally)
    unsafe all-pairs requests, per ``params['unsafe_query']``."""
    import itertools

    from repro.service import QueryRequest

    size = max(8, int(scenario.param("batch_size", 96)) // scale.batch_divisor)
    nodes = run.node_ids()
    sources = nodes[: max(2, size // 4)]
    targets = nodes[-max(2, size // 4):]
    queries = itertools.cycle(
        [str(query) for query in scenario.param("batch_queries", ("_*",))]
    )
    unsafe_query = scenario.param("unsafe_query")
    requests = []
    for position in range(size):
        source = sources[position % len(sources)]
        target = targets[position % len(targets)]
        if unsafe_query is not None and position % 5 == 4:
            requests.append(
                QueryRequest(
                    op="allpairs",
                    run=run_id,
                    query=str(unsafe_query),
                    sources=tuple(sources[:4]),
                    targets=tuple(targets[:4]),
                )
            )
        elif position % 4 == 3:
            requests.append(
                QueryRequest(op="reachability", run=run_id, source=source, target=target)
            )
        else:
            requests.append(
                QueryRequest(
                    op="pairwise", run=run_id, query=next(queries),
                    source=source, target=target,
                )
            )
    return requests


def _batch_summary(results: "Sequence[QueryResult]") -> dict[str, object]:
    return {
        "requests": len(results),
        "ok": sum(result.ok for result in results),
        "answers": result_checksum(
            [
                [result.request_id, result.ok, _canonical(result.answer), _canonical(result.pairs)]
                for result in results
            ]
        ),
    }


def _build_service_batch(scenario: Scenario, scale: ScenarioScale) -> _Prepared:
    """Service throughput: one mixed batch through a QueryService.

    ``params['mode']``: ``"cold"`` builds a fresh service per repetition
    (first-contact cost), ``"warm"`` reuses one pre-warmed service (steady
    state).
    """
    from repro.service import QueryService

    spec = resolve_grammar(scenario.grammar)
    run = _make_run(scenario, scale, spec)
    requests = _mixed_batch(scenario, scale, "bench", run)
    mode = str(scenario.param("mode", "warm"))

    if mode == "cold":

        def action() -> dict[str, object]:
            service = QueryService(max_workers=4)
            service.register_run(run, "bench")
            return _batch_summary(service.run_batch(requests))

    else:
        service = QueryService(max_workers=4)
        service.register_run(run, "bench")
        service.run_batch(requests)  # warm the cache

        def action() -> dict[str, object]:
            return _batch_summary(service.run_batch(requests))

    return _Prepared(action, detail=f"{len(requests)} requests, mode={mode}")


def _build_warm_restart(scenario: Scenario, scale: ScenarioScale) -> _Prepared:
    """Store restarts: first-contact batch from a fresh service, with
    (``executor.store``) or without a pre-built persistent store."""
    import tempfile
    from pathlib import Path

    from repro.service import QueryService
    from repro.workflow.serialization import save_run

    spec = resolve_grammar(scenario.grammar)
    run = _make_run(scenario, scale, spec)
    queries = [str(query) for query in scenario.param("batch_queries", ("_*",))]
    nodes = run.node_ids()
    batch = [
        {
            "op": "pairwise",
            "run": "bench",
            "query": query,
            "source": nodes[position % len(nodes)],
            "target": nodes[-1 - position % len(nodes)],
        }
        for position, query in enumerate(queries)
    ]
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    run_file = scratch / "run.json"
    save_run(run, run_file)
    store_dir = None
    if scenario.executor.store:
        store_dir = scratch / "store"
        warmer = QueryService(store_dir=store_dir)
        warmer.register_run(run, "bench")
        statuses = warmer.warm("bench", queries)
        bad = {query: status for query, status in statuses.items() if status.startswith("error")}
        if bad:
            raise ScenarioError(f"scenario {scenario.id!r}: store warm-up failed: {bad}")

    def action() -> dict[str, object]:
        if store_dir is not None:
            service = QueryService(store_dir=store_dir)
        else:
            service = QueryService()
            service.load_run_file(run_file, run_id="bench")
        return _batch_summary(service.run_batch(batch))

    return _Prepared(
        action, detail=f"{len(batch)} first-contact queries, store={'on' if store_dir else 'off'}"
    )


def _build_obs_overhead(scenario: Scenario, scale: ScenarioScale) -> _Prepared:
    """Tracer overhead pair: the same all-pairs evaluation with either the
    null tracer (the production default — ``params['traced']`` false) or a
    recording :class:`~repro.obs.Tracer` installed.  Both arms produce the
    identical pair set, so the checksum pins correctness while the
    ``tracer-overhead`` invariant bounds the traced arm's cost."""
    from repro.core.decomposition import evaluate_general_query, plan_decomposition
    from repro.obs import NULL_TRACER, Tracer, use_tracer

    run = _make_run(scenario, scale)
    query = _resolved_query(scenario, run)
    plan = plan_decomposition(run.spec, query)
    l1, l2 = _lists(run, scenario, scale)
    traced = bool(scenario.param("traced", False))
    recorder = Tracer() if traced else None

    def action() -> "NodePairs":
        tracer: Any = recorder if recorder is not None else NULL_TRACER
        if recorder is not None:
            recorder.clear()  # bound memory across repetitions
        with use_tracer(tracer):
            return evaluate_general_query(run, query, l1, l2, plan=plan)

    evaluate_general_query(run, query, l1[:1], l2[:1], plan=plan)  # warm the plan
    return _Prepared(
        action,
        detail=f"query {query!r}, traced={traced}, |l1|={len(l1)}",
    )


WORKLOADS: dict[str, Callable[[Scenario, ScenarioScale], _Prepared]] = {
    "overhead": _build_overhead,
    "obs-overhead": _build_obs_overhead,
    "pairwise": _build_pairwise,
    "safe-allpairs": _build_allpairs,
    "unsafe-allpairs": _build_allpairs,
    "adversarial-unsafe": _build_allpairs,
    "kleene-allpairs": _build_kleene,
    "service-batch": _build_service_batch,
    "warm-restart": _build_warm_restart,
}


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def calibrate() -> float:
    """Time a fixed pure-Python busy loop (best of 5).

    Stored in every trajectory document; the gate normalizes medians by the
    calibration ratio so a slower CI runner does not read as a regression.
    """
    def busy() -> int:
        total = 0
        for value in range(120_000):
            total += value * 3 & 0xFFFF
        return total

    return min(_time(busy)[0] for _ in range(5))


def _time(action: Callable[[], object]) -> tuple[float, object]:
    started = time.perf_counter()
    result = action()
    return time.perf_counter() - started, result


def resolve_scale(name: str) -> ScenarioScale:
    try:
        return SCALES[name]
    except KeyError:
        raise ScenarioError(f"unknown scale {name!r}; choose from {sorted(SCALES)}") from None


def run_scenario(
    scenario: Scenario,
    scale: str | ScenarioScale = "ci",
    *,
    repetitions: int | None = None,
) -> ScenarioResult:
    """Execute one scenario: build its workload, time it, checksum it."""
    profile = resolve_scale(scale) if isinstance(scale, str) else scale
    try:
        builder = WORKLOADS[scenario.query_class]
    except KeyError:
        raise ScenarioError(
            f"scenario {scenario.id!r} has unknown query class "
            f"{scenario.query_class!r}; use one of {sorted(WORKLOADS)}"
        ) from None
    prepared = builder(scenario, profile)
    reps = repetitions if repetitions is not None else profile.repetitions
    times: list[float] = []
    checksum = ""
    for _ in range(max(1, reps)):
        elapsed, result = _time(prepared.action)
        times.append(elapsed)
        digest = result_checksum(result)
        if checksum and digest != checksum:
            raise ScenarioError(
                f"scenario {scenario.id!r} is non-deterministic: repetition "
                f"checksums {checksum} != {digest}"
            )
        checksum = digest
    return ScenarioResult(
        scenario_id=scenario.id,
        factors=scenario.factors(),
        repetitions=len(times),
        times_s=times,
        checksum=checksum,
        detail=prepared.detail,
    )


def run_suite(
    scenarios: Sequence[Scenario],
    scale: str = "ci",
    *,
    suite: str = "ci",
    repetitions: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run a scenario list and assemble the trajectory document."""
    profile = resolve_scale(scale)
    results: list[ScenarioResult] = []
    for scenario in scenarios:
        if progress is not None:
            progress(f"running {scenario.id} ...")
        result = run_scenario(scenario, profile, repetitions=repetitions)
        if progress is not None:
            progress(
                f"  {scenario.id}: median {result.median_s * 1000:.1f} ms, "
                f"p95 {result.p95_s * 1000:.1f} ms, checksum {result.checksum}"
            )
        results.append(result)
    return {
        "schema": SCHEMA,
        "suite": suite,
        "scale": profile.name,
        "calibration_s": round(calibrate(), 6),
        "cpus": os.cpu_count() or 1,
        "scenarios": [result.as_dict() for result in results],
    }


def run_table(document: Mapping[str, Any]) -> list[dict[str, object]]:
    """Flatten a trajectory document into printable run-table rows."""
    rows = []
    for entry in document.get("scenarios", []):
        factors = entry.get("factors", {})
        executor = factors.get("executor", {})
        rows.append(
            {
                "scenario": entry.get("id", "?"),
                "grammar": factors.get("grammar", "?"),
                "class": factors.get("query_class", "?"),
                "exec": "/".join(
                    str(executor.get(key, "-"))
                    for key in ("strategy", "direction", "workers")
                )
                + ("+store" if executor.get("store") else "")
                + (
                    f"+{executor.get('kernel')}"
                    if executor.get("kernel") not in (None, "auto")
                    else ""
                ),
                "reps": entry.get("repetitions", 0),
                "median_ms": 1000 * entry.get("median_s", 0.0),
                "p95_ms": 1000 * entry.get("p95_s", 0.0),
                "checksum": entry.get("checksum", ""),
            }
        )
    return rows
