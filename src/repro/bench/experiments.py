"""Experiment definitions: one per table/figure of the paper's Section V.

Each function takes a :class:`~repro.bench.harness.BenchScale` and returns an
:class:`~repro.bench.harness.ExperimentResult` whose rows mirror the series
plotted in the corresponding figure.  The module-level :data:`EXPERIMENTS`
registry is what the CLI and the pytest benchmarks drive.

Engine naming follows the paper:

* ``RPL``    — regular path labels, pairwise decode / nested-loop all-pairs (S1);
* ``optRPL`` — all-pairs with the reachability filter (S2, Algorithm 2);
* ``G1``     — parse-tree joins baseline;
* ``G2``     — rare-label decomposition baseline;
* ``G3``     — edge-tag index + reachability labels baseline.
"""

from __future__ import annotations

import random
import statistics
from typing import Callable

from repro.baselines.g1_parse_tree_joins import g1_all_pairs
from repro.baselines.g2_rare_labels import g2_pairwise_batch
from repro.errors import ReproError
from repro.baselines.g3_label_index import g3_all_pairs, g3_pairwise_batch
from repro.bench.harness import BenchScale, ExperimentResult, current_scale, time_call
from repro.core.allpairs import AllPairsOptions, all_pairs_safe_query
from repro.core.decomposition import (
    evaluate_general_query,
    label_routed_subtrees,
    plan_decomposition,
)
from repro.automata.regex import parse_regex
from repro.core.optimizer import ifq_tags
from repro.core.pairwise import answer_pairwise_query
from repro.core.query_index import build_query_index
from repro.core.safety import analyze_safety, query_dfa
from repro.datasets.index import EdgeTagIndex
from repro.datasets.myexperiment import (
    BIOAID_KLEENE_TAG,
    QBLAST_KLEENE_TAG,
    bioaid_specification,
    fork_production_indices,
    qblast_specification,
)
from repro.datasets.queries import (
    discriminating_tags,
    generate_ifq,
    generate_ifq_along_path,
    generate_query_suite,
)
from repro.datasets.runs import generate_fork_heavy_run, generate_run, node_lists
from repro.datasets.synthetic import generate_synthetic_specification
from repro.workflow.run import Run
from repro.workflow.spec import Specification

__all__ = ["EXPERIMENTS", "run_experiment"]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _safety_overhead_seconds(spec: Specification, query: str) -> float:
    """The per-query overhead of the labeling approach: building the minimal
    DFA, checking safety and assembling the query index (Fig. 13a/b)."""
    def build() -> None:
        dfa = query_dfa(spec, query)
        report = analyze_safety(spec, dfa)
        if report.is_safe:
            build_query_index(spec, query)

    elapsed, _ = time_call(build)
    return elapsed


def _safe_path_ifq(run: Run, k: int, index: EdgeTagIndex, base_seed: int) -> str:
    """A *safe* IFQ with tags sampled along a run path (retries seeds until
    the safety check passes; the pairwise experiments of Fig. 13c/d measure
    the safe-query engine, so unsafe candidates are skipped)."""
    spec = run.spec
    for attempt in range(60):
        query = generate_ifq_along_path(run, k, seed=base_seed + attempt * 101, index=index)
        if plan_decomposition(spec, query).is_fully_safe:
            return query
    return generate_ifq(spec, k, tags=[sorted(spec.tags)[0]] * k)


def _sample_pairs(run: Run, count: int, seed: int) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    nodes = list(run.node_ids())
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(count)]


# ---------------------------------------------------------------------------
# Fig. 13a / 13b — overhead of the approach
# ---------------------------------------------------------------------------


def fig13a_overhead_grammar_size(scale: BenchScale) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig13a",
        title="safety-check overhead vs. grammar size (synthetic workflows, IFQ k=3)",
        expected_shape="overhead grows with grammar size but stays far below query time",
    )
    for size in scale.grammar_sizes:
        samples: list[float] = []
        for grammar_seed in range(scale.grammars_per_size):
            spec = generate_synthetic_specification(size, seed=grammar_seed)
            for query_seed in range(scale.overhead_queries):
                query = generate_ifq(spec, 3, seed=query_seed * 31 + grammar_seed)
                samples.append(_safety_overhead_seconds(spec, query))
        result.add(
            grammar_size=size,
            queries=len(samples),
            avg_overhead_ms=1000 * statistics.fmean(samples),
            worst_overhead_ms=1000 * max(samples),
        )
    return result


def fig13b_overhead_query_size(scale: BenchScale) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig13b",
        title="safety-check overhead vs. query size k (BioAID and QBLast IFQs)",
        expected_shape="overhead grows with k; both workflows stay in the same low range",
    )
    for name, spec in (("BioAID", bioaid_specification()), ("QBLast", qblast_specification())):
        for k in scale.pairwise_query_sizes:
            samples = [
                _safety_overhead_seconds(spec, generate_ifq(spec, k, seed=seed))
                for seed in range(scale.overhead_queries)
            ]
            result.add(
                workflow=name,
                k=k,
                avg_overhead_ms=1000 * statistics.fmean(samples),
                worst_overhead_ms=1000 * max(samples),
            )
    return result


# ---------------------------------------------------------------------------
# Fig. 13c / 13d — pairwise safe queries
# ---------------------------------------------------------------------------


def _pairwise_engines(
    run: Run,
    index: EdgeTagIndex,
    query: str,
    pairs: list[tuple[str, str]],
) -> dict[str, float]:
    """Return {engine: seconds per pair} for one query over one run."""
    spec = run.spec

    def rpl() -> None:
        query_index = build_query_index(spec, query)
        for u, v in pairs:
            answer_pairwise_query(query_index, run.label_of(u), run.label_of(v))

    def g3() -> None:
        g3_pairwise_batch(run, pairs, query, index=index)

    def g2() -> None:
        g2_pairwise_batch(run, pairs, query, index=index)

    timings = {}
    for name, function in (("RPL", rpl), ("G3", g3), ("G2", g2)):
        elapsed, _ = time_call(function)
        timings[name] = elapsed / len(pairs)
    return timings


def fig13c_pairwise_vs_run_size(scale: BenchScale) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig13c",
        title="pairwise IFQ (k=3) time per node pair vs. run size (BioAID)",
        expected_shape="RPL stays flat as the run grows; G3 and G2 grow with run size",
    )
    spec = bioaid_specification()
    for run_edges in scale.pairwise_run_sizes:
        run = generate_run(spec, run_edges, seed=run_edges)
        index = EdgeTagIndex.from_run(run)
        pairs = _sample_pairs(run, scale.pairwise_pairs, seed=run_edges)
        query = _safe_path_ifq(run, 3, index, base_seed=7)
        timings = _pairwise_engines(run, index, query, pairs)
        result.add(
            run_edges=run.edge_count,
            pairs=len(pairs),
            rpl_us_per_pair=1e6 * timings["RPL"],
            g3_us_per_pair=1e6 * timings["G3"],
            g2_us_per_pair=1e6 * timings["G2"],
        )
    return result


def fig13d_pairwise_vs_query_size(scale: BenchScale) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig13d",
        title="pairwise IFQ time per node pair vs. query size k (BioAID)",
        expected_shape="RPL grows mildly with k and stays below G2/G3 for k >= 1",
    )
    spec = bioaid_specification()
    run = generate_run(spec, scale.pairwise_run_sizes[-1] // 2, seed=3)
    index = EdgeTagIndex.from_run(run)
    pairs = _sample_pairs(run, scale.pairwise_pairs, seed=5)
    for k in scale.pairwise_query_sizes:
        query = _safe_path_ifq(run, k, index, base_seed=11 + k)
        timings = _pairwise_engines(run, index, query, pairs)
        result.add(
            k=k,
            rpl_us_per_pair=1e6 * timings["RPL"],
            g3_us_per_pair=1e6 * timings["G3"],
            g2_us_per_pair=1e6 * timings["G2"],
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 13e / 13f — all-pairs IFQs
# ---------------------------------------------------------------------------


def _safe_ifq_workload(
    spec: Specification, run: Run, index: EdgeTagIndex, count: int
) -> list[str]:
    """Generate ``count`` distinct *safe* IFQs (k=3) with a spread of
    selectivities, mirroring the workload of Fig. 13e/f (the figure's queries
    are answered with the safe engine, so unsafe candidates are skipped)."""
    queries: list[str] = []
    seen: set[str] = set()
    seed = 0
    preferences = ("rare", "frequent", None)
    while len(queries) < count and seed < count * 40:
        prefer = preferences[seed % len(preferences)]
        query = generate_ifq_along_path(run, 3, seed=seed, prefer=prefer, index=index)
        seed += 1
        if query in seen:
            continue
        seen.add(query)
        if plan_decomposition(spec, query).is_fully_safe:
            queries.append(query)
    return queries


def _allpairs_ifq(scale: BenchScale, spec: Specification, figure: str, title: str) -> ExperimentResult:
    result = ExperimentResult(
        figure=figure,
        title=title,
        expected_shape=(
            "the G3 baseline wins on highly selective IFQs and loses badly on lowly "
            "selective ones; optRPL <= RPL and both are insensitive to selectivity"
        ),
    )
    run = generate_run(spec, scale.allpairs_run_edges, seed=1)
    index = EdgeTagIndex.from_run(run)
    l1, l2 = node_lists(run, limit=scale.allpairs_list_limit, seed=2)
    queries = _safe_ifq_workload(spec, run, index, scale.allpairs_ifq_count)
    rows = []
    for query in queries:
        tags = ifq_tags(parse_regex(query)) or []
        # The baseline's pain is the size of its intermediate join chain, the
        # quantity the paper calls query selectivity.
        intermediate = sum(
            index.count(left) * index.count(right) for left, right in zip(tags, tags[1:])
        ) + sum(index.count(tag) for tag in tags)
        baseline_time, baseline_answer = time_call(
            lambda query=query: g3_all_pairs(run, l1, l2, query, index=index)
        )
        query_index = build_query_index(spec, query)
        rpl_time, rpl_answer = time_call(
            lambda qi=query_index: all_pairs_safe_query(
                run, l1, l2, qi, AllPairsOptions(use_reachability_filter=False)
            )
        )
        opt_time, opt_answer = time_call(
            lambda qi=query_index: all_pairs_safe_query(run, l1, l2, qi)
        )
        if not (baseline_answer == rpl_answer == opt_answer):
            result.note(f"ENGINE DISAGREEMENT for {query!r} — investigate")
        rows.append(
            {
                "intermediate_pairs": intermediate,
                "matches": len(opt_answer),
                "baseline_g3_s": baseline_time,
                "rpl_s": rpl_time,
                "optrpl_s": opt_time,
            }
        )
    # Split into highly / lowly selective halves by the size of the baseline's
    # intermediate results, matching the paper's two query groups.
    rows.sort(key=lambda row: row["intermediate_pairs"])
    half = len(rows) // 2
    for position, row in enumerate(rows):
        result.add(
            selectivity="high" if position < half else "low",
            **row,
        )
    result.note(f"run: {run.edge_count} edges; lists: |l1|=|l2|={len(l1)}")
    result.note(
        "selectivity split by the size of the baseline's intermediate join results"
    )
    return result


def fig13e_allpairs_ifq_bioaid(scale: BenchScale) -> ExperimentResult:
    return _allpairs_ifq(
        scale,
        bioaid_specification(),
        "fig13e",
        "all-pairs IFQs (k=3) on BioAID: baseline G3 vs RPL vs optRPL",
    )


def fig13f_allpairs_ifq_qblast(scale: BenchScale) -> ExperimentResult:
    return _allpairs_ifq(
        scale,
        qblast_specification(),
        "fig13f",
        "all-pairs IFQs (k=3) on QBLast: baseline G3 vs RPL vs optRPL",
    )


# ---------------------------------------------------------------------------
# Fig. 13g / 13h — all-pairs Kleene star
# ---------------------------------------------------------------------------


def _allpairs_kleene(
    scale: BenchScale, spec: Specification, kleene_tag: str, figure: str, title: str
) -> ExperimentResult:
    result = ExperimentResult(
        figure=figure,
        title=title,
        expected_shape=(
            "the G1 fixpoint baseline grows sharply with run size; RPL/optRPL grow "
            "slowly and win by a widening margin; optRPL is close to RPL"
        ),
    )
    query = f"{kleene_tag}*"
    forks = fork_production_indices(spec, kleene_tag)
    for run_edges in scale.kleene_run_sizes:
        run = generate_fork_heavy_run(spec, run_edges, forks, seed=run_edges)
        l1, l2 = node_lists(run, limit=scale.kleene_list_limit, seed=run_edges)
        baseline_time, baseline_answer = time_call(
            lambda run=run, l1=l1, l2=l2: g1_all_pairs(run, l1, l2, query)
        )
        query_index = build_query_index(spec, query)
        rpl_time, rpl_answer = time_call(
            lambda run=run, l1=l1, l2=l2, qi=query_index: all_pairs_safe_query(
                run, l1, l2, qi, AllPairsOptions(use_reachability_filter=False)
            )
        )
        opt_time, opt_answer = time_call(
            lambda run=run, l1=l1, l2=l2, qi=query_index: all_pairs_safe_query(run, l1, l2, qi)
        )
        if not (baseline_answer == rpl_answer == opt_answer):
            result.note(f"ENGINE DISAGREEMENT at run size {run_edges} — investigate")
        result.add(
            run_edges=run.edge_count,
            lists=len(l1),
            matches=len(opt_answer),
            baseline_g1_s=baseline_time,
            rpl_s=rpl_time,
            optrpl_s=opt_time,
        )
    return result


def fig13g_allpairs_kleene_bioaid(scale: BenchScale) -> ExperimentResult:
    return _allpairs_kleene(
        scale,
        bioaid_specification(),
        BIOAID_KLEENE_TAG,
        "fig13g",
        "all-pairs Kleene star (a*) on fork-heavy BioAID runs: G1 vs RPL vs optRPL",
    )


def fig13h_allpairs_kleene_qblast(scale: BenchScale) -> ExperimentResult:
    return _allpairs_kleene(
        scale,
        qblast_specification(),
        QBLAST_KLEENE_TAG,
        "fig13h",
        "all-pairs Kleene star (a*) on loop-heavy QBLast runs: G1 vs RPL vs optRPL",
    )


# ---------------------------------------------------------------------------
# Fig. 15 — general (unsafe) queries
# ---------------------------------------------------------------------------


def _general_queries(
    scale: BenchScale, spec: Specification, figure: str, title: str
) -> ExperimentResult:
    result = ExperimentResult(
        figure=figure,
        title=title,
        expected_shape=(
            "for unsafe queries with lowly selective safe components the decomposition "
            "(optRPL) improves over the G1 baseline, often by more than 40%"
        ),
    )
    run = generate_run(spec, scale.general_run_edges, seed=9)
    l1, l2 = node_lists(run, limit=scale.general_list_limit, seed=9)
    # Bias the random queries towards tags that distinguish alternative module
    # implementations, so a reasonable fraction of candidates is unsafe
    # (random queries over all tags are overwhelmingly safe, as the paper
    # also observes).
    index = EdgeTagIndex.from_run(run)
    frequent = [tag for tag in index.rarest_tags()[::-1][:20]]
    pool = sorted(set(discriminating_tags(spec)) | set(frequent))
    unsafe_queries = []
    seed = 0
    while len(unsafe_queries) < scale.general_query_count and seed < scale.general_query_count * 40:
        candidates = generate_query_suite(spec, count=1, seed=seed, depth=2, tag_pool=pool)
        seed += 1
        query = candidates[0]
        plan = plan_decomposition(spec, query)
        if not plan.is_fully_safe and plan.has_safe_parts:
            unsafe_queries.append((query, plan))
    improvements = []
    lowly_selective_improvements = []
    restricted_speedups = []
    for query_id, (query, plan) in enumerate(unsafe_queries):
        routed = len(label_routed_subtrees(plan, run))
        baseline_time, baseline_answer = time_call(
            lambda query=query: g1_all_pairs(run, l1, l2, query)
        )
        ours_time, ours_answer = time_call(
            lambda query=query, plan=plan: evaluate_general_query(run, query, l1, l2, plan=plan)
        )
        if baseline_answer != ours_answer:
            result.note(f"ENGINE DISAGREEMENT for {query!r} — investigate")
        improvement = 100.0 * (baseline_time - ours_time) / baseline_time if baseline_time else 0.0
        improvements.append(improvement)
        if routed:
            lowly_selective_improvements.append(improvement)
        # Restriction pushdown: the same query asked for a handful of nodes
        # should cost a fraction of the full-list evaluation (the pre-pushdown
        # evaluator paid the whole-run price regardless of the lists).
        small1, small2 = l1[:5], l2[:5]
        old_restricted_time, old_restricted = time_call(
            lambda query=query, plan=plan, small1=small1, small2=small2: evaluate_general_query(
                run, query, small1, small2, plan=plan,
                strategy="join", push_restrictions=False,
            )
        )
        new_restricted_time, new_restricted = time_call(
            lambda query=query, plan=plan, small1=small1, small2=small2: evaluate_general_query(
                run, query, small1, small2, plan=plan
            )
        )
        if old_restricted != new_restricted:
            result.note(f"RESTRICTED-ENGINE DISAGREEMENT for {query!r} — investigate")
        restricted_speedup = (
            old_restricted_time / new_restricted_time if new_restricted_time else float("inf")
        )
        restricted_speedups.append(restricted_speedup)
        result.add(
            query_id=query_id,
            lowly_selective_parts=routed,
            matches=len(ours_answer),
            baseline_g1_s=baseline_time,
            optrpl_s=ours_time,
            improvement_pct=improvement,
            restricted_5x5_pre_pushdown_s=old_restricted_time,
            restricted_5x5_pushdown_s=new_restricted_time,
            restricted_speedup=restricted_speedup,
        )
    if improvements:
        positive = [value for value in improvements if value > 0]
        result.note(
            f"{len(positive)}/{len(improvements)} unsafe queries improved; "
            f"median improvement {statistics.median(improvements):.1f}%"
        )
    if lowly_selective_improvements:
        result.note(
            "queries with lowly selective safe components (the subset Fig. 15 reports): "
            f"{len(lowly_selective_improvements)}; median improvement "
            f"{statistics.median(lowly_selective_improvements):.1f}%"
        )
    else:
        result.note(
            "no query had a safe component expensive enough for the cost model to "
            "route it to the labeling engine at this run size (see EXPERIMENTS.md)"
        )
    if restricted_speedups:
        result.note(
            "restriction pushdown on 5x5 lists: median speedup "
            f"{statistics.median(restricted_speedups):.1f}x over the "
            "evaluate-then-restrict evaluator"
        )
    result.note(f"run: {run.edge_count} edges; lists: |l1|=|l2|={len(l1)}")
    return result


def fig15a_general_queries_bioaid(scale: BenchScale) -> ExperimentResult:
    return _general_queries(
        scale,
        bioaid_specification(),
        "fig15a",
        "general (unsafe) queries on BioAID: improvement of the decomposition over G1",
    )


def fig15b_general_queries_qblast(scale: BenchScale) -> ExperimentResult:
    return _general_queries(
        scale,
        qblast_specification(),
        "fig15b",
        "general (unsafe) queries on QBLast: improvement of the decomposition over G1",
    )


# ---------------------------------------------------------------------------
# Ablations (design choices called out in the paper / DESIGN.md)
# ---------------------------------------------------------------------------


def ablation_s1_vs_s2(scale: BenchScale) -> ExperimentResult:
    result = ExperimentResult(
        figure="ablation-s1-vs-s2",
        title="Option S1 (nested loop) vs S2 (reachability filter) across selectivities",
        expected_shape="S2 wins when few pairs are reachable; the two converge when most are",
    )
    spec = bioaid_specification()
    run = generate_run(spec, scale.allpairs_run_edges, seed=21)
    index = EdgeTagIndex.from_run(run)
    l1, l2 = node_lists(run, limit=scale.allpairs_list_limit, seed=21)
    for label, query in (
        ("reachability", "_*"),
        ("rare ifq", generate_ifq_along_path(run, 3, seed=1, prefer="rare", index=index)),
        ("frequent ifq", generate_ifq_along_path(run, 3, seed=1, prefer="frequent", index=index)),
        ("kleene", f"{BIOAID_KLEENE_TAG}*"),
    ):
        plan = plan_decomposition(spec, query)
        if not plan.is_fully_safe:
            result.add(query=label, safe=False)
            continue
        query_index = build_query_index(spec, query)
        s1_time, s1_answer = time_call(
            lambda qi=query_index: all_pairs_safe_query(
                run, l1, l2, qi, AllPairsOptions(use_reachability_filter=False)
            )
        )
        s2_time, s2_answer = time_call(
            lambda qi=query_index: all_pairs_safe_query(run, l1, l2, qi)
        )
        assert s1_answer == s2_answer
        result.add(
            query=label,
            safe=True,
            matches=len(s2_answer),
            s1_s=s1_time,
            s2_s=s2_time,
            speedup=s1_time / s2_time if s2_time else float("inf"),
        )
    return result


def ablation_dfa_minimization(scale: BenchScale) -> ExperimentResult:
    from repro.automata.dfa import dfa_from_regex

    result = ExperimentResult(
        figure="ablation-dfa-minimization",
        title="safety check on the minimal vs the unminimized DFA (Lemma 3.2)",
        expected_shape=(
            "the minimal DFA is smaller and cheaper to check; per Lemma 3.2 a query is "
            "safe iff its minimal DFA is safe, and an unminimized DFA may look unsafe "
            "even when the query is safe — minimization is therefore required, not just "
            "an optimization"
        ),
    )
    spec = bioaid_specification()
    for k in (1, 3, 5, 8):
        query = generate_ifq(spec, k, seed=k)
        minimal = dfa_from_regex(query, spec.tags, minimal=True)
        raw = dfa_from_regex(query, spec.tags, minimal=False)
        minimal_time, minimal_report = time_call(
            lambda minimal=minimal: analyze_safety(spec, minimal)
        )
        raw_time, raw_report = time_call(lambda raw=raw: analyze_safety(spec, raw))
        # Lemma 3.2 direction: if any DFA of the query is safe, the minimal one is.
        assert minimal_report.is_safe or not raw_report.is_safe
        result.add(
            k=k,
            minimal_states=minimal.state_count,
            raw_states=raw.state_count,
            minimal_safe=minimal_report.is_safe,
            raw_safe=raw_report.is_safe,
            minimal_check_s=minimal_time,
            raw_check_s=raw_time,
        )
    return result


def ablation_optimizer(scale: BenchScale) -> ExperimentResult:
    from repro.core.optimizer import CostModel

    result = ExperimentResult(
        figure="ablation-optimizer",
        title="cost-model strategy choice vs measured best strategy (future-work extension)",
        expected_shape="the cost model routes rare IFQs to G3 and everything else to the labels",
    )
    spec = bioaid_specification()
    run = generate_run(spec, scale.allpairs_run_edges, seed=33)
    index = EdgeTagIndex.from_run(run)
    l1, l2 = node_lists(run, limit=scale.allpairs_list_limit, seed=33)
    model = CostModel(spec, index)
    for label, query in (
        ("rare ifq", generate_ifq_along_path(run, 3, seed=3, prefer="rare", index=index)),
        ("frequent ifq", generate_ifq_along_path(run, 3, seed=3, prefer="frequent", index=index)),
        ("kleene", f"{BIOAID_KLEENE_TAG}*"),
    ):
        choice = model.choose(query, input_pairs=len(l1) * len(l2), run_edges=run.edge_count)
        g3_time: float | None = None
        try:
            g3_time, _ = time_call(
                lambda query=query: g3_all_pairs(run, l1, l2, query, index=index)
            )
        except ReproError:
            # G3 only supports ifq workloads; kleene rows report "n/a".
            g3_time = None
        ours_time, _ = time_call(lambda query=query: evaluate_general_query(run, query, l1, l2))
        measured_best = "G3" if g3_time is not None and g3_time < ours_time else "labels"
        result.add(
            query=label,
            chosen=choice.strategy,
            g3_s=g3_time if g3_time is not None else "n/a",
            labels_s=ours_time,
            measured_best=measured_best,
        )
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[[BenchScale], ExperimentResult]] = {
    "fig13a": fig13a_overhead_grammar_size,
    "fig13b": fig13b_overhead_query_size,
    "fig13c": fig13c_pairwise_vs_run_size,
    "fig13d": fig13d_pairwise_vs_query_size,
    "fig13e": fig13e_allpairs_ifq_bioaid,
    "fig13f": fig13f_allpairs_ifq_qblast,
    "fig13g": fig13g_allpairs_kleene_bioaid,
    "fig13h": fig13h_allpairs_kleene_qblast,
    "fig15a": fig15a_general_queries_bioaid,
    "fig15b": fig15b_general_queries_qblast,
    "ablation-s1-vs-s2": ablation_s1_vs_s2,
    "ablation-dfa-minimization": ablation_dfa_minimization,
    "ablation-optimizer": ablation_optimizer,
}


def run_experiment(name: str, scale_name: str | None = None) -> ExperimentResult:
    """Run one experiment by figure name (see :data:`EXPERIMENTS`)."""
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return experiment(current_scale(scale_name))
