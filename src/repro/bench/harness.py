"""Shared benchmarking utilities: timing, scales and table formatting.

Two layers use this module:

* the **legacy figure experiments** (:mod:`repro.bench.experiments`) take a
  :class:`BenchScale` (``small`` / ``paper`` workload sizes) and produce
  :class:`ExperimentResult` tables mirroring the paper's plots;
* the **declarative scenario framework** (:mod:`repro.bench.scenarios`)
  renders its uniform run table through :func:`format_table` and has its own
  scale system (``smoke`` / ``ci`` / ``full``) — see
  :class:`~repro.bench.scenarios.ScenarioScale`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.obs import timed_call

__all__ = [
    "BenchScale",
    "ExperimentResult",
    "current_scale",
    "time_call",
    "format_table",
]


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes for one benchmarking scale.

    ``small`` keeps every experiment to seconds of pure-Python time while
    preserving the paper's comparisons; ``paper`` uses the sizes reported in
    Section V (expect long runtimes).
    """

    name: str
    grammar_sizes: tuple[int, ...]
    grammars_per_size: int
    overhead_queries: int
    pairwise_run_sizes: tuple[int, ...]
    pairwise_pairs: int
    pairwise_query_sizes: tuple[int, ...]
    allpairs_run_edges: int
    allpairs_list_limit: int | None
    allpairs_ifq_count: int
    kleene_run_sizes: tuple[int, ...]
    kleene_list_limit: int | None
    general_query_count: int
    general_run_edges: int
    general_list_limit: int | None


SMALL_SCALE = BenchScale(
    name="small",
    grammar_sizes=(200, 400, 600, 800),
    grammars_per_size=3,
    overhead_queries=10,
    pairwise_run_sizes=(250, 500, 1000, 2000),
    pairwise_pairs=1000,
    pairwise_query_sizes=(0, 2, 4, 6, 8, 10),
    allpairs_run_edges=1500,
    allpairs_list_limit=220,
    allpairs_ifq_count=8,
    kleene_run_sizes=(1000, 2000, 4000, 8000, 16000),
    kleene_list_limit=150,
    general_query_count=12,
    general_run_edges=400,
    general_list_limit=160,
)

PAPER_SCALE = BenchScale(
    name="paper",
    grammar_sizes=(400, 600, 800, 1000, 1200),
    grammars_per_size=10,
    overhead_queries=20,
    pairwise_run_sizes=(1000, 2000, 4000, 8000),
    pairwise_pairs=10_000,
    pairwise_query_sizes=(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    allpairs_run_edges=2000,
    allpairs_list_limit=None,
    allpairs_ifq_count=8,
    kleene_run_sizes=(1000, 2000, 4000, 8000, 16_000),
    kleene_list_limit=None,
    general_query_count=40,
    general_run_edges=2000,
    general_list_limit=None,
)

_SCALES = {scale.name: scale for scale in (SMALL_SCALE, PAPER_SCALE)}


def current_scale(name: str | None = None) -> BenchScale:
    """Resolve the benchmarking scale (argument > environment > ``small``)."""
    chosen = name or os.environ.get("REPRO_BENCH_SCALE", "small")
    try:
        return _SCALES[chosen]
    except KeyError:
        raise ValueError(
            f"unknown benchmark scale {chosen!r}; choose from {sorted(_SCALES)}"
        ) from None


def time_call(function: Callable[[], object]) -> tuple[float, object]:
    """Run a callable once, returning ``(elapsed seconds, result)``.

    Delegates to :func:`repro.obs.timed_call`: elapsed always comes from the
    sanctioned monotonic clock, and when a recording tracer is installed the
    call additionally shows up as a ``bench.call`` span."""
    return timed_call("bench.call", function)


@dataclass
class ExperimentResult:
    """The outcome of one experiment (one figure of the paper)."""

    figure: str
    title: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    expected_shape: str = ""

    def add(self, **row: object) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        lines = [f"== {self.figure}: {self.title} =="]
        if self.expected_shape:
            lines.append(f"expected shape (paper): {self.expected_shape}")
        lines.append(format_table(self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return f"{value * 1e6:.1f}u"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[dict[str, object]], columns: Iterable[str] | None = None
) -> str:
    """Render a list of dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    columns = list(columns)
    table = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in table
    ]
    return "\n".join([header, separator, *body])
