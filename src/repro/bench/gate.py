"""Trajectory gating: compare a benchmark run against the stored trajectory.

The stored trajectory (committed under ``benchmarks/trajectory/``) is the
last blessed ``repro-bench-trajectory/1`` document.  :func:`compare` checks a
fresh run against it with noise-tolerant thresholds:

* **median regression** — a scenario fails when its median latency grew by
  more than ``max_regression``× *after normalizing both documents by their
  calibration loop* (a fixed pure-Python busy loop timed alongside every
  run), so a slower CI runner shifts both sides equally, and only when the
  absolute growth clears ``min_significant_s`` (microsecond noise never
  gates);
* **checksum drift** — a scenario whose result-count checksum changed
  answers differently, which is a correctness regression however fast it
  ran (refresh the trajectory deliberately when the workload itself
  changed);
* **invariants** — the catalog's declared cross-scenario relations
  (backward < forward, parallel ≥ 2x, ...) must hold in the *current*
  results, independent of history.

A missing trajectory file bootstraps: the current results are written as the
new baseline and the gate passes (first run of a new repo or a new suite).
Malformed trajectory JSON is a clean one-line :class:`TrajectoryError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.bench.scenarios import SCHEMA, Invariant
from repro.errors import ReproError

__all__ = [
    "GateReport",
    "TrajectoryError",
    "compare",
    "load_trajectory",
    "write_trajectory",
]

#: A scenario regresses when its normalized median grows past this factor...
DEFAULT_MAX_REGRESSION = 3.0
#: ...and the absolute growth exceeds this floor (seconds).
MIN_SIGNIFICANT_S = 0.005
#: Improvements beyond this factor are called out in the report.
IMPROVEMENT_FACTOR = 1.5


class TrajectoryError(ReproError):
    """A trajectory document that cannot be read or compared."""


@dataclass
class Verdict:
    """One line of the gate report."""

    subject: str  # scenario or invariant id
    status: str  # ok | improved | regressed | checksum-drift | invariant-failed
    #             | new | not-run | skipped
    message: str
    failing: bool = False


@dataclass
class GateReport:
    verdicts: list[Verdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not any(verdict.failing for verdict in self.verdicts)

    @property
    def failures(self) -> list[Verdict]:
        return [verdict for verdict in self.verdicts if verdict.failing]

    def render(self) -> str:
        lines = []
        for verdict in self.verdicts:
            marker = "FAIL" if verdict.failing else "ok  "
            lines.append(f"{marker}  {verdict.subject:<32} {verdict.status:<16} {verdict.message}")
        summary = (
            f"gate: {'PASS' if self.passed else 'FAIL'} "
            f"({len(self.failures)} failing, {len(self.verdicts)} checks)"
        )
        return "\n".join([*lines, summary])


def load_trajectory(path: str | Path) -> dict[str, Any]:
    """Read and validate one trajectory document (clean one-line errors)."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as error:
        raise TrajectoryError(
            f"cannot read trajectory {path}: {error.strerror or error}"
        ) from error
    except json.JSONDecodeError as error:
        raise TrajectoryError(f"trajectory {path} is not valid JSON ({error})") from error
    if not isinstance(document, dict) or document.get("schema") != SCHEMA:
        raise TrajectoryError(
            f"trajectory {path} has schema {document.get('schema') if isinstance(document, dict) else None!r}; "
            f"expected {SCHEMA!r} (refresh it with 'repro bench run --suite ci --json {path}')"
        )
    entries = document.get("scenarios")
    if not isinstance(entries, list) or not all(
        isinstance(entry, dict) and entry.get("id") for entry in entries
    ):
        raise TrajectoryError(f"trajectory {path} has a malformed 'scenarios' table")
    return document


def write_trajectory(document: Mapping[str, Any], path: str | Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def _by_id(document: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
    return {entry["id"]: entry for entry in document.get("scenarios", [])}


def _normalizer(baseline: Mapping[str, Any], current: Mapping[str, Any]) -> float:
    """current-to-baseline machine-speed ratio from the calibration loops."""
    base = baseline.get("calibration_s") or 0.0
    cur = current.get("calibration_s") or 0.0
    if base > 0 and cur > 0:
        return cur / base
    return 1.0


def compare(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    invariants: Sequence[Invariant] = (),
    max_regression: float = DEFAULT_MAX_REGRESSION,
    min_significant_s: float = MIN_SIGNIFICANT_S,
    cpus: int | None = None,
) -> GateReport:
    """Gate ``current`` against ``baseline`` (see module notes for the rules)."""
    report = GateReport()
    if baseline.get("scale") != current.get("scale"):
        report.verdicts.append(
            Verdict(
                "trajectory",
                "invariant-failed",
                f"scale mismatch: baseline ran at {baseline.get('scale')!r}, "
                f"current at {current.get('scale')!r} — medians are not comparable "
                "(refresh the trajectory at the current scale)",
                failing=True,
            )
        )
        return report

    speed = _normalizer(baseline, current)
    base_entries, current_entries = _by_id(baseline), _by_id(current)

    for scenario_id, entry in current_entries.items():
        base = base_entries.get(scenario_id)
        if base is None:
            report.verdicts.append(
                Verdict(scenario_id, "new", "no baseline yet; will gate after the next refresh")
            )
            continue
        if base.get("checksum") and entry.get("checksum") != base.get("checksum"):
            report.verdicts.append(
                Verdict(
                    scenario_id,
                    "checksum-drift",
                    f"results changed: {base.get('checksum')} -> {entry.get('checksum')} "
                    "(correctness drift, or an intentional workload change — "
                    "refresh the trajectory if the latter)",
                    failing=True,
                )
            )
            continue
        base_median = float(base.get("median_s") or 0.0)
        current_median = float(entry.get("median_s") or 0.0)
        expected = base_median * speed  # what the baseline predicts on THIS machine
        if expected <= 0.0:
            report.verdicts.append(Verdict(scenario_id, "ok", "baseline median is zero; skipped"))
            continue
        ratio = current_median / expected
        detail = (
            f"median {current_median * 1000:.1f} ms vs baseline "
            f"{base_median * 1000:.1f} ms (x{speed:.2f} machine) = {ratio:.2f}x"
        )
        if ratio > max_regression and (current_median - expected) > min_significant_s:
            report.verdicts.append(
                Verdict(
                    scenario_id,
                    "regressed",
                    f"{detail}; limit {max_regression:.2f}x",
                    failing=True,
                )
            )
        elif ratio < 1.0 / IMPROVEMENT_FACTOR:
            report.verdicts.append(Verdict(scenario_id, "improved", detail))
        else:
            report.verdicts.append(Verdict(scenario_id, "ok", detail))

    for scenario_id in base_entries:
        if scenario_id not in current_entries:
            report.verdicts.append(
                Verdict(scenario_id, "not-run", "in the trajectory but not in this run")
            )

    if current.get("scale") == "smoke":
        if invariants:
            report.verdicts.append(
                Verdict("invariants", "skipped", "smoke-scale timings carry no signal")
            )
        return report

    machine_cpus = cpus if cpus is not None else (os.cpu_count() or 1)
    for invariant in invariants:
        fast = current_entries.get(invariant.fast)
        slow = current_entries.get(invariant.slow)
        if fast is None or slow is None:
            missing = invariant.fast if fast is None else invariant.slow
            report.verdicts.append(
                Verdict(invariant.id, "skipped", f"scenario {missing!r} not in this run")
            )
            continue
        if machine_cpus < invariant.min_cpus:
            report.verdicts.append(
                Verdict(
                    invariant.id,
                    "skipped",
                    f"needs >= {invariant.min_cpus} CPUs, machine has {machine_cpus}",
                )
            )
            continue
        fast_median = float(fast.get("median_s") or 0.0)
        slow_median = float(slow.get("median_s") or 0.0)
        achieved = slow_median / fast_median if fast_median > 0 else float("inf")
        detail = (
            f"{invariant.slow} {slow_median * 1000:.1f} ms vs {invariant.fast} "
            f"{fast_median * 1000:.1f} ms = {achieved:.2f}x (need >= {invariant.factor:.2f}x)"
        )
        if achieved >= invariant.factor:
            report.verdicts.append(Verdict(invariant.id, "ok", detail))
        else:
            message = detail if not invariant.note else f"{detail}; {invariant.note}"
            report.verdicts.append(
                Verdict(invariant.id, "invariant-failed", message, failing=True)
            )
    return report
