"""``python -m repro.bench`` / ``repro bench``: the benchmark front-end.

Subcommands:

* ``run``     — execute catalog scenarios (a suite or explicit ids) and emit
  the uniform run table, optionally as a ``BENCH_trajectory.json`` document;
* ``gate``    — compare a run document against the stored trajectory
  (``benchmarks/trajectory/trajectory.json``) and exit non-zero on
  regression, checksum drift, or a failed invariant;
* ``check``   — validate the scenario catalog (unique ids, resolvable
  factors) and execute every entry at smoke scale, so a broken definition
  fails fast without timing anything;
* ``list``    — print the catalog;
* ``figures`` — the legacy paper-figure experiments (Fig. 13/15 tables).

For backward compatibility, ``repro bench fig13a --scale small`` (a figure
name in the first position) still runs the legacy experiments directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import format_table
from repro.errors import ReproError
from repro.obs import timed_call

DEFAULT_TRAJECTORY = Path("benchmarks") / "trajectory" / "trajectory.json"


def _cmd_figures(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    names = list(args.experiments)
    if names in ([], ["all"]):
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; use --list to see choices")
    for name in names:
        elapsed, result = timed_call(
            "bench.experiment", lambda: run_experiment(name, args.scale), experiment=name
        )
        print(result.render())
        print(f"(experiment wall time: {elapsed:.1f}s)")
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.catalog import select
    from repro.bench.scenarios import run_suite, run_table

    scenarios = select(suite=args.suite, ids=args.scenario)
    progress = (lambda text: print(text, file=sys.stderr)) if not args.quiet else None
    document = run_suite(
        scenarios,
        args.scale,
        suite=args.suite,
        repetitions=args.repetitions,
        progress=progress,
    )
    print(format_table(run_table(document)))
    if args.json:
        Path(args.json).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"({len(scenarios)} scenarios; written to {args.json})", file=sys.stderr)
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    from repro.bench.catalog import INVARIANTS
    from repro.bench.gate import compare, load_trajectory, write_trajectory

    current = load_trajectory(args.results)
    trajectory_path = Path(args.trajectory)
    if not trajectory_path.exists():
        write_trajectory(current, trajectory_path)
        print(
            f"gate: no stored trajectory at {trajectory_path} — bootstrapped it from "
            f"{args.results} ({len(current.get('scenarios', []))} scenarios); "
            "commit it to start gating"
        )
        return 0
    baseline = load_trajectory(trajectory_path)
    report = compare(
        baseline,
        current,
        invariants=INVARIANTS,
        max_regression=args.max_regression,
    )
    print(report.render())
    if report.passed and args.update:
        write_trajectory(current, trajectory_path)
        print(f"gate: trajectory refreshed at {trajectory_path}")
    if not report.passed:
        names = ", ".join(verdict.subject for verdict in report.failures)
        print(f"gate: FAILING on: {names}", file=sys.stderr)
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.bench.catalog import CATALOG, check_catalog

    progress = (lambda text: print(text, file=sys.stderr)) if not args.quiet else None
    problems = check_catalog(runnable=not args.static, scale=args.scale, progress=progress)
    if problems:
        for problem in problems:
            print(f"catalog problem: {problem}")
        print(f"repro bench check: {len(problems)} problems in {len(CATALOG)} scenarios")
        return 1
    mode = "statically valid" if args.static else f"valid and runnable at scale {args.scale!r}"
    print(f"repro bench check: {len(CATALOG)} scenarios, catalog {mode}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.bench.catalog import CATALOG, INVARIANTS

    rows = [
        {
            "scenario": scenario.id,
            "suites": ",".join(scenario.suites),
            "grammar": scenario.grammar,
            "class": scenario.query_class,
            "edges": scenario.run_edges,
            "title": scenario.title,
        }
        for scenario in CATALOG
        if args.suite == "all" or scenario.in_suite(args.suite)
    ]
    print(format_table(rows))
    print(f"{len(rows)} scenarios, {len(INVARIANTS)} invariants")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Declarative benchmark scenarios, trajectory gating, and paper figures.",
    )
    sub = parser.add_subparsers(dest="bench_command", required=True)

    run_parser = sub.add_parser("run", help="run catalog scenarios and emit the run table")
    run_parser.add_argument("--suite", default="ci", help="scenario suite (ci, full, or all)")
    run_parser.add_argument(
        "--scenario", action="append", default=[], metavar="ID",
        help="run this scenario instead of a suite (repeatable)",
    )
    run_parser.add_argument("--scale", default="ci", choices=["smoke", "ci", "full"])
    run_parser.add_argument("--json", metavar="PATH", help="write the trajectory document here")
    run_parser.add_argument(
        "--repetitions", type=int, default=None, help="override the scale's repetition count"
    )
    run_parser.add_argument("--quiet", action="store_true", help="suppress per-scenario progress")
    run_parser.set_defaults(handler=_cmd_run)

    gate_parser = sub.add_parser(
        "gate", help="compare a run document against the stored trajectory"
    )
    gate_parser.add_argument("results", help="a BENCH_trajectory.json written by 'run --json'")
    gate_parser.add_argument(
        "--trajectory", default=str(DEFAULT_TRAJECTORY),
        help=f"stored baseline (default: {DEFAULT_TRAJECTORY}); missing = bootstrap",
    )
    gate_parser.add_argument(
        "--max-regression", type=float, default=None,
        help="normalized median growth factor that fails the gate (default 3.0)",
    )
    gate_parser.add_argument(
        "--update", action="store_true",
        help="refresh the stored trajectory with these results when the gate passes",
    )
    gate_parser.set_defaults(handler=_cmd_gate)

    check_parser = sub.add_parser(
        "check", help="validate the catalog and smoke-run every entry"
    )
    check_parser.add_argument(
        "--static", action="store_true", help="skip executing entries; static checks only"
    )
    check_parser.add_argument("--scale", default="smoke", choices=["smoke", "ci", "full"])
    check_parser.add_argument("--quiet", action="store_true")
    check_parser.set_defaults(handler=_cmd_check)

    list_parser = sub.add_parser("list", help="print the scenario catalog")
    list_parser.add_argument("--suite", default="all")
    list_parser.set_defaults(handler=_cmd_list)

    figures_parser = sub.add_parser("figures", help="run the legacy paper-figure experiments")
    figures_parser.add_argument(
        "experiments", nargs="*", default=["all"],
        help=f"experiment names ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    figures_parser.add_argument(
        "--scale", choices=["small", "paper"], default=None,
        help="workload scale (default: REPRO_BENCH_SCALE or 'small')",
    )
    figures_parser.add_argument("--list", action="store_true", help="list available experiments")
    figures_parser.set_defaults(handler=_cmd_figures, legacy=True)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backward compatibility: a figure name (or --list / 'all') in the first
    # position runs the legacy experiments, as before the subcommands.
    if argv and (argv[0] in EXPERIMENTS or argv[0] in ("all", "--list")):
        argv = ["figures", *argv]
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "max_regression", None) is None and args.bench_command == "gate":
        from repro.bench.gate import DEFAULT_MAX_REGRESSION

        args.max_regression = DEFAULT_MAX_REGRESSION
    try:
        if getattr(args, "legacy", False):
            return _cmd_figures(args, parser)
        return args.handler(args)
    except ReproError as error:
        print(f"repro bench: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
