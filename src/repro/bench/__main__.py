"""``python -m repro.bench``: run the paper's experiments from the command line."""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the evaluation figures of the paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"experiment names ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=["small", "paper"],
        default=None,
        help="workload scale (default: REPRO_BENCH_SCALE or 'small')",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = list(args.experiments)
    if names == ["all"] or names == []:
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; use --list to see choices")

    for name in names:
        started = time.perf_counter()
        result = run_experiment(name, args.scale)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"(experiment wall time: {elapsed:.1f}s)")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
