"""The persistent index store: a disk tier under the in-memory cache.

An :class:`IndexStore` keeps everything the cache layer computes — safety
reports, query indexes, decomposition plans (with macro DFAs), and registered
labeled runs — in a directory of versioned, checksummed JSON files:

.. code-block:: text

    <root>/
        entries/<fingerprint[:16]>/<sha256(query)[:32]>.json
        runs/<quoted run id>.json

Entries are keyed exactly like :class:`~repro.service.cache.IndexCache`:
``(specification fingerprint, canonical query text)``, so anything one
process builds is a disk hit for every later process (or instance) serving
the same grammar.  Each file is a small envelope whose payload —
``{"report": ..., "index": ..., "plan": ...}`` for entries, the serialized
run for runs — travels as one compressed blob, and every write is atomic (temp file in the same directory + ``os.replace``),
so readers never observe a half-written artifact even under concurrent
writers or a crash mid-write.

.. code-block:: json

    {"format": 2, "kind": "store-entry", "fingerprint": "...",
     "query": "...", "checksum": "sha256 of the canonical payload JSON",
     "payload64": "base64(zlib(canonical payload JSON))"}

Format 2 stores the payload deflated (entry JSON is highly redundant; with
the packed matrix encoding of :mod:`repro.store.codec` entries shrink
5-10x), and run envelopes carry their specification fingerprint so
``gc_orphans`` never has to reconstruct a run.  Concurrent writers on a
shared volume are coordinated two ways: ``save`` skips rewriting artifacts
whose on-disk payload checksum already matches (content-addressed), and
``entry_lock`` lets the cache layer serialize cross-process *builds* of the
same entry so only one process pays for the safety fixpoint.

The read path *never raises for bad data*: a missing file is a miss, and a
truncated file, checksum mismatch, format-version bump, foreign fingerprint
or any decode failure is counted in ``errors`` and reported as a miss, which
makes the caller rebuild (and overwrite) cleanly.  Loads touch the file's
mtime, which is what the size-budgeted ``gc`` uses as its LRU clock.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
import threading
import time
import urllib.parse
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.decomposition import DecompositionPlan
from repro.core.query_index import QueryIndex
from repro.core.safety import SafetyReport
from repro.errors import StoreError
from repro.obs import ExecutionProfile, get_registry, get_tracer
from repro.store.codec import entry_from_payload, entry_to_payload
from repro.workflow.run import Run
from repro.workflow.serialization import run_from_dict, run_to_dict
from repro.workflow.spec import Specification

__all__ = ["FORMAT_VERSION", "EntryInfo", "GcResult", "IndexStore", "StoreCounters", "StoredEntry"]

#: Format 2 packs boolean matrices as base64 row bytes (~3x smaller entries),
#: adds the reversed macro DFAs + direction decisions to plan payloads, and
#: stamps run artifacts with their specification fingerprint (orphan gc).
#: Format-1 artifacts fail the version check and degrade to a clean rebuild.
FORMAT_VERSION = 2

_ENTRY_KIND = "store-entry"
_RUN_KIND = "store-run"
_PROFILE_KIND = "store-profile"

#: Registry metrics mirroring the per-instance counters (one process-wide
#: series per counter, however many store instances exist).
_COUNTER_METRICS = {
    "_hits": ("repro_store_hits_total", "disk-store entry hits"),
    "_misses": ("repro_store_misses_total", "disk-store entry misses"),
    "_writes": ("repro_store_writes_total", "disk-store artifact writes"),
    "_errors": ("repro_store_errors_total", "disk-store swallowed failures"),
    "_skipped_writes": (
        "repro_store_skipped_writes_total",
        "disk-store content-addressed write skips",
    ),
}


@dataclass(frozen=True)
class StoredEntry:
    """One reconstructed cache entry (what :meth:`IndexStore.load` returns)."""

    report: SafetyReport
    index: QueryIndex | None
    plan: DecompositionPlan | None


@dataclass(frozen=True)
class StoreCounters:
    """Per-process effectiveness counters of one store instance.

    ``skipped_writes`` counts content-addressed saves: the artifact on disk
    already carried the same payload checksum (or another writer held the
    entry lock), so the write — and the fsync — was elided.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0
    evictions: int = 0
    skipped_writes: int = 0


@dataclass(frozen=True)
class EntryInfo:
    """Metadata of one stored entry file (for ``repro store ls`` and gc)."""

    fingerprint: str
    query: str
    path: Path
    bytes: int
    mtime: float
    is_safe: bool
    has_plan: bool


@dataclass(frozen=True)
class GcResult:
    """What one garbage-collection sweep removed."""

    removed: int
    freed_bytes: int
    remaining_bytes: int


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Any) -> str:
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def _encode_payload(payload: Any) -> str:
    """The format-2 payload blob: canonical JSON, zlib-deflated, base64.

    Entry payloads are highly redundant JSON (repeated keys, row tables);
    deflate cuts them 5-10x on top of the packed matrix encoding, which is
    where the bulk of the format-2 size win comes from.
    """
    return base64.b64encode(
        zlib.compress(_canonical_json(payload).encode("utf-8"), 6)
    ).decode("ascii")


def _decode_payload(blob: Any) -> Any:
    if not isinstance(blob, str):
        raise StoreError("artifact payload blob is not a string")
    return json.loads(zlib.decompress(base64.b64decode(blob.encode("ascii"))))


def _atomic_write(path: Path, text: str) -> None:
    """Write via a sibling temp file + rename, fsync'd, so a crash leaves
    either the old artifact or the new one — never a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class IndexStore:
    """A directory-backed store of cache entries and registered runs.

    Parameters
    ----------
    root:
        The store directory; created (with its subdirectories) on first use.
    max_bytes:
        Optional size budget.  When set, every write is followed by an LRU
        sweep (:meth:`gc`) that deletes the least recently *used* entry files
        until the entry tier fits the budget.  Runs are never auto-evicted:
        they are the service's registry, not a cache.
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        # Directories are created lazily by the first write (_atomic_write
        # mkdirs parents), so read-only users — `repro store ls` on a
        # mistyped path, say — never litter the filesystem with empty stores.
        self._entries_dir = self.root / "entries"
        self._runs_dir = self.root / "runs"
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._writes = 0  # guarded-by: _lock
        self._errors = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._skipped_writes = 0  # guarded-by: _lock
        registry = get_registry()
        self._metric_counters = {
            field: registry.counter(name, help_text)
            for field, (name, help_text) in _COUNTER_METRICS.items()
        }

    # -- paths -------------------------------------------------------------------

    def entry_path(self, fingerprint: str, query_text: str) -> Path:
        """Where the entry of one cache key lives (whether or not it exists)."""
        digest = hashlib.sha256(query_text.encode("utf-8")).hexdigest()[:32]
        return self._entries_dir / fingerprint[:16] / f"{digest}.json"

    def run_path(self, run_id: str) -> Path:
        return self._runs_dir / f"{urllib.parse.quote(run_id, safe='')}.json"

    # -- entries -----------------------------------------------------------------

    def contains(self, fingerprint: str, query_text: str) -> bool:
        return self.entry_path(fingerprint, query_text).exists()

    def load(self, spec: Specification, query_text: str) -> StoredEntry | None:
        """Load one entry, or ``None`` on a miss *or* any corruption."""
        path = self.entry_path(spec.fingerprint, query_text)
        with get_tracer().span("store.load") as span:
            span.set("hit", False)
            try:
                raw = path.read_text(encoding="utf-8")
            except FileNotFoundError:
                self._count("_misses")
                return None
            except OSError:
                self._count("_errors")
                self._count("_misses")
                return None
            try:
                envelope = json.loads(raw)
                payload = self._open_envelope(
                    envelope, _ENTRY_KIND, fingerprint=spec.fingerprint, query=query_text
                )
                report, index, plan = entry_from_payload(spec, payload)
            except Exception:
                # Truncation, bad checksum, version bump, decode bug: degrade to
                # a rebuild, never a crash.
                self._count("_errors")
                self._count("_misses")
                return None
            self._touch(path)
            self._count("_hits")
            span.set("hit", True)
            span.set("bytes", len(raw))
            return StoredEntry(report=report, index=index, plan=plan)

    def save(
        self,
        fingerprint: str,
        query_text: str,
        *,
        report: SafetyReport,
        index: QueryIndex | None,
        plan: DecompositionPlan | None,
    ) -> bool:
        """Persist (or overwrite) one entry atomically; returns success.

        Content-addressed: when the file already on disk carries the same
        payload checksum the write is skipped (and counted), so concurrent
        writers on a shared volume re-saving identical artifacts — the
        common case, since the cache key determines the content — cost one
        small read instead of a write + fsync each.

        Failures — a full disk, a read-only volume, a serialization bug —
        are counted and swallowed: persistence is an optimization, and the
        in-memory tier keeps serving either way.
        """
        with get_tracer().span("store.save") as span:
            try:
                payload = entry_to_payload(report, index, plan)
                checksum = _checksum(payload)
                path = self.entry_path(fingerprint, query_text)
                if self._existing_checksum(path) == checksum:
                    self._count("_skipped_writes")
                    span.set("skipped", True)
                    return True
                envelope = {
                    "format": FORMAT_VERSION,
                    "kind": _ENTRY_KIND,
                    "fingerprint": fingerprint,
                    "query": query_text,
                    "checksum": checksum,
                    "payload64": _encode_payload(payload),
                }
                _atomic_write(path, json.dumps(envelope))
            except Exception:
                self._count("_errors")
                return False
            self._count("_writes")
            if self.max_bytes is not None:
                self.gc()
            return True

    def _existing_checksum(self, path: Path) -> str | None:
        """The *verified* payload checksum of an on-disk artifact, or
        ``None`` when the file is absent, unreadable, of another format, or
        lying about its payload (a corrupted payload under an intact
        checksum field must not suppress the overwrite that repairs it)."""
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if envelope.get("format") != FORMAT_VERSION:
                return None
            checksum = envelope.get("checksum")
            if not isinstance(checksum, str):
                return None
            payload = _decode_payload(envelope.get("payload64"))
            return checksum if _checksum(payload) == checksum else None
        except Exception:
            return None

    @contextmanager
    def entry_lock(  # acquires-lock: entry_lock
        self, fingerprint: str, query_text: str, *, timeout: float = 10.0,
        stale_after: float = 60.0,
    ) -> Iterator[bool]:
        """Advisory cross-process build lock for one entry (yields whether it
        was acquired).

        The cache layer wraps an entry *build* in this lock so two processes
        sharing a store volume do not redo the same safety fixpoint and
        index sweep in parallel: the loser waits, then re-checks the store
        and finds the winner's artifact.  Lock files older than
        ``stale_after`` (a crashed writer) are broken; a lock that cannot be
        acquired within ``timeout`` — or created at all, e.g. on a read-only
        volume — degrades to duplicated work, never to a stuck query.
        """
        path = self.entry_path(fingerprint, query_text)
        lock_path = path.with_name(path.name + ".lock")
        acquired = False
        deadline = time.monotonic() + timeout
        while True:
            try:
                lock_path.parent.mkdir(parents=True, exist_ok=True)
                descriptor = os.open(
                    lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.close(descriptor)
                acquired = True
                break
            except FileExistsError:
                if time.monotonic() > deadline:
                    break
                try:
                    first = lock_path.stat()
                except OSError:
                    continue  # holder just released; retry immediately
                if time.time() - first.st_mtime > stale_after:
                    # Break the stale lock of a crashed writer — but only if
                    # it is still the *same* file we statted (inode check),
                    # so a waiter that lost the race does not unlink the
                    # winner's freshly created lock.  The residual stat-to-
                    # unlink window merely duplicates a build, never breaks
                    # data (writes stay atomic).
                    try:
                        if lock_path.stat().st_ino == first.st_ino:
                            lock_path.unlink()
                    except OSError:
                        pass
                    continue
                time.sleep(0.05)
            except OSError:
                break  # unwritable volume: proceed without coordination
        try:
            yield acquired
        finally:
            if acquired:
                try:
                    lock_path.unlink()
                except OSError:
                    pass

    def entries(self) -> list[EntryInfo]:
        """Metadata of every readable entry file (unreadable ones skipped)."""
        infos = []
        for path in sorted(self._entries_dir.glob("*/*.json")):
            info = self._entry_info(path)
            if info is not None:
                infos.append(info)
        return infos

    def _entry_info(self, path: Path) -> EntryInfo | None:
        try:
            stat = path.stat()
            envelope = json.loads(path.read_text(encoding="utf-8"))
            payload = _decode_payload(envelope["payload64"])
            return EntryInfo(
                fingerprint=str(envelope["fingerprint"]),
                query=str(envelope["query"]),
                path=path,
                bytes=stat.st_size,
                mtime=stat.st_mtime,
                is_safe=payload["index"] is not None,
                has_plan=payload["plan"] is not None,
            )
        except Exception:
            self._count("_errors")
            return None

    # -- garbage collection --------------------------------------------------------

    def gc(self, max_bytes: int | None = None) -> GcResult:
        """Delete least-recently-used entry files until the entry tier fits
        ``max_bytes`` (default: the store's configured budget).

        Recency is file mtime, which loads refresh; corrupt entry files sort
        oldest so they are reclaimed first.  Runs are left alone.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        files: list[tuple[float, int, Path]] = []
        for path in self._entries_dir.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            files.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in files)
        removed = 0
        freed = 0
        if budget is not None:
            for _, size, path in sorted(files):
                if total - freed <= budget:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                freed += size
        with self._lock:
            self._evictions += removed
        return GcResult(removed=removed, freed_bytes=freed, remaining_bytes=total - freed)

    def registered_fingerprints(self) -> frozenset[str]:
        """Specification fingerprints of the persisted runs, read from the
        run envelopes alone (no run is reconstructed); unreadable artifacts
        contribute nothing."""
        fingerprints = set()
        for path in self._runs_dir.glob("*.json"):
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
                if envelope.get("kind") != _RUN_KIND:
                    continue
                fingerprint = envelope.get("fingerprint")
                if isinstance(fingerprint, str) and fingerprint:
                    fingerprints.add(fingerprint)
            except Exception:
                self._count("_errors")
        return frozenset(fingerprints)

    def gc_orphans(self) -> GcResult:
        """Delete entries whose specification fingerprint matches no
        registered run (``repro store gc --orphans``).

        Long-lived stores accumulate entries of grammars whose runs were
        re-derived or retired; those entries can never be served again
        through the run registry, so they are reclaimed here.  Entry files
        too corrupt to reveal their fingerprint are reclaimed too — they
        would only ever produce counted misses.  Runs are never touched.
        """
        registered = self.registered_fingerprints()
        removed = 0
        freed = 0
        remaining = 0
        for path in list(self._entries_dir.glob("*/*.json")):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
                fingerprint = envelope.get("fingerprint")
                orphaned = fingerprint not in registered
            except Exception:
                orphaned = True
            if not orphaned:
                remaining += size
                continue
            try:
                path.unlink()
            except OSError:
                remaining += size
                continue
            removed += 1
            freed += size
        with self._lock:
            self._evictions += removed
        return GcResult(removed=removed, freed_bytes=freed, remaining_bytes=remaining)

    def total_bytes(self) -> int:
        """Bytes used by the entry tier (excludes the run registry)."""
        return sum(
            path.stat().st_size
            for path in self._entries_dir.glob("*/*.json")
            if path.exists()
        )

    # -- runs --------------------------------------------------------------------

    def save_run(self, run_id: str, run: Run) -> bool:
        """Persist one registered run (labels included, so reloading skips
        re-labeling); returns success, counting failures like :meth:`save`."""
        try:
            payload = run_to_dict(run)
            envelope = {
                "format": FORMAT_VERSION,
                "kind": _RUN_KIND,
                "run_id": run_id,
                # The grammar fingerprint rides in the envelope so orphan gc
                # can read it without reconstructing the run.
                "fingerprint": run.spec.fingerprint,
                "checksum": _checksum(payload),
                "payload64": _encode_payload(payload),
            }
            _atomic_write(self.run_path(run_id), json.dumps(envelope))
        except Exception:
            self._count("_errors")
            return False
        self._count("_writes")
        return True

    def load_run(self, run_id: str) -> Run | None:
        """One persisted run, or ``None`` when absent *or* unreadable (a
        corrupt artifact is counted, never raised, so a service keeps
        serving its other runs)."""
        path = self.run_path(run_id)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            self._count("_errors")
            return None
        try:
            envelope = json.loads(raw)
            payload = self._open_envelope(envelope, _RUN_KIND)
            if envelope.get("run_id") != run_id:
                raise StoreError("run artifact belongs to a different id")
            return run_from_dict(payload)
        except Exception:
            self._count("_errors")
            return None

    def load_runs(self) -> dict[str, Run]:
        """All readable persisted runs by id; corrupt files are skipped (and
        counted).  Prefer :meth:`run_ids` + :meth:`load_run` when you do not
        need every run's content."""
        runs: dict[str, Run] = {}
        for run_id in self.run_ids():
            run = self.load_run(run_id)
            if run is not None:
                runs[run_id] = run
        return runs

    def run_ids(self) -> list[str]:
        """Ids of the persisted runs, from the file names alone — no run is
        parsed, so listing stays cheap however large the runs are."""
        return sorted(
            urllib.parse.unquote(path.stem) for path in self._runs_dir.glob("*.json")
        )

    # -- execution profiles -------------------------------------------------------

    def profile_dir(self, run_id: str) -> Path:
        """Where one run's persisted execution profiles live."""
        return self.root / "profiles" / urllib.parse.quote(run_id, safe="")

    def save_profile(self, profile: ExecutionProfile) -> bool:
        """Persist one execution profile (the opt-in observability artifact
        behind ``repro query --profile --save-profile``); returns success.

        Content-addressed file names (payload checksum prefix), so re-saving
        an identical profile overwrites its own artifact instead of piling
        up duplicates.  Failures are counted and swallowed like
        :meth:`save` — profiling must never fail a query.
        """
        try:
            payload = profile.as_dict()
            checksum = _checksum(payload)
            envelope = {
                "format": FORMAT_VERSION,
                "kind": _PROFILE_KIND,
                "run_id": profile.run,
                "query": profile.query,
                "checksum": checksum,
                "payload64": _encode_payload(payload),
            }
            path = self.profile_dir(profile.run) / f"{checksum[:32]}.json"
            _atomic_write(path, json.dumps(envelope))
        except Exception:
            self._count("_errors")
            return False
        self._count("_writes")
        return True

    def load_profiles(self, run_id: str) -> list[ExecutionProfile]:
        """Every readable persisted profile of one run, sorted by query text
        (corrupt artifacts are counted and skipped, like every other read)."""
        profiles: list[ExecutionProfile] = []
        for path in sorted(self.profile_dir(run_id).glob("*.json")):
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
                payload = self._open_envelope(envelope, _PROFILE_KIND)
                profiles.append(ExecutionProfile.from_dict(payload))
            except Exception:
                self._count("_errors")
        profiles.sort(key=lambda profile: profile.query)
        return profiles

    # -- reporting ----------------------------------------------------------------

    @property
    def counters(self) -> StoreCounters:
        with self._lock:
            return StoreCounters(
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                errors=self._errors,
                evictions=self._evictions,
                skipped_writes=self._skipped_writes,
            )

    def describe(self) -> str:
        entries = list(self._entries_dir.glob("*/*.json"))
        runs = list(self._runs_dir.glob("*.json"))
        counters = self.counters
        bounds = "" if self.max_bytes is None else f", max_bytes={self.max_bytes}"
        return (
            f"IndexStore({str(self.root)!r}{bounds}) "
            f"{len(entries)} entries ({self.total_bytes()} bytes), {len(runs)} runs, "
            f"hits={counters.hits}, misses={counters.misses}, "
            f"writes={counters.writes} (+{counters.skipped_writes} skipped), "
            f"errors={counters.errors}, evictions={counters.evictions}"
        )

    # -- internals ----------------------------------------------------------------

    def _open_envelope(
        self,
        envelope: Any,
        kind: str,
        *,
        fingerprint: str | None = None,
        query: str | None = None,
    ) -> dict[str, Any]:
        """Validate an envelope (kind, version, identity, checksum) and
        return its payload; raises :class:`StoreError` on any mismatch."""
        if not isinstance(envelope, dict):
            raise StoreError("artifact is not a JSON object")
        if envelope.get("kind") != kind:
            raise StoreError(f"artifact kind {envelope.get('kind')!r}, expected {kind!r}")
        if envelope.get("format") != FORMAT_VERSION:
            raise StoreError(
                f"artifact format {envelope.get('format')!r}, "
                f"this build reads {FORMAT_VERSION}"
            )
        if fingerprint is not None and envelope.get("fingerprint") != fingerprint:
            raise StoreError("artifact belongs to a different specification")
        if query is not None and envelope.get("query") != query:
            raise StoreError("artifact belongs to a different query")
        payload = _decode_payload(envelope.get("payload64"))
        if _checksum(payload) != envelope.get("checksum"):
            raise StoreError("artifact checksum mismatch")
        return payload

    def _touch(self, path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)
        metric = self._metric_counters.get(counter)
        if metric is not None:
            metric.inc()

    def __iter__(self) -> Iterator[EntryInfo]:
        return iter(self.entries())

    def __len__(self) -> int:
        return sum(1 for _ in self._entries_dir.glob("*/*.json"))
