"""Persistent storage tier for the serving layer (warm restarts).

The in-memory :class:`~repro.service.cache.IndexCache` amortizes the paper's
per-query overhead (minimal DFA, safety analysis, transition matrices —
Fig. 13a/b) across requests, but dies with the process.  This package adds
the disk tier underneath it:

* :mod:`repro.store.codec` — strict JSON (de)serialization of safety
  reports, query-index transition tables, and decomposition plans with their
  macro DFAs;
* :mod:`repro.store.store` — :class:`IndexStore`, a versioned, checksummed,
  atomically-written directory of those artifacts plus the service's labeled
  run registry, with size-budgeted LRU garbage collection.

Wire-up: ``IndexCache(store=IndexStore(path))`` checks memory → disk → build
and writes built entries back; ``QueryService(store_dir=path)`` additionally
persists registered runs, so a restarted service answers previously-seen
queries with zero index/plan rebuilds (see ``repro store`` and the
``bench_store_warm_restart`` benchmark).
"""

from repro.store.store import (
    FORMAT_VERSION,
    EntryInfo,
    GcResult,
    IndexStore,
    StoreCounters,
    StoredEntry,
)

__all__ = [
    "FORMAT_VERSION",
    "EntryInfo",
    "GcResult",
    "IndexStore",
    "StoreCounters",
    "StoredEntry",
]
