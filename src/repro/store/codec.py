"""(De)serialization of the cache layer's per-query artifacts.

Everything :class:`~repro.service.cache.IndexCache` computes for one
``(specification fingerprint, canonical query)`` key is turned into plain
JSON-ready dictionaries here, and rebuilt from them:

* a :class:`~repro.core.safety.SafetyReport` — its minimal DFA, λ matrices
  and (for unsafe queries) the recorded violations;
* a :class:`~repro.core.query_index.QueryIndex` — the per-production
  transition tables (``cross``/``to_sink``/``from_source``), so a restored
  index skips the construction sweep entirely and shares the report's DFA and
  λ matrices exactly like a freshly built one;
* a :class:`~repro.core.decomposition.DecompositionPlan` — the canonical
  query, its maximal safe subtrees (as query text that parses back to equal
  syntax trees), the memoized macro DFAs of the frontier strategy (forward
  *and* reversed, under distinct memo keys) and the memoized direction
  decisions of the executor layer.

Boolean matrices serialize as ``[size, base64]`` pairs: the row bitmasks
packed into fixed-width little-endian bytes
(:meth:`~repro.automata.boolean_matrix.BooleanMatrix.to_packed`), roughly 3x
smaller than the decimal row lists of format 1 — entry JSON is dominated by
these tables, so store bytes (and load time) shrink with them.  The
specification itself is *not* stored: the caller always has it (it is half
of the cache key), so payloads stay small and a stored entry can never
smuggle in a stale grammar.

Decoding is strict: missing fields, wrong shapes and inconsistent DFAs raise
(:class:`~repro.errors.StoreError` or the underlying ``KeyError``/
``ValueError``), and the store's read path turns any such failure into a
clean miss.
"""

from __future__ import annotations

import json
from typing import Any

from repro.automata.boolean_matrix import BooleanMatrix
from repro.automata.dfa import DFA
from repro.automata.regex import RegexNode, parse_regex, regex_to_string
from repro.core.decomposition import DecompositionPlan
from repro.core.query_index import QueryIndex
from repro.core.safety import SafetyReport, SafetyViolation
from repro.errors import ReproError, StoreError
from repro.workflow.spec import Specification

__all__ = [
    "entry_to_payload",
    "entry_from_payload",
    "matrix_to_json",
    "matrix_from_json",
    "report_to_dict",
    "report_from_dict",
    "index_to_dict",
    "index_from_dict",
    "plan_to_dict",
    "plan_from_dict",
]


# ---------------------------------------------------------------------------
# Boolean matrices (the packed binary-in-base64 encoding of format 2)
# ---------------------------------------------------------------------------


#: Matrices at least this wide always render smaller packed than as decimal
#: rows; below it the two encodings are compared byte-for-byte.
_ALWAYS_PACK = 24


def matrix_to_json(matrix: BooleanMatrix) -> list[Any]:
    """A matrix as either its integer row list or a ``[size, base64]`` pair
    of packed little-endian row bytes — whichever renders smaller.

    Query DFAs range from 2 states to dozens: tiny matrices are cheaper as
    ``[3, 1]``-style row lists (the base64 pair costs ~12 bytes of
    scaffolding), while the big λ/crossing tables that dominate entry JSON
    shrink ~2x packed.  The two shapes are distinguishable on decode — a
    packed pair is exactly ``[int, str]`` — so readers need no flag.
    """
    if matrix.size >= _ALWAYS_PACK:
        return [matrix.size, matrix.to_packed()]
    rows = matrix.to_rows()
    packed = [matrix.size, matrix.to_packed()]
    return packed if _json_len(packed) < _json_len(rows) else rows


def _json_len(value: Any) -> int:
    return len(json.dumps(value, separators=(",", ":")))


def matrix_from_json(value: Any) -> BooleanMatrix:
    """Inverse of :func:`matrix_to_json` (strict; bad shapes raise)."""
    if len(value) == 2 and isinstance(value[1], str):
        size, packed = value
        return BooleanMatrix.from_packed(int(size), packed)
    return BooleanMatrix.from_rows(value)


# ---------------------------------------------------------------------------
# Safety reports
# ---------------------------------------------------------------------------


def report_to_dict(report: SafetyReport) -> dict[str, Any]:
    """A JSON-ready representation of a safety analysis (spec excluded)."""
    return {
        "dfa": report.dfa.to_dict(),
        "lambdas": {
            module: matrix_to_json(matrix)
            for module, matrix in sorted(report.lambdas.items())
        },
        "violations": [
            {
                "module": violation.module,
                "production": violation.production,
                "established": matrix_to_json(violation.established),
                "conflicting": matrix_to_json(violation.conflicting),
            }
            for violation in report.violations
        ],
    }


def report_from_dict(spec: Specification, payload: dict[str, Any]) -> SafetyReport:
    """Rebuild a safety report against the caller-supplied specification."""
    dfa = DFA.from_dict(payload["dfa"])
    lambdas = {
        str(module): matrix_from_json(rows)
        for module, rows in payload["lambdas"].items()
    }
    violations = [
        SafetyViolation(
            module=str(entry["module"]),
            production=int(entry["production"]),
            established=matrix_from_json(entry["established"]),
            conflicting=matrix_from_json(entry["conflicting"]),
        )
        for entry in payload["violations"]
    ]
    return SafetyReport(spec=spec, dfa=dfa, lambdas=lambdas, violations=violations)


# ---------------------------------------------------------------------------
# Query indexes
# ---------------------------------------------------------------------------


def index_to_dict(index: QueryIndex) -> dict[str, Any]:
    """The production tables of an index (DFA and λs live in the report)."""
    cross, to_sink, from_source = index.production_tables()
    return {
        "query_text": index.query_text,
        "cross": [
            [[source, target, matrix_to_json(matrix)] for (source, target), matrix in sorted(table.items())]
            for table in cross
        ],
        "to_sink": [[matrix_to_json(matrix) for matrix in row] for row in to_sink],
        "from_source": [[matrix_to_json(matrix) for matrix in row] for row in from_source],
    }


def index_from_dict(
    spec: Specification, report: SafetyReport, payload: dict[str, Any]
) -> QueryIndex:
    """Rebuild an index sharing the given report's DFA and λ matrices,
    exactly like the cache's build path does."""
    cross = [
        {
            (int(source), int(target)): matrix_from_json(rows)
            for source, target, rows in table
        }
        for table in payload["cross"]
    ]
    to_sink = [[matrix_from_json(rows) for rows in row] for row in payload["to_sink"]]
    from_source = [
        [matrix_from_json(rows) for rows in row] for row in payload["from_source"]
    ]
    if not (len(cross) == len(to_sink) == len(from_source) == len(spec.productions)):
        raise StoreError(
            f"index tables cover {len(cross)} productions, "
            f"specification has {len(spec.productions)}"
        )
    return QueryIndex(
        spec=spec,
        dfa=report.dfa,
        lambdas=report.lambdas,
        query_text=str(payload["query_text"]),
        tables=(cross, to_sink, from_source),
    )


# ---------------------------------------------------------------------------
# Decomposition plans
# ---------------------------------------------------------------------------


def _render_stable(node: RegexNode) -> str | None:
    """Render a syntax tree, returning None unless parsing the text back
    yields an *equal* tree (plans built by the cache are canonical, which
    round-trips; anything else is skipped rather than persisted wrongly)."""
    text = regex_to_string(node)
    try:
        return text if parse_regex(text) == node else None
    except ReproError:
        return None


def plan_to_dict(plan: DecompositionPlan) -> dict[str, Any] | None:
    """A JSON-ready representation of a plan, or ``None`` when its trees do
    not render/parse round-trip (then the entry is stored without a plan).

    The macro DFA snapshot carries both forward and reversed automata (the
    memo keys distinguish them), and ``directions`` carries the executor
    layer's memoized direction decisions, so a restarted service picks the
    same search direction — and skips the DFA reversal — on the first
    repeated workload.
    """
    root_text = _render_stable(plan.root)
    subtree_texts = [_render_stable(node) for node in plan.safe_subtrees]
    if root_text is None or any(text is None for text in subtree_texts):
        return None
    return {
        "root": root_text,
        "safe_subtrees": subtree_texts,
        "macro_dfas": [
            [key, dfa.to_dict()] for key, dfa in sorted(plan.macro_dfas().items())
        ],
        "directions": dict(sorted(plan.direction_hints().items())),
    }


def plan_from_dict(spec: Specification, payload: dict[str, Any]) -> DecompositionPlan:
    """Rebuild a plan (run-dependent routing memos start empty and are cheap
    to recompute; the macro DFAs — forward and reversed — and the direction
    decisions are restored)."""
    plan = DecompositionPlan(
        spec=spec,
        root=parse_regex(str(payload["root"])),
        safe_subtrees=[parse_regex(str(text)) for text in payload["safe_subtrees"]],
    )
    plan.restore_macro_dfas(
        {str(key): DFA.from_dict(entry) for key, entry in payload["macro_dfas"]}
    )
    plan.restore_direction_hints(
        {str(key): str(value) for key, value in payload["directions"].items()}
    )
    return plan


# ---------------------------------------------------------------------------
# Whole cache entries
# ---------------------------------------------------------------------------


def entry_to_payload(
    report: SafetyReport,
    index: QueryIndex | None,
    plan: DecompositionPlan | None,
) -> dict[str, Any]:
    """Everything one cache entry holds, as one JSON-ready payload."""
    return {
        "report": report_to_dict(report),
        "index": index_to_dict(index) if index is not None else None,
        "plan": plan_to_dict(plan) if plan is not None else None,
    }


def entry_from_payload(
    spec: Specification, payload: dict[str, Any]
) -> tuple[SafetyReport, QueryIndex | None, DecompositionPlan | None]:
    """Rebuild a cache entry's artifacts from :func:`entry_to_payload`."""
    report = report_from_dict(spec, payload["report"])
    index_payload = payload["index"]
    if report.is_safe != (index_payload is not None):
        raise StoreError("stored entry is inconsistent: safety verdict vs index presence")
    index = (
        index_from_dict(spec, report, index_payload) if index_payload is not None else None
    )
    plan_payload = payload["plan"]
    plan = plan_from_dict(spec, plan_payload) if plan_payload is not None else None
    return report, index, plan
