"""repro: regular path queries on workflow provenance.

A from-scratch Python reproduction of *"Answering Regular Path Queries on
Workflow Provenance"* (Huang, Bao, Davidson, Milo, Yuan — ICDE 2015),
including every substrate the paper builds on: the context-free graph grammar
workflow model, run derivation, dynamic derivation-based reachability
labeling, a regex/automata library, the safe-query machinery, pairwise and
all-pairs query algorithms, the prior-work baselines, and the workload
generators and benchmark harness of the evaluation section.

Quickstart::

    from repro import ProvenanceQueryEngine, paper_specification

    spec = paper_specification()
    engine = ProvenanceQueryEngine(spec)
    run = engine.derive(seed=0, target_edges=200)

    engine.is_safe("_* e _*")            # True  (R3 of the paper)
    engine.is_safe("e")                  # False (R4 of the paper)

    u, v = run.nodes_named("c")[0], run.nodes_named("b")[0]
    engine.pairwise(run, u, v, "_* e _*")
    engine.all_pairs(run, "_* e _*", run.nodes_named("c"), run.nodes_named("b"))
    engine.evaluate(run, "_* a _*")      # unsafe queries work too (decomposition)

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the
paper-to-module mapping and ``EXPERIMENTS.md`` for the reproduced evaluation.
"""

from repro.core.engine import ProvenanceQueryEngine
from repro.core.query_index import QueryIndex, build_query_index
from repro.core.safety import SafetyReport, analyze_safety, is_safe_query
from repro.datasets.myexperiment import bioaid_specification, qblast_specification
from repro.datasets.paper_example import paper_run, paper_specification
from repro.datasets.synthetic import generate_synthetic_specification
from repro.errors import (
    DerivationError,
    LabelError,
    QuerySyntaxError,
    ReproError,
    SpecificationError,
    StoreError,
    StructureError,
    UnsafeQueryError,
    UnsupportedQueryError,
)
from repro.service import CacheStats, IndexCache, QueryRequest, QueryResult, QueryService
from repro.store import IndexStore
from repro.workflow.derivation import Derivation, derive_run
from repro.workflow.run import Run
from repro.workflow.simple import Edge, SimpleWorkflow
from repro.workflow.spec import Production, Specification

__version__ = "1.0.0"

__all__ = [
    "CacheStats",
    "Derivation",
    "DerivationError",
    "Edge",
    "IndexCache",
    "IndexStore",
    "LabelError",
    "Production",
    "ProvenanceQueryEngine",
    "QueryIndex",
    "QueryRequest",
    "QueryResult",
    "QueryService",
    "QuerySyntaxError",
    "ReproError",
    "Run",
    "SafetyReport",
    "SimpleWorkflow",
    "Specification",
    "SpecificationError",
    "StoreError",
    "StructureError",
    "UnsafeQueryError",
    "UnsupportedQueryError",
    "analyze_safety",
    "bioaid_specification",
    "build_query_index",
    "derive_run",
    "generate_synthetic_specification",
    "is_safe_query",
    "paper_run",
    "paper_specification",
    "qblast_specification",
    "__version__",
]
