"""Product-automaton traversal (Mendelzon & Wood [24]; Section III-B).

The straightforward way to answer a regular path query over a run: search
the product of the run graph with the query DFA.  Each search is linear in
the run size, which the paper uses as the motivation for the labeling-based
approach (" [24] is too slow, we omit it"); here it serves two purposes:

* the correctness oracle for every other engine in the test suite, and
* a baseline in the ablation benchmarks.

The traversal was also promoted (generalized with ``allowed``-set pruning
and macro transitions) into the production path as
:func:`repro.core.relations.product_frontier_targets`; this module keeps its
own standalone copy of the plain search so the oracle stays *independent* of
the code it verifies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.automata.dfa import DFA, dfa_from_regex
from repro.automata.regex import RegexNode, parse_regex
from repro.workflow.run import Run

__all__ = ["product_bfs_pairwise", "product_bfs_all_pairs", "product_dfa"]


def product_dfa(run: Run, query: str | RegexNode) -> DFA:
    """The minimal DFA of the query, completed over the run's tags."""
    return dfa_from_regex(parse_regex(query), run.tags())


def _accepting_targets(run: Run, dfa: DFA, source: str) -> set[str]:
    """All nodes ``v`` such that some path from ``source`` to ``v`` is accepted."""
    successors = run.successors
    accepting = dfa.accepting
    start_state = dfa.start
    result: set[str] = set()
    if start_state in accepting:
        result.add(source)
    seen = {(source, start_state)}
    stack = [(source, start_state)]
    while stack:
        node, state = stack.pop()
        transitions = dfa.transitions[state]
        for target, tag in successors[node]:
            next_state = transitions[tag]
            key = (target, next_state)
            if key in seen:
                continue
            seen.add(key)
            stack.append(key)
            if next_state in accepting:
                result.add(target)
    return result


def product_bfs_pairwise(run: Run, source: str, target: str, query: str | RegexNode) -> bool:
    """Does some path from ``source`` to ``target`` match the query?"""
    dfa = product_dfa(run, query)
    return target in _accepting_targets(run, dfa, source)


def product_bfs_all_pairs(
    run: Run,
    l1: Sequence[str] | None,
    l2: Sequence[str] | None,
    query: str | RegexNode,
) -> set[tuple[str, str]]:
    """All pairs of ``l1 × l2`` matched by the query (one search per source)."""
    dfa = product_dfa(run, query)
    sources: Iterable[str] = l1 if l1 is not None else run.node_ids()
    targets = set(l2) if l2 is not None else set(run.node_ids())
    results: set[tuple[str, str]] = set()
    for source in sources:
        for node in _accepting_targets(run, dfa, source) & targets:
            results.add((source, node))
    return results
