"""Prior-work baselines used in the paper's experiments (Section IV-B, V).

* :mod:`repro.baselines.product_bfs` — the "simple algorithm" of
  Section III-B (Mendelzon & Wood [24]): traverse the run × DFA product.
  Linear in run size; it doubles as the ground-truth oracle in the tests.
* :mod:`repro.baselines.g1_parse_tree_joins` — Option G1 (Li & Moon [21]):
  evaluate the query parse tree bottom-up with relational joins.
* :mod:`repro.baselines.g2_rare_labels` — Option G2 (Koschmieder & Leser
  [20]): split the query at rare edge tags and search between rare edges.
* :mod:`repro.baselines.g3_label_index` — Option G3: the edge-tag inverted
  index combined with reachability labels, for IFQ-shaped queries.
"""

from repro.baselines.g1_parse_tree_joins import g1_all_pairs
from repro.baselines.g2_rare_labels import g2_all_pairs, g2_pairwise
from repro.baselines.g3_label_index import g3_all_pairs, g3_pairwise
from repro.baselines.product_bfs import product_bfs_all_pairs, product_bfs_pairwise

__all__ = [
    "g1_all_pairs",
    "g2_all_pairs",
    "g2_pairwise",
    "g3_all_pairs",
    "g3_pairwise",
    "product_bfs_all_pairs",
    "product_bfs_pairwise",
]
