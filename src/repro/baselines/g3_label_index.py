"""Option G3: edge-tag index + reachability labels for IFQ queries.

"Regular expressions of the form ``R = _* a1 _* a2 _* ... _* ak _*`` can be
decomposed into k sub-expressions of the form ``Ri = ai``.  The set ``li`` of
node pairs ``(ui, vi)`` matching ``ai`` can be found using indexing, and
reachability tested between ``vi`` and ``ui+1`` using dynamic labeling."
(Section IV-B.)

This is the strongest prior-work baseline for IFQ workloads: for *highly
selective* queries (rare tags) the join chain stays tiny and beats the
labeling engine, while for lowly selective queries the intermediate results
blow up — the behaviour Fig. 13e/f demonstrates.
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.regex import parse_regex, RegexNode
from repro.core.optimizer import ifq_tags
from repro.datasets.index import EdgeTagIndex
from repro.errors import UnsupportedQueryError
from repro.labeling.reachability import is_reachable
from repro.workflow.run import Run

__all__ = ["g3_all_pairs", "g3_pairwise"]


def _require_ifq(query: str | RegexNode) -> list[str]:
    tags = ifq_tags(parse_regex(query))
    if tags is None:
        raise UnsupportedQueryError(
            "baseline G3 only supports IFQ-shaped queries (_* a1 _* ... ak _*)"
        )
    return tags


def _chain_endpoints(
    run: Run, index: EdgeTagIndex, tags: list[str]
) -> list[tuple[str, str]]:
    """Pairs ``(u1, vk)`` such that an edge tagged a1 starting at u1 chains
    (through label-decoded reachability) to an edge tagged ak ending at vk."""
    spec = run.spec
    current = list(index.pairs(tags[0]))
    for tag in tags[1:]:
        next_pairs = index.pairs(tag)
        chained: list[tuple[str, str]] = []
        seen: set[tuple[str, str]] = set()
        for left_source, left_target in current:
            left_label = run.label_of(left_target)
            for right_source, right_target in next_pairs:
                if is_reachable(left_label, run.label_of(right_source), spec):
                    pair = (left_source, right_target)
                    if pair not in seen:
                        seen.add(pair)
                        chained.append(pair)
        current = chained
        if not current:
            break
    return current


def g3_all_pairs(
    run: Run,
    l1: Sequence[str] | None,
    l2: Sequence[str] | None,
    query: str | RegexNode,
    index: EdgeTagIndex | None = None,
) -> set[tuple[str, str]]:
    """All pairs of ``l1 × l2`` matched by an IFQ query."""
    tags = _require_ifq(query)
    spec = run.spec
    sources = list(l1) if l1 is not None else list(run.node_ids())
    targets = list(l2) if l2 is not None else list(run.node_ids())
    if not tags:
        # Pure reachability: decode labels pair by pair.
        return {
            (u, v)
            for u in sources
            for v in targets
            if is_reachable(run.label_of(u), run.label_of(v), spec)
        }
    if index is None:
        index = EdgeTagIndex.from_run(run)
    endpoints = _chain_endpoints(run, index, tags)
    if not endpoints:
        return set()
    results: set[tuple[str, str]] = set()
    # Prefix _* : u must reach the first matched edge; suffix _* : the last
    # matched edge must reach v.
    for u in sources:
        label_u = run.label_of(u)
        reachable_starts = [
            (start, end)
            for start, end in endpoints
            if is_reachable(label_u, run.label_of(start), spec)
        ]
        if not reachable_starts:
            continue
        for v in targets:
            label_v = run.label_of(v)
            for _, end in reachable_starts:
                if is_reachable(run.label_of(end), label_v, spec):
                    results.add((u, v))
                    break
    return results


def g3_pairwise(
    run: Run,
    source: str,
    target: str,
    query: str | RegexNode,
    index: EdgeTagIndex | None = None,
) -> bool:
    """Pairwise variant of the G3 baseline."""
    return (source, target) in g3_all_pairs(run, [source], [target], query, index=index)


def g3_pairwise_batch(
    run: Run,
    pairs: Sequence[tuple[str, str]],
    query: str | RegexNode,
    index: EdgeTagIndex | None = None,
) -> list[bool]:
    """Answer many pairwise queries for the same IFQ.

    The join chain over the indexed tag occurrences is computed once and its
    endpoints are then probed per pair with label-decoded reachability — the
    natural way to amortize the baseline's per-query work, mirroring how the
    paper amortizes the labeling approach's overhead over 10K node pairs in
    Fig. 13c/d.
    """
    tags = _require_ifq(query)
    spec = run.spec
    if not tags:
        return [
            is_reachable(run.label_of(u), run.label_of(v), spec) for u, v in pairs
        ]
    if index is None:
        index = EdgeTagIndex.from_run(run)
    endpoints = _chain_endpoints(run, index, tags)
    answers = []
    for u, v in pairs:
        label_u, label_v = run.label_of(u), run.label_of(v)
        answers.append(
            any(
                is_reachable(label_u, run.label_of(start), spec)
                and is_reachable(run.label_of(end), label_v, spec)
                for start, end in endpoints
            )
        )
    return answers
