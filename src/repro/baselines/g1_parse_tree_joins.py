"""Option G1: bottom-up join evaluation of the query parse tree [21].

"This approach treats a regular expression as a (binary/unary) tree, where
leaves are single symbols and internal nodes are union, concatenation, or
Kleene star.  We then evaluate the tree bottom-up."  (Section IV-B.)

The relational machinery lives in :mod:`repro.core.relations`; this module is
the thin baseline wrapper used by the experiments (the decomposition engine
reuses the same machinery for the unsafe remainder of a general query, which
keeps the comparison apples-to-apples).
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.regex import RegexNode, parse_regex
from repro.core.relations import NodePairs, evaluate_regex_relation, restrict
from repro.workflow.run import Run

__all__ = ["g1_all_pairs", "g1_pairwise"]


def g1_all_pairs(
    run: Run,
    l1: Sequence[str] | None,
    l2: Sequence[str] | None,
    query: str | RegexNode,
) -> NodePairs:
    """All pairs of ``l1 × l2`` matched by the query, via joins over the run."""
    relation = evaluate_regex_relation(run, parse_regex(query))
    return restrict(relation, l1, l2)


def g1_pairwise(run: Run, source: str, target: str, query: str | RegexNode) -> bool:
    """Pairwise variant (materializes the full relation, as G1 does)."""
    return (source, target) in evaluate_regex_relation(run, parse_regex(query))
