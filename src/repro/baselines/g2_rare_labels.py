"""Option G2: rare-edge-label decomposition + graph search [20].

"'Rare' edge labels are ones which match very few node pairs.  The approach
decomposes a query to a series of smaller subqueries using rare labels, then
performs a breadth-first search on the graph."  (Section IV-B.)

Our reimplementation follows the spirit of Koschmieder & Leser:

1. consult the edge-tag index to find the *rarest* tag occurring (as a plain
   concatenation element) in the query,
2. split the query at that tag into a prefix and a suffix sub-expression,
3. seed the search at the few edges carrying the rare tag, searching the
   prefix *backwards* from the rare edges and the suffix *forwards* from
   them, and
4. join the two halves at the rare edge.

Queries that do not expose a rare concatenation element (for example a bare
Kleene star) fall back to the product-automaton search — the same fallback
the original system uses for label-less query parts.
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.dfa import DFA, dfa_from_regex
from repro.automata.regex import Concat, RegexNode, Symbol, parse_regex
from repro.baselines.product_bfs import product_bfs_all_pairs
from repro.datasets.index import EdgeTagIndex
from repro.workflow.run import Run

__all__ = ["g2_all_pairs", "g2_pairwise"]


def _split_at_rare_tag(
    node: RegexNode, index: EdgeTagIndex
) -> tuple[RegexNode, str, RegexNode] | None:
    """Split a top-level concatenation at its rarest plain-tag element.

    Returns ``(prefix, tag, suffix)`` or ``None`` when the query has no plain
    concatenation element to split at.
    """
    if isinstance(node, Symbol):
        from repro.automata.regex import Epsilon

        return Epsilon(), node.tag, Epsilon()
    if not isinstance(node, Concat):
        return None
    candidates = [
        (position, part.tag)
        for position, part in enumerate(node.parts)
        if isinstance(part, Symbol)
    ]
    if not candidates:
        return None
    position, tag = min(candidates, key=lambda item: index.count(item[1]))
    from repro.automata.regex import concat

    prefix = concat(node.parts[:position])
    suffix = concat(node.parts[position + 1 :])
    return prefix, tag, suffix


def _backward_matches(run: Run, dfa: DFA, seeds: set[str]) -> dict[str, set[str]]:
    """For the prefix sub-expression: map each seed node to the nodes ``u``
    with a path ``u -> seed`` accepted by the DFA (searched backwards)."""
    predecessors = run.predecessors
    accepting = dfa.accepting
    results: dict[str, set[str]] = {seed: set() for seed in seeds}
    for seed in seeds:
        # Backward search tracking the *set* of DFA states that could lead to
        # acceptance when reading the path forward from the candidate source.
        start_states = frozenset(accepting)
        if dfa.start in accepting:
            results[seed].add(seed)
        seen = {(seed, start_states)}
        stack = [(seed, start_states)]
        while stack:
            node, states = stack.pop()
            for source, tag in predecessors[node]:
                previous = frozenset(
                    q for q in range(dfa.state_count) if dfa.transitions[q][tag] in states
                )
                if not previous:
                    continue
                key = (source, previous)
                if key in seen:
                    continue
                seen.add(key)
                stack.append(key)
                if dfa.start in previous:
                    results[seed].add(source)
        if dfa.start in accepting:
            results[seed].add(seed)
    return results


def _forward_matches(run: Run, dfa: DFA, seeds: set[str]) -> dict[str, set[str]]:
    """For the suffix sub-expression: map each seed node to the nodes ``v``
    with a path ``seed -> v`` accepted by the DFA."""
    successors = run.successors
    accepting = dfa.accepting
    results: dict[str, set[str]] = {}
    for seed in seeds:
        matched: set[str] = set()
        if dfa.start in accepting:
            matched.add(seed)
        seen = {(seed, dfa.start)}
        stack = [(seed, dfa.start)]
        while stack:
            node, state = stack.pop()
            for target, tag in successors[node]:
                next_state = dfa.transitions[state][tag]
                key = (target, next_state)
                if key in seen:
                    continue
                seen.add(key)
                stack.append(key)
                if next_state in accepting:
                    matched.add(target)
        results[seed] = matched
    return results


def g2_all_pairs(
    run: Run,
    l1: Sequence[str] | None,
    l2: Sequence[str] | None,
    query: str | RegexNode,
    index: EdgeTagIndex | None = None,
) -> set[tuple[str, str]]:
    """All pairs of ``l1 × l2`` matched by the query, via rare-label splitting."""
    node = parse_regex(query)
    if index is None:
        index = EdgeTagIndex.from_run(run)
    split = _split_at_rare_tag(node, index)
    if split is None:
        return product_bfs_all_pairs(run, l1, l2, node)
    prefix, tag, suffix = split
    rare_edges = index.pairs(tag)
    if not rare_edges:
        return set()
    sources = set(l1) if l1 is not None else set(run.node_ids())
    targets = set(l2) if l2 is not None else set(run.node_ids())
    tags = run.tags()
    prefix_dfa = dfa_from_regex(prefix, tags)
    suffix_dfa = dfa_from_regex(suffix, tags)
    prefix_matches = _backward_matches(run, prefix_dfa, {u for u, _ in rare_edges})
    suffix_matches = _forward_matches(run, suffix_dfa, {v for _, v in rare_edges})
    results: set[tuple[str, str]] = set()
    for edge_source, edge_target in rare_edges:
        starts = prefix_matches.get(edge_source, set()) & sources
        ends = suffix_matches.get(edge_target, set()) & targets
        for u in starts:
            for v in ends:
                results.add((u, v))
    return results


def g2_pairwise(
    run: Run,
    source: str,
    target: str,
    query: str | RegexNode,
    index: EdgeTagIndex | None = None,
) -> bool:
    """Pairwise variant of the G2 baseline."""
    return (source, target) in g2_all_pairs(run, [source], [target], query, index=index)


def g2_pairwise_batch(
    run: Run,
    pairs: Sequence[tuple[str, str]],
    query: str | RegexNode,
    index: EdgeTagIndex | None = None,
) -> list[bool]:
    """Answer many pairwise queries for the same query.

    The rare-label split and the searches from the rare edges are performed
    once; individual pairs are then answered with membership probes.  Falls
    back to one product search per distinct source when the query cannot be
    split.
    """
    node = parse_regex(query)
    if index is None:
        index = EdgeTagIndex.from_run(run)
    if _split_at_rare_tag(node, index) is None:
        from repro.baselines.product_bfs import product_bfs_pairwise

        return [product_bfs_pairwise(run, u, v, node) for u, v in pairs]
    sources = sorted({u for u, _ in pairs})
    targets = sorted({v for _, v in pairs})
    matches = g2_all_pairs(run, sources, targets, node, index=index)
    return [(u, v) in matches for u, v in pairs]
