"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

:func:`chrome_trace` turns a tracer's finished spans into the trace-event
format (``ph: "X"`` complete events, microsecond timestamps) that loads in
Perfetto / ``chrome://tracing``; :func:`prometheus_text` renders a
:class:`~repro.obs.metrics.MetricsRegistry` in the text exposition format
(``# HELP``/``# TYPE`` plus samples, histograms with cumulative ``le``
buckets).  Both are pure data transforms — no IO — so the CLI and tests own
where the bytes go.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Span

__all__ = ["chrome_trace", "prometheus_text"]


def chrome_trace(spans: Sequence[Span], *, process_name: str = "repro") -> dict[str, object]:
    """The trace-event document for a span list.

    Thread names map to stable small ``tid`` integers in order of first
    appearance, with metadata events naming them, so Perfetto renders one
    labeled row per thread.
    """
    tids: dict[str, int] = {}
    events: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        tid = tids.get(span.thread)
        if tid is None:  # first appearance: emit the thread-name metadata
            tid = tids[span.thread] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": span.thread or f"thread-{tid}"},
                }
            )
        args: dict[str, object] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(span.start * 1_000_000, 3),
                "dur": round(span.duration * 1_000_000, 3),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Instruments render with their declared kind; collector outputs render as
    untyped gauges (the collector owns the semantics, the registry only
    polls), namespaced exactly as the collector reports them.
    """
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            cumulative = metric.bucket_counts()
            for bound, count in zip(metric.bounds, cumulative):
                lines.append(f'{metric.name}_bucket{{le="{bound}"}} {count}')
            lines.append(f'{metric.name}_bucket{{le="+Inf"}} {cumulative[-1]}')
            lines.append(f"{metric.name}_sum {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count {cumulative[-1]}")
    for name, collect in registry.collectors():
        lines.append(f"# HELP {name} polled collector")
        for sample_name, value in sorted(collect().items()):
            lines.append(f"# TYPE {sample_name} gauge")
            lines.append(f"{sample_name} {_format_value(float(value))}")
    return "\n".join(lines) + "\n" if lines else ""
