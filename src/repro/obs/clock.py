"""The sanctioned monotonic clock for instrumented code.

The planner modules (``repro.core.decomposition``, ``repro.core.optimizer``,
``repro.core.exec.plan``) may not import :mod:`time` (REP103), and no impure
effect may be reachable from them (REP109).  Tracing still needs timestamps,
so this function is the single carve-out: :func:`now` reads the monotonic
clock on a line carrying the ``# effect-exempt: clock`` directive honored by
the effect-inference pass (:mod:`repro.analysis.semantic.effects`).  Any
other clock read reachable from a planner entry point remains a REP109
finding, so instrumentation that bypasses this wrapper still fails lint.
"""

from __future__ import annotations

import time

__all__ = ["now"]


def now() -> float:
    """Seconds on the high-resolution monotonic clock.

    On Linux this is ``CLOCK_MONOTONIC``, which is system-wide, so worker
    *processes* produce timestamps comparable with the parent's; the span
    stitcher still clamps them into the enclosing span's window in case a
    platform uses a per-process clock.
    """
    return time.perf_counter()  # effect-exempt: clock
