"""A lock-annotated metrics registry: counters, gauges, histograms.

One process-wide :class:`MetricsRegistry` (:func:`get_registry`) is the
queryable surface unifying the counters that used to live scattered across
``CacheStats``, ``WorkerBudget`` and the service's batch summaries.  The
native instruments (cache hits, store reads, spans recorded, ...) are
incremented at the source; state that already has an owner with its own lock
discipline (the cache's entry table, the worker budget) is exposed through
registered *collectors* — callables polled at snapshot time — so no counter
is maintained twice.

Every instrument guards its cell with its own leaf lock (``# guarded-by:``
annotated, so the runtime lockset sanitizer checks the discipline); an
instrument lock is never held while acquiring any other lock, which keeps
the lock-order graph (REP108) trivially acyclic however deep in the engine
an ``inc()`` happens.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "get_registry",
]

#: Default histogram bucket bounds (seconds): micro-benchmarks to batches.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> dict[str, float]:
        return {self.name: self.value}


class Gauge:
    """A value that can go up and down (pool occupancy, cache size)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> dict[str, float]:
        return {self.name: self.value}


class Histogram:
    """A fixed-bucket histogram of observations (latencies, sizes).

    Buckets are fixed at construction — no dynamic resizing, so ``observe``
    is one bisect plus three guarded writes, cheap enough for per-span use.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.help = help_text
        self.bounds = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock

    def observe(self, value: float) -> None:
        slot = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> tuple[int, ...]:
        """Cumulative counts per bound (Prometheus ``le`` semantics), with
        the final element the total (the ``+Inf`` bucket)."""
        with self._lock:
            raw = list(self._counts)
        cumulative: list[int] = []
        total = 0
        for count in raw:
            total += count
            cumulative.append(total)
        return tuple(cumulative)

    def samples(self) -> dict[str, float]:
        return {f"{self.name}_count": float(self.count), f"{self.name}_sum": self.sum}


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """The process-wide metric table plus polled collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create (re-registration
    with the same kind returns the existing instrument, so call sites need
    no module-level singletons); a *collector* is a named callable returning
    ``{metric_name: value}`` polled at :meth:`snapshot` time, used to expose
    state that already lives behind another component's lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}  # guarded-by: _lock
        self._collectors: dict[str, Callable[[], Mapping[str, float]]] = {}  # guarded-by: _lock

    def _instrument(self, name: str, factory: Callable[[], Metric]) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                existing = factory()
                self._metrics[name] = existing
            return existing

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._instrument(name, lambda: Counter(name, help_text))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._instrument(name, lambda: Gauge(name, help_text))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a gauge")
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._instrument(name, lambda: Histogram(name, help_text, buckets))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a histogram")
        return metric

    def register_collector(
        self, name: str, collect: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register (or replace) a polled collector.  Replacement is the
        point: a new service instance re-registers under the same name and
        the snapshot follows the live object instead of a dead one."""
        with self._lock:
            self._collectors[name] = collect

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    def metrics(self) -> tuple[Metric, ...]:
        with self._lock:
            return tuple(self._metrics[name] for name in sorted(self._metrics))

    def collectors(self) -> tuple[tuple[str, Callable[[], Mapping[str, float]]], ...]:
        with self._lock:
            return tuple(sorted(self._collectors.items()))

    def snapshot(self) -> dict[str, float]:
        """One flat ``{name: value}`` view: every instrument's samples plus
        every collector's current output (collectors win on name collisions,
        matching their role as the live owner of the state)."""
        values: dict[str, float] = {}
        for metric in self.metrics():
            values.update(metric.samples())
        for _, collect in self.collectors():
            values.update({name: float(value) for name, value in collect().items()})
        return values

    def reset(self) -> None:
        """Drop every instrument and collector (test isolation)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
