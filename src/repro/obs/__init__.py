"""Observability: query-lifecycle tracing, metrics, execution profiles.

The package the engine is instrumented against:

* :mod:`repro.obs.tracer` — span-based tracing with an ambient tracer
  (:func:`get_tracer`), a near-zero-overhead null default, per-thread span
  stacks, and plain-data context propagation across pool workers;
* :mod:`repro.obs.metrics` — the lock-annotated registry of counters,
  gauges and fixed-bucket histograms (:func:`get_registry`);
* :mod:`repro.obs.profile` — per-query :class:`ExecutionProfile` trees with
  the coverage metric the acceptance bar reads;
* :mod:`repro.obs.export` — Chrome trace-event JSON and Prometheus text;
* :mod:`repro.obs.clock` — the one sanctioned monotonic-clock read
  (the REP109 ``# effect-exempt: clock`` carve-out).

Nothing here imports the engine, so any layer — planner included — may
import this package without cycles.
"""

from repro.obs import clock
from repro.obs.export import chrome_trace, prometheus_text
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.profile import ExecutionProfile, ProfileNode
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    get_tracer,
    set_tracer,
    timed_call,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "ExecutionProfile",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "ProfileNode",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "clock",
    "get_registry",
    "get_tracer",
    "prometheus_text",
    "set_tracer",
    "timed_call",
    "use_tracer",
]
