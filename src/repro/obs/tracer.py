"""Span-based query-lifecycle tracing.

A :class:`Tracer` records :class:`Span` trees: ``tracer.span("exec.join",
**attrs)`` is a context manager that times its block, nests under the
enclosing span of the *current thread* (per-thread stacks, so a service
batch fanned across a pool keeps each request's spans well nested), and
appends the finished span to a lock-guarded list.  The ambient tracer is a
module global (:func:`get_tracer`/:func:`set_tracer`/:func:`use_tracer`)
defaulting to :data:`NULL_TRACER`, whose every operation is a constant-time
no-op — the disabled path instrumented code pays by default.

Span ids are small integers allocated under the tracer lock — deliberately
not UUIDs, because id allocation is reachable from the planner and must stay
free of the ``randomness`` effect (REP109).  Context crosses pool boundaries
as plain data: :meth:`Tracer.current` yields a picklable
:class:`SpanContext`, workers return ``(name, start, end, attrs)`` records,
and :meth:`Tracer.record` stitches them back in as child spans.
"""

from __future__ import annotations

import threading
from contextlib import AbstractContextManager
from dataclasses import dataclass
from types import TracebackType
from typing import Callable, Iterator, Mapping, TypeVar

from repro.obs import clock
from repro.obs.metrics import Counter, MetricsRegistry, get_registry

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanContext",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "timed_call",
    "use_tracer",
]

_T = TypeVar("_T")


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span: what crosses worker boundaries."""

    trace_id: int
    span_id: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.trace_id, self.span_id)

    @classmethod
    def from_tuple(cls, pair: tuple[int, int] | None) -> "SpanContext | None":
        if pair is None:
            return None
        return cls(trace_id=pair[0], span_id=pair[1])


@dataclass
class Span:
    """One timed, attributed region of a query's execution."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    start: float
    end: float
    attrs: dict[str, object]
    thread: str = ""

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set(self, key: str, value: object) -> None:
        """Attach an attribute discovered while the span is open (result
        counts, routing decisions)."""
        self.attrs[key] = value


class _NullSpan(Span):
    """The shared span yielded by the disabled path; drops attributes."""

    def set(self, key: str, value: object) -> None:
        return None


NULL_SPAN = _NullSpan(
    name="", trace_id=0, span_id=0, parent_id=None, start=0.0, end=0.0, attrs={}
)


class _NullHandle(AbstractContextManager[Span]):
    """A reusable no-op context manager: the cost of a disabled span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_HANDLE = _NullHandle()


class _SpanHandle(AbstractContextManager[Span]):
    """The live span context manager (allocates on ``__enter__`` so the
    parent is read at entry time, not at construction)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._begin(self._name, self._attrs)
        return self._span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._span is not None:
            if exc_type is not None:
                self._span.attrs.setdefault("error", exc_type.__name__)
            self._tracer._finish(self._span)
        return None


class _AttachHandle(AbstractContextManager[Span]):
    """Installs a foreign parent context on the current thread's stack, so
    spans opened by pool threads nest under the submitting request's span."""

    __slots__ = ("_tracer", "_placeholder")

    def __init__(self, tracer: "Tracer", context: SpanContext) -> None:
        self._tracer = tracer
        self._placeholder = Span(
            name="<attached>",
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_id=None,
            start=0.0,
            end=0.0,
            attrs={},
        )

    def __enter__(self) -> Span:
        self._tracer._push(self._placeholder)
        return self._placeholder

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._tracer._drop(self._placeholder)
        return None


class Tracer:
    """The recording tracer; see the module notes for the model."""

    enabled = True

    def __init__(
        self, *, trace_id: int = 1, registry: MetricsRegistry | None = None
    ) -> None:
        self._trace_id = trace_id
        self._lock = threading.Lock()
        self._finished: list[Span] = []  # guarded-by: _lock
        self._next_id = 0  # guarded-by: _lock
        self._local = threading.local()
        self._span_counter: Counter = (
            registry if registry is not None else get_registry()
        ).counter("repro_obs_spans_total", "spans recorded by the tracer")

    # -- the per-thread span stack -------------------------------------------------

    def _stack(self) -> list[Span]:
        stack: list[Span] | None = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _drop(self, span: Span) -> None:
        stack = self._stack()
        if span in stack:
            stack.remove(span)

    # -- span lifecycle ------------------------------------------------------------

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _begin(self, name: str, attrs: dict[str, object]) -> Span:
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            trace_id=self._trace_id,
            span_id=self._allocate_id(),
            parent_id=parent_id,
            start=clock.now(),
            end=0.0,
            attrs=attrs,
            thread=threading.current_thread().name,
        )
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = clock.now()
        self._drop(span)
        with self._lock:
            self._finished.append(span)
        self._span_counter.inc()

    # -- public API ----------------------------------------------------------------

    def span(self, name: str, **attrs: object) -> AbstractContextManager[Span]:
        """A context manager timing one named region; nests under the
        current thread's innermost open span."""
        return _SpanHandle(self, name, attrs)

    def wrap_iter(
        self, name: str, iterator: Iterator[_T], **attrs: object
    ) -> Iterator[_T]:
        """Time the consumption of a streaming result without materializing
        it: the span opens at the first ``next()`` and closes at exhaustion,
        with an ``items`` attribute counting what flowed through."""

        def generate() -> Iterator[_T]:
            count = 0
            with self.span(name, **attrs) as span:
                for item in iterator:
                    count += 1
                    yield item
                span.set("items", count)

        return generate()

    def attach(self, context: SpanContext | None) -> AbstractContextManager[Span]:
        """Adopt a parent context on this thread (pool workers), so spans
        opened here nest under the submitter's span."""
        if context is None:
            return _NULL_HANDLE
        return _AttachHandle(self, context)

    def current(self) -> SpanContext | None:
        """The innermost open span's context on this thread, for handing to
        workers as plain data."""
        stack = self._stack()
        if not stack:
            return None
        return stack[-1].context

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: SpanContext | None = None,
        attrs: Mapping[str, object] | None = None,
        thread: str = "",
    ) -> None:
        """Stitch in an already-finished span from plain data (the records
        worker processes ship home)."""
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent is not None else self._trace_id,
            span_id=self._allocate_id(),
            parent_id=parent.span_id if parent is not None else None,
            start=start,
            end=max(start, end),
            attrs=dict(attrs) if attrs else {},
            thread=thread or threading.current_thread().name,
        )
        with self._lock:
            self._finished.append(span)
        self._span_counter.inc()

    def spans(self) -> tuple[Span, ...]:
        """A snapshot of the finished spans, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


class NullTracer(Tracer):
    """The disabled path: every operation is a constant-time no-op."""

    enabled = False

    def span(self, name: str, **attrs: object) -> AbstractContextManager[Span]:
        return _NULL_HANDLE

    def wrap_iter(
        self, name: str, iterator: Iterator[_T], **attrs: object
    ) -> Iterator[_T]:
        return iterator

    def attach(self, context: SpanContext | None) -> AbstractContextManager[Span]:
        return _NULL_HANDLE

    def current(self) -> SpanContext | None:
        return None

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: SpanContext | None = None,
        attrs: Mapping[str, object] | None = None,
        thread: str = "",
    ) -> None:
        return None

    def spans(self) -> tuple[Span, ...]:
        return ()


NULL_TRACER = NullTracer()

_ACTIVE: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The ambient tracer (the null tracer unless one was installed)."""
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install a tracer process-wide (``None`` restores the null tracer);
    returns the previously installed one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


class _UseTracer(AbstractContextManager[Tracer]):
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        set_tracer(self._previous)
        return None


def use_tracer(tracer: Tracer) -> AbstractContextManager[Tracer]:
    """Scope a tracer installation to a ``with`` block."""
    return _UseTracer(tracer)


def timed_call(
    name: str, function: Callable[[], _T], **attrs: object
) -> tuple[float, _T]:
    """Run a callable once under a span, returning ``(elapsed s, result)``.

    The one code path behind every hand-rolled ``perf_counter`` timing site:
    elapsed comes from :mod:`repro.obs.clock` whether or not a recording
    tracer is installed, and when one is, the call shows up as a span.
    """
    started = clock.now()
    with get_tracer().span(name, **attrs):
        result = function()
    return clock.now() - started, result
