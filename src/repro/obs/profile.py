"""Per-query execution profiles assembled from finished spans.

An :class:`ExecutionProfile` is the queryable record of one evaluation: the
span tree (operator/phase timings), per-span-name aggregate totals, and the
observations instrumentation attached along the way (frontier seed counts,
decode group/pair counts, routing decisions).  Profiles serialize to plain
JSON so the :class:`~repro.store.IndexStore` can persist them opt-in — the
raw material the ROADMAP's self-calibrating cost model will fit its
constants from.

``coverage()`` is the honesty metric for the instrumentation itself: the
fraction of the root span's wall time covered by its direct children
(overlaps merged), so a phase the tracer misses shows up as a coverage gap
rather than silently vanishing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.obs.tracer import Span

__all__ = ["ExecutionProfile", "ProfileNode"]

#: Version tag of the serialized profile payload.
PROFILE_SCHEMA = "repro-profile/1"


@dataclass
class ProfileNode:
    """One span in the assembled tree."""

    name: str
    span_id: int
    start: float
    end: float
    attrs: dict[str, object] = field(default_factory=dict)
    thread: str = ""
    children: list["ProfileNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "start_s": round(self.start, 9),
            "duration_s": round(self.duration, 9),
            "attrs": dict(self.attrs),
            "thread": self.thread,
            "children": [child.as_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProfileNode":
        start = float(payload.get("start_s", 0.0))
        node = cls(
            name=str(payload.get("name", "")),
            span_id=int(payload.get("span_id", 0)),
            start=start,
            end=start + float(payload.get("duration_s", 0.0)),
            attrs=dict(payload.get("attrs", {})),
            thread=str(payload.get("thread", "")),
        )
        node.children = [
            cls.from_dict(child) for child in payload.get("children", [])
        ]
        return node


def _merged_duration(intervals: Sequence[tuple[float, float]]) -> float:
    """Total length of the union of intervals (double counting removed)."""
    total = 0.0
    cursor = float("-inf")
    for start, end in sorted(intervals):
        if end <= cursor:
            continue
        total += end - max(start, cursor)
        cursor = end
    return total


@dataclass
class ExecutionProfile:
    """The observable record of one query evaluation."""

    query: str
    run: str
    root: ProfileNode | None
    span_count: int
    meta: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_spans(
        cls,
        spans: Sequence[Span],
        *,
        query: str = "",
        run: str = "",
        meta: Mapping[str, object] | None = None,
    ) -> "ExecutionProfile":
        """Assemble the tree from a tracer's finished spans.

        The root is the longest parentless span (a CLI evaluation has
        exactly one); spans whose parent never finished hang off the root's
        level as orphans and are dropped from the tree but still counted.
        """
        nodes: dict[int, ProfileNode] = {
            span.span_id: ProfileNode(
                name=span.name,
                span_id=span.span_id,
                start=span.start,
                end=span.end,
                attrs=dict(span.attrs),
                thread=span.thread,
            )
            for span in spans
        }
        roots: list[ProfileNode] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = (
                nodes.get(span.parent_id) if span.parent_id is not None else None
            )
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda child: (child.start, child.span_id))
        root = max(roots, key=lambda node: node.duration) if roots else None
        return cls(
            query=query,
            run=run,
            root=root,
            span_count=len(spans),
            meta=dict(meta) if meta else {},
        )

    def coverage(self) -> float:
        """Fraction of the root's wall time covered by its direct children
        (child intervals clipped to the root window, overlaps merged)."""
        root = self.root
        if root is None or root.duration <= 0.0:
            return 0.0
        intervals = [
            (max(child.start, root.start), min(child.end, root.end))
            for child in root.children
            if child.end > root.start and child.start < root.end
        ]
        if not intervals:
            return 0.0
        return min(1.0, _merged_duration(intervals) / root.duration)

    def totals(self) -> dict[str, dict[str, float]]:
        """Per-span-name aggregates: ``{name: {count, total_s}}``."""
        table: dict[str, dict[str, float]] = {}
        stack = [self.root] if self.root is not None else []
        while stack:
            node = stack.pop()
            row = table.setdefault(node.name, {"count": 0.0, "total_s": 0.0})
            row["count"] += 1.0
            row["total_s"] += node.duration
            stack.extend(node.children)
        return {
            name: {"count": row["count"], "total_s": round(row["total_s"], 9)}
            for name, row in sorted(table.items())
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "query": self.query,
            "run": self.run,
            "span_count": self.span_count,
            "coverage": round(self.coverage(), 6),
            "meta": dict(self.meta),
            "totals": self.totals(),
            "root": self.root.as_dict() if self.root is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecutionProfile":
        root_payload = payload.get("root")
        return cls(
            query=str(payload.get("query", "")),
            run=str(payload.get("run", "")),
            root=ProfileNode.from_dict(root_payload) if root_payload else None,
            span_count=int(payload.get("span_count", 0)),
            meta=dict(payload.get("meta", {})),
        )

    def render(self, *, max_depth: int = 6) -> str:
        """A readable tree for the CLI: names, attributes, millisecond
        timings, and the coverage line the acceptance bar reads."""
        lines: list[str] = []
        root = self.root
        if root is None:
            return "profile: no spans recorded"

        def describe(node: ProfileNode) -> str:
            attrs = ", ".join(
                f"{key}={value}" for key, value in sorted(node.attrs.items())
            )
            suffix = f" ({attrs})" if attrs else ""
            return f"{node.name}{suffix}"

        def walk(node: ProfileNode, prefix: str, tail: bool, depth: int) -> None:
            connector = "" if depth == 0 else ("└─ " if tail else "├─ ")
            label = f"{prefix}{connector}{describe(node)}"
            lines.append(f"{label:<64} {node.duration * 1000:9.2f} ms")
            if depth >= max_depth:
                return
            extension = "" if depth == 0 else ("   " if tail else "│  ")
            for position, child in enumerate(node.children):
                walk(
                    child,
                    prefix + extension,
                    position == len(node.children) - 1,
                    depth + 1,
                )

        walk(root, "", False, 0)
        lines.append(
            f"coverage: {self.coverage() * 100:.1f}% of the "
            f"{root.duration * 1000:.2f} ms root span "
            f"({self.span_count} spans)"
        )
        return "\n".join(lines)
