"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch one base class.  Finer-grained subclasses distinguish problems with the
workflow specification itself, with a particular run or label, with a query
string, and with the safety requirements of the labeling-based query engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecificationError(ReproError):
    """A workflow specification is malformed or violates a model constraint."""


class StructureError(SpecificationError):
    """A simple workflow body violates a structural constraint.

    The coarse-grained model of the paper requires production bodies to be
    acyclic, single-entry/single-exit graphs in which every node lies on a
    path from the source to the sink.
    """


class RecursionError_(SpecificationError):
    """The specification is not strictly linear-recursive.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`RecursionError`.
    """


class DerivationError(ReproError):
    """A derivation step is invalid (unknown node, wrong production, ...)."""


class LabelError(ReproError):
    """A node label is malformed or does not belong to the given specification."""


class QuerySyntaxError(ReproError):
    """A regular path query string cannot be parsed."""


class UnsafeQueryError(ReproError):
    """A query that is not safe for the specification was given to an engine
    that requires safety (Algorithm 1 / Algorithm 2 of the paper)."""


class UnsupportedQueryError(ReproError):
    """A baseline was asked to evaluate a query shape it does not support
    (for example, Option G3 only supports infrequent-form queries)."""


class StoreError(ReproError):
    """A persistent index store artifact is unreadable or inconsistent.

    Raised internally by :mod:`repro.store` while decoding; the store's read
    path converts it (and any other decode failure) into a miss plus an error
    counter, so corruption degrades to a rebuild instead of a crash.
    """
