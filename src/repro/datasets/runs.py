"""Run-generation policies for the experiments.

The paper simulates runs by applying random sequences of productions
(Section V-A), varying run size from 1K to 8K edges for most experiments and
up to 16K for the Kleene-star experiments, where one specific fork recursion
is fired many times while all other recursions fire only once.
"""

from __future__ import annotations

from repro.workflow.derivation import derive_run
from repro.workflow.run import Run
from repro.workflow.spec import Specification

__all__ = ["generate_run", "generate_fork_heavy_run", "node_lists"]


def generate_run(
    spec: Specification,
    target_edges: int,
    *,
    seed: int = 0,
) -> Run:
    """A run of roughly ``target_edges`` edges from a random production
    sequence (recursion is favoured while growing, then wound down)."""
    return derive_run(spec, seed=seed, target_edges=target_edges)


def generate_fork_heavy_run(
    spec: Specification,
    target_edges: int,
    fork_productions: tuple[int, ...],
    *,
    seed: int = 0,
) -> Run:
    """A run dominated by one fork/loop recursion (the Fig. 13g/h workload).

    The listed productions are strongly preferred while the run grows, so the
    resulting provenance graph contains one long recursion chain; all other
    recursive productions fire rarely.
    """
    if not fork_productions:
        raise ValueError("fork_productions must not be empty")
    return derive_run(
        spec,
        seed=seed,
        target_edges=target_edges,
        preferred_productions=fork_productions,
        recursion_bias=0.95,
    )


def node_lists(
    run: Run,
    *,
    limit: int | None = None,
    seed: int = 0,
) -> tuple[list[str], list[str]]:
    """The ``(l1, l2)`` input lists for all-pairs experiments.

    The paper uses *all* run nodes for both lists; ``limit`` optionally
    samples a deterministic subset so pure-Python all-pairs benchmarks stay
    tractable at large run sizes (see DESIGN.md, "Substitutions").
    """
    nodes = list(run.node_ids())
    if limit is None or len(nodes) <= limit:
        return list(nodes), list(nodes)
    import random

    rng = random.Random(seed)
    sample = rng.sample(nodes, limit)
    return sample, list(sample)
