"""Query workload generators.

The paper evaluates two classes of queries known to be expensive
(Section V-A):

* **IFQs** ``_* a1 _* a2 ... ak _*`` — "node pairs processed by a sequence of
  modules"; the natural workload for baseline G3.
* **Kleene stars** ``a*`` — provenance of forks and loops; the natural
  workload for the labeling-based approach.

plus random queries obtained by combining edge tags with concatenation,
union and Kleene star (Section V-E).  All generators are deterministic given
a seed and only mention tags that actually occur in the specification.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.datasets.index import EdgeTagIndex
from repro.workflow.run import Run
from repro.workflow.spec import Specification

__all__ = [
    "discriminating_tags",
    "generate_ifq",
    "generate_ifq_along_path",
    "generate_kleene_star",
    "generate_random_query",
    "generate_query_suite",
]


def _ordered_tags(spec: Specification) -> list[str]:
    return sorted(spec.tags)


def generate_ifq(
    spec: Specification,
    k: int,
    *,
    seed: int = 0,
    tags: Sequence[str] | None = None,
) -> str:
    """An infrequent-form query ``_* a1 _* ... ak _*`` with ``k`` tags.

    ``k = 0`` degenerates to the reachability query ``_*`` exactly as in
    Fig. 13d of the paper.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if tags is None:
        rng = random.Random(seed)
        pool = _ordered_tags(spec)
        tags = [rng.choice(pool) for _ in range(k)]
    elif len(tags) != k:
        raise ValueError(f"expected {k} tags, got {len(tags)}")
    parts = ["_*"]
    for tag in tags:
        parts.append(tag)
        parts.append("_*")
    return " ".join(parts)


def generate_ifq_along_path(
    run: Run,
    k: int,
    *,
    seed: int = 0,
    prefer: str | None = None,
    index: EdgeTagIndex | None = None,
) -> str:
    """An IFQ whose tags are sampled *in order along an actual run path*.

    Queries built this way are guaranteed to have at least one match, which
    makes them realistic workloads for the all-pairs experiments:

    * ``prefer="rare"`` keeps the k rarest tags of the sampled path (highly
      selective queries, the regime where the index baseline G3 shines);
    * ``prefer="frequent"`` keeps the k most frequent tags (lowly selective
      queries, the regime where intermediate results blow up);
    * ``prefer=None`` spreads the k tags evenly along the path.

    ``index`` may supply a prebuilt :class:`~repro.datasets.index.EdgeTagIndex`
    for the frequency counts.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return "_*"
    rng = random.Random(seed)
    if index is None:
        from repro.datasets.index import EdgeTagIndex

        index = EdgeTagIndex.from_run(run)

    # Random forward walk from a random node, collecting edge tags in order.
    best_walk: list[str] = []
    nodes = list(run.node_ids())
    for _ in range(40):
        current = rng.choice(nodes)
        walk: list[str] = []
        while True:
            successors = run.successors[current]
            if not successors:
                break
            current, tag = successors[rng.randrange(len(successors))]
            walk.append(tag)
        if len(walk) > len(best_walk):
            best_walk = walk
        if len(best_walk) >= 4 * k:
            break
    if not best_walk:
        return generate_ifq(run.spec, k, seed=seed)

    if len(best_walk) <= k:
        chosen = list(best_walk) + [best_walk[-1]] * (k - len(best_walk))
    elif prefer in ("rare", "frequent"):
        ranked = sorted(
            range(len(best_walk)),
            key=lambda position: index.count(best_walk[position]),
            reverse=(prefer == "frequent"),
        )
        keep = sorted(ranked[:k])
        chosen = [best_walk[position] for position in keep]
    else:
        step = len(best_walk) / k
        chosen = [best_walk[int(i * step)] for i in range(k)]
    return generate_ifq(run.spec, k, tags=chosen)


def generate_kleene_star(tag: str) -> str:
    """The Kleene-star query ``a*`` for a single edge tag."""
    return f"{tag}*"


def discriminating_tags(spec: Specification) -> frozenset[str]:
    """Tags that distinguish alternative implementations of some module.

    A tag that appears in some—but not all—production bodies of a composite
    module is the raw material of query *unsafety* (Section III-C): whether a
    path with that tag exists can depend on which implementation ran.  The
    Fig. 15 workload draws on these tags to obtain unsafe queries.
    """
    result: set[str] = set()
    for module, production_indices in spec.productions_of.items():
        if len(production_indices) < 2:
            continue
        tag_sets = [set(spec.production(index).body.tags()) for index in production_indices]
        everywhere = set.intersection(*tag_sets)
        somewhere = set.union(*tag_sets)
        result |= somewhere - everywhere
    return frozenset(result)


def generate_random_query(
    spec: Specification,
    *,
    seed: int = 0,
    depth: int = 3,
    tag_pool: Sequence[str] | None = None,
) -> str:
    """A random query combining tags with concatenation, union and star.

    Mirrors Section V-E: "we generate queries by randomly combining edge tags
    using concatenation, union, and Kleene star."  ``tag_pool`` restricts the
    tags drawn (used to bias the Fig. 15 workload towards unsafe queries).
    """
    rng = random.Random(seed)
    pool = sorted(tag_pool) if tag_pool else _ordered_tags(spec)

    def build(level: int) -> str:
        if level <= 0 or rng.random() < 0.3:
            choice = rng.random()
            if choice < 0.55:
                return rng.choice(pool)
            if choice < 0.8:
                return "_*"
            return f"{rng.choice(pool)}*"
        operator = rng.choice(["concat", "union", "star"])
        if operator == "concat":
            parts = [build(level - 1) for _ in range(rng.randint(2, 3))]
            return " . ".join(f"({part})" for part in parts)
        if operator == "union":
            parts = [build(level - 1) for _ in range(2)]
            return f"(({parts[0]}) | ({parts[1]}))"
        return f"({build(level - 1)})*"

    return build(depth)


def generate_query_suite(
    spec: Specification,
    *,
    count: int,
    seed: int = 0,
    depth: int = 3,
    tag_pool: Sequence[str] | None = None,
) -> list[str]:
    """A deterministic suite of random queries (Fig. 15 uses 40 of these)."""
    return [
        generate_random_query(spec, seed=seed * 1_000 + index, depth=depth, tag_pool=tag_pool)
        for index in range(count)
    ]
