"""The running example of the paper (Fig. 2).

The specification has four productions:

* ``W1: S -> c  A  B  b``  (a diamond: ``c`` fans out to ``A`` and ``B``,
  both of which join into ``b``),
* ``W2: A -> a  A  d``     (the recursive production, chain ``a → A → d``),
* ``W3: A -> e  e``        (the terminating production, chain ``e → e``),
* ``W4: B -> b  b``        (chain ``b → b``).

Following the paper's convention, every edge is tagged with the name of the
module it leaves.  This reconstruction reproduces the worked results of the
paper exactly:

* Example 3.1 — ``A+`` holds for ``(d:2, b:1)`` but ``A`` does not; the
  all-pairs answers over ``l1 = {d:1, d:2, e:2}``, ``l2 = {b:1, b:2}`` are
  ``{(d:1,b:1), (d:2,b:1), (e:2,b:1)}`` for ``A+`` and ``{(d:1,b:1)}`` for
  ``A``;
* Example 3.2 — ``_* e _*`` (R3) holds for ``(c:1, b:1)`` but not
  ``(c:1, b:3)``;
* Section III-C — R3 is safe while ``e`` (R4) and ``_* a _*`` are not.

The only recursive module is ``A`` (Example 2.2).
"""

from __future__ import annotations

from repro.workflow.derivation import Derivation
from repro.workflow.run import Run
from repro.workflow.simple import Edge, SimpleWorkflow
from repro.workflow.spec import Production, Specification

__all__ = ["paper_specification", "paper_run", "PAPER_PRODUCTIONS"]

# Production indices, for readability in tests (0-based; the paper is 1-based).
W1, W2, W3, W4 = 0, 1, 2, 3

PAPER_PRODUCTIONS = {"W1": W1, "W2": W2, "W3": W3, "W4": W4}


def paper_specification() -> Specification:
    """Build the specification of Fig. 2a."""
    w1 = SimpleWorkflow(
        ["c", "A", "B", "b"],
        [Edge(0, 1, "c"), Edge(0, 2, "c"), Edge(1, 3, "A"), Edge(2, 3, "B")],
    )
    w2 = SimpleWorkflow(
        ["a", "A", "d"],
        [Edge(0, 1, "a"), Edge(1, 2, "A")],
    )
    w3 = SimpleWorkflow(["e", "e"], [Edge(0, 1, "e")])
    w4 = SimpleWorkflow(["b", "b"], [Edge(0, 1, "b")])
    return Specification(
        start="S",
        productions=[
            Production("S", w1),
            Production("A", w2),
            Production("A", w3),
            Production("B", w4),
        ],
        name="paper-example",
    )


def paper_run(recursion_depth: int = 2) -> Run:
    """Derive the run of Fig. 2b (for the default ``recursion_depth=2``).

    The start module fires ``W1``; ``A`` fires its recursive production ``W2``
    ``recursion_depth`` times and then terminates with ``W3``; ``B`` fires
    ``W4``.  With ``recursion_depth=2`` the resulting run has the eleven
    atomic executions of the paper's figure:
    ``c:1, a:1, a:2, e:1, e:2, d:1, d:2, b:1, b:2, b:3`` and their edges.
    """
    if recursion_depth < 0:
        raise ValueError("recursion_depth must be non-negative")
    spec = paper_specification()
    derivation = Derivation(spec)

    # Replace S with W1.
    (_, a_node, b_node, _) = derivation.step("S:1", W1)
    # Unfold the recursion of A.
    current = a_node
    for _ in range(recursion_depth):
        _, current, _ = derivation.step(current, W2)
    derivation.step(current, W3)
    # Expand B.
    derivation.step(b_node, W4)
    return derivation.to_run()
