"""Workloads: specifications, runs, queries and indices for experiments.

The paper evaluates on two recursive scientific workflows collected from
myExperiment (BioAID and QBLast) plus synthetic workflows, with runs simulated
by firing random production sequences.  myExperiment data is not bundled
here, so :mod:`repro.datasets.myexperiment` *simulates* the two workflows
with exactly the statistics reported in Section V-A (see DESIGN.md,
"Substitutions").  The remaining modules provide the synthetic specification
generator, run-generation policies, query generators (IFQs, Kleene stars,
random combinations) and the edge-tag inverted index used by baseline G3.
"""

from repro.datasets.index import EdgeTagIndex
from repro.datasets.myexperiment import bioaid_specification, qblast_specification
from repro.datasets.paper_example import paper_specification, paper_run
from repro.datasets.queries import (
    generate_ifq,
    generate_ifq_along_path,
    generate_kleene_star,
    generate_random_query,
)
from repro.datasets.runs import generate_run, generate_fork_heavy_run
from repro.datasets.synthetic import generate_synthetic_specification

__all__ = [
    "EdgeTagIndex",
    "bioaid_specification",
    "generate_fork_heavy_run",
    "generate_ifq",
    "generate_ifq_along_path",
    "generate_kleene_star",
    "generate_random_query",
    "generate_run",
    "generate_synthetic_specification",
    "paper_run",
    "paper_specification",
    "qblast_specification",
]
