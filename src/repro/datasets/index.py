"""The edge-tag inverted index used by baseline G3.

Section V-A: "For each run, an index maps an edge tag γ ∈ Γ to a list of node
pairs that are connected by an edge tagged γ.  We store indices as Java
serializable objects and materialize them on disk."  This module provides the
same structure with JSON persistence; load time is cheap (the paper notes the
inverted index lookup stays below 10 ms) and is included in all-pairs query
times just as in the paper.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

from repro.workflow.run import Run

__all__ = ["EdgeTagIndex"]


class EdgeTagIndex:
    """Maps each edge tag to the list of node pairs connected by that tag."""

    def __init__(self, pairs_by_tag: Mapping[str, Iterable[tuple[str, str]]]) -> None:
        self._pairs: dict[str, tuple[tuple[str, str], ...]] = {
            tag: tuple(pairs) for tag, pairs in pairs_by_tag.items()
        }

    @classmethod
    def from_run(cls, run: Run) -> "EdgeTagIndex":
        pairs: dict[str, list[tuple[str, str]]] = {}
        for edge in run.edges:
            pairs.setdefault(edge.tag, []).append((edge.source, edge.target))
        return cls(pairs)

    # -- queries ------------------------------------------------------------------

    def pairs(self, tag: str) -> tuple[tuple[str, str], ...]:
        """All ``(source, target)`` pairs connected by an edge with this tag."""
        return self._pairs.get(tag, ())

    def count(self, tag: str) -> int:
        return len(self._pairs.get(tag, ()))

    def tags(self) -> frozenset[str]:
        return frozenset(self._pairs)

    def selectivity(self, tag: str) -> int:
        """Alias of :meth:`count`; "rare" tags have low selectivity counts."""
        return self.count(tag)

    def rarest_tags(self) -> list[str]:
        """Tags ordered from rarest to most frequent (ties broken by name)."""
        return sorted(self._pairs, key=lambda tag: (len(self._pairs[tag]), tag))

    def total_pairs(self) -> int:
        return sum(len(pairs) for pairs in self._pairs.values())

    # -- persistence ---------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {tag: [list(pair) for pair in pairs] for tag, pairs in self._pairs.items()}
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "EdgeTagIndex":
        payload = json.loads(Path(path).read_text())
        return cls({tag: [tuple(pair) for pair in pairs] for tag, pairs in payload.items()})

    def __repr__(self) -> str:
        return f"EdgeTagIndex(tags={len(self._pairs)}, pairs={self.total_pairs()})"
