"""Synthetic workflow specifications.

Section V-B of the paper evaluates the safety-check overhead on synthetic
workflows of varying size.  :func:`generate_synthetic_specification` builds a
random — but always valid — specification:

* strictly linear-recursive (recursion is introduced only as self-cycles),
* every production body is a single-entry/single-exit spanning DAG (a chain
  with optional extra forward edges, giving "branchy" bodies),
* every composite module is productive (recursive modules always get a
  non-recursive terminating production),
* every composite module is reachable from the start module, so derived runs
  actually exercise the whole grammar,
* a configurable fraction of composite modules has *alternative*
  implementations (two non-recursive productions), which is the source of
  query unsafety (Section III-C) and of derivation diversity.

Edge tags are drawn from a bounded vocabulary (rather than from the module
names) so that generated queries have meaningful, controllable selectivity.
The ``target_size`` parameter is the paper's workflow-size measure
(sum over productions of ``1 + |body|``); the generator gets within a few
percent of it.
"""

from __future__ import annotations

import random

from repro.workflow.simple import Edge, SimpleWorkflow
from repro.workflow.spec import Production, Specification

__all__ = ["generate_synthetic_specification"]


def _random_body(
    rng: random.Random,
    modules: list[str],
    vocabulary: list[str],
    *,
    extra_edge_probability: float = 0.3,
) -> SimpleWorkflow:
    """A random spanning DAG over the given module sequence.

    The backbone is the chain ``modules[0] -> modules[1] -> ...`` which
    guarantees a unique source, a unique sink and the spanning property;
    random forward "shortcut" edges add branchiness.  Tags are drawn from the
    vocabulary.
    """
    edges = []
    for index in range(len(modules) - 1):
        edges.append(Edge(index, index + 1, rng.choice(vocabulary)))
    for source in range(len(modules) - 2):
        for target in range(source + 2, len(modules)):
            if rng.random() < extra_edge_probability / (target - source):
                edges.append(Edge(source, target, rng.choice(vocabulary)))
    return SimpleWorkflow(modules, edges)


def generate_synthetic_specification(
    target_size: int,
    *,
    seed: int = 0,
    recursion_fraction: float = 0.3,
    alternative_fraction: float = 0.4,
    body_size_range: tuple[int, int] = (4, 8),
    branchiness: float = 0.3,
    tag_vocabulary_size: int = 20,
    name: str | None = None,
) -> Specification:
    """Generate a random strictly-linear-recursive specification.

    Parameters
    ----------
    target_size:
        Desired workflow size (the paper varies 400–1200 in Fig. 13a).
    recursion_fraction:
        Fraction of composite modules (other than the start) that carry a
        self-recursive production in addition to their terminating one.
    alternative_fraction:
        Fraction of composite modules with a second, alternative
        non-recursive implementation.
    body_size_range:
        Inclusive range of production-body lengths.
    branchiness:
        Probability weight of extra forward edges inside bodies.
    tag_vocabulary_size:
        Number of distinct edge tags to draw from.
    """
    if target_size < 10:
        raise ValueError("target_size must be at least 10")
    rng = random.Random(seed)
    low, high = body_size_range
    average_body = (low + high) / 2
    vocabulary = [f"op{i}" for i in range(max(2, tag_vocabulary_size))]

    # Expected number of productions per composite and size per production.
    productions_per_module = 1 + recursion_fraction + alternative_fraction
    per_module = productions_per_module * (average_body + 1)
    composite_count = max(3, int(round(target_size / per_module)))

    composites = [f"C{i}" for i in range(composite_count)]
    atom_counter = 0

    def fresh_atoms(count: int) -> list[str]:
        nonlocal atom_counter
        names = [f"t{atom_counter + i}" for i in range(count)]
        atom_counter += count
        return names

    def make_members(references: list[str]) -> list[str]:
        """Body members: fresh atomic modules with composite references at
        interior positions (the source and sink stay atomic)."""
        body_length = rng.randint(low, high)
        atom_count = max(2, body_length - len(references))
        members = fresh_atoms(atom_count)
        for reference in references:
            members.insert(rng.randint(1, len(members) - 1), reference)
        return members

    productions: list[Production] = []
    for index, module in enumerate(composites):
        # Reachability: the primary production of C_i always references
        # C_{i+1}; additional references to later composites add width.
        references: list[str] = []
        if index + 1 < composite_count:
            references.append(composites[index + 1])
        later = composites[index + 2 :]
        if later and rng.random() < 0.6:
            references.extend(rng.sample(later, min(len(later), rng.randint(1, 2))))
        productions.append(
            Production(
                module,
                _random_body(rng, make_members(references), vocabulary, extra_edge_probability=branchiness),
            )
        )

        if index > 0 and rng.random() < alternative_fraction:
            # An alternative implementation with different steps (and possibly
            # no sub-workflow calls) — the source of query unsafety.
            alt_references = [composites[index + 1]] if index + 1 < composite_count and rng.random() < 0.5 else []
            productions.append(
                Production(
                    module,
                    _random_body(rng, make_members(alt_references), vocabulary, extra_edge_probability=branchiness),
                )
            )

        if index > 0 and rng.random() < recursion_fraction:
            # Self-recursive production: the module occurs exactly once in its
            # own body, flanked by fresh atomic modules (fork/loop pattern).
            loop_atoms = fresh_atoms(max(2, rng.randint(low, high) - 1))
            position = rng.randint(1, len(loop_atoms) - 1)
            members = loop_atoms[:position] + [module] + loop_atoms[position:]
            productions.append(
                Production(
                    module,
                    _random_body(rng, members, vocabulary, extra_edge_probability=branchiness),
                )
            )

    spec_name = name or f"synthetic-{target_size}-seed{seed}"
    return Specification(start=composites[0], productions=productions, name=spec_name)
