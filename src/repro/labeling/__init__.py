"""Dynamic, derivation-based reachability labeling (paper reference [4]).

This package reproduces the labeling substrate the paper builds on: every
node of a run is labeled, *as it is derived*, with the sequence of derivation
steps that created it (a path in the *compressed parse tree*).  Labels are

* **query-agnostic** — they encode only which productions fired, and
* **parameterized by the specification** — decoding a pair of labels consults
  the specification (or, for regular path queries, the query-intersected
  specification ``G^R``), never the run itself.

Contents:

* :mod:`repro.labeling.labels` — label step types and helpers,
* :mod:`repro.labeling.labeler` — assigns labels during derivation, handling
  recursion chains (the children of the parse tree's ``R`` nodes),
* :mod:`repro.labeling.parse_tree` — the compressed parse tree / label trie
  used by the all-pairs algorithm,
* :mod:`repro.labeling.reachability` — the constant-time (in run size)
  pairwise reachability decode π(ψV(u), ψV(v), G).
"""

from repro.labeling.labels import Label, ProductionStep, RecursionStep, format_label, parse_label
from repro.labeling.labeler import ChainContext, Labeler
from repro.labeling.parse_tree import LabelTrie, TrieNode
from repro.labeling.reachability import is_reachable

__all__ = [
    "ChainContext",
    "Label",
    "LabelTrie",
    "Labeler",
    "ProductionStep",
    "RecursionStep",
    "TrieNode",
    "format_label",
    "is_reachable",
    "parse_label",
]
