"""Label steps and label utilities.

A node label ψV(v) is the concatenation of the edge labels on the path from
the root of the compressed parse tree to ``v`` (Section II-B of the paper).
Two kinds of edge labels exist:

* :class:`ProductionStep` ``(k, i)`` — the child is the ``i``-th position of
  the body of production ``k`` (edges out of composite parse-tree nodes), and
* :class:`RecursionStep` ``(s, t, j)`` — the child is the ``j``-th module
  execution of a recursion chain of cycle ``s`` entered at cycle offset ``t``
  (edges out of the parse tree's recursive ``R`` nodes).

All indices are 0-based (the paper's figures use 1-based indices).  A label
is simply a tuple of steps, which keeps labels hashable, comparable and cheap
to slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.errors import LabelError

__all__ = [
    "ProductionStep",
    "RecursionStep",
    "LabelStep",
    "Label",
    "common_prefix_length",
    "is_strict_prefix",
    "format_label",
    "parse_label",
    "label_sort_key",
]


@dataclass(frozen=True, order=True)
class ProductionStep:
    """Edge label ``(k, i)``: position ``i`` of the body of production ``k``."""

    production: int
    position: int


@dataclass(frozen=True, order=True)
class RecursionStep:
    """Edge label ``(s, t, j)``: the ``j``-th child of a recursion chain of
    cycle ``s`` entered at cycle offset ``t``."""

    cycle: int
    start: int
    ordinal: int


LabelStep = Union[ProductionStep, RecursionStep]
Label = tuple[LabelStep, ...]


def common_prefix_length(left: Label, right: Label) -> int:
    """Length of the longest common prefix of two labels."""
    limit = min(len(left), len(right))
    index = 0
    while index < limit and left[index] == right[index]:
        index += 1
    return index


def is_strict_prefix(prefix: Label, label: Label) -> bool:
    """True when ``prefix`` is a proper prefix of ``label``."""
    return len(prefix) < len(label) and label[: len(prefix)] == prefix


def label_sort_key(label: Label) -> tuple[tuple[int, int, int, int], ...]:
    """A sort key grouping labels by parse-tree position.

    Production steps and recursion steps never occur at the same depth under
    the same parent (a parse-tree node is either composite or recursive), so
    ordering mixed step types only needs to be deterministic, not meaningful.
    """
    key: list[tuple[int, int, int, int]] = []
    for step in label:
        if isinstance(step, ProductionStep):
            key.append((0, step.production, step.position, 0))
        else:
            key.append((1, step.cycle, step.start, step.ordinal))
    return tuple(key)


# ---------------------------------------------------------------------------
# Textual form, used by the JSON serializers and the CLI.
#   production step: "k.i"        e.g. "0.2"
#   recursion step:  "r:s.t.j"    e.g. "r:0.0.3"
# Steps are joined with "/".
# ---------------------------------------------------------------------------


def format_label(label: Label) -> str:
    """Render a label in a compact textual form."""
    parts = []
    for step in label:
        if isinstance(step, ProductionStep):
            parts.append(f"{step.production}.{step.position}")
        elif isinstance(step, RecursionStep):
            parts.append(f"r:{step.cycle}.{step.start}.{step.ordinal}")
        else:  # pragma: no cover - defensive
            raise LabelError(f"unknown label step {step!r}")
    return "/".join(parts)


def parse_label(text: str) -> Label:
    """Parse the textual form produced by :func:`format_label`."""
    if not text:
        return ()
    steps: list[LabelStep] = []
    for part in text.split("/"):
        try:
            if part.startswith("r:"):
                cycle, start, ordinal = (int(x) for x in part[2:].split("."))
                steps.append(RecursionStep(cycle, start, ordinal))
            else:
                production, position = (int(x) for x in part.split("."))
                steps.append(ProductionStep(production, position))
        except ValueError as exc:
            raise LabelError(f"malformed label component {part!r}") from exc
    return tuple(steps)


def ensure_label(value: Iterable[LabelStep]) -> Label:
    """Coerce an iterable of steps to a label tuple, validating step types."""
    label = tuple(value)
    for step in label:
        if not isinstance(step, (ProductionStep, RecursionStep)):
            raise LabelError(f"label steps must be ProductionStep or RecursionStep, got {step!r}")
    return label
