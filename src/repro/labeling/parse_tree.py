"""Label tries: projections of the compressed parse tree.

Algorithm 2 of the paper represents a list of node labels as an edge-labeled
tree which is the projection of the run's compressed parse tree onto that
list (Fig. 12).  :class:`LabelTrie` is exactly that structure: a trie over
label step sequences whose leaves carry the node ids of the input list.

The same structure doubles as an inspectable compressed parse tree: building
a trie over *all* node labels of a run yields the tree of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.labeling.labels import Label, LabelStep, ProductionStep, RecursionStep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workflow.run import Run

__all__ = ["TrieNode", "LabelTrie"]


@dataclass
class TrieNode:
    """One node of a label trie.

    ``payload`` holds the identifiers of the input-list entries whose label
    ends exactly here (for run nodes there is at most one, since labels are
    unique, but the structure does not rely on that).

    ``memo`` is scratch space for decoders walking the trie: the vectorized
    all-pairs evaluator stashes per-query state-vector tables here, keyed by
    an opaque token that identifies the query index, so each table is
    computed at most once per trie node per query no matter how many groups
    of the structural join touch the node.  Use
    :meth:`LabelTrie.clear_memos` to drop the tables when a long-lived trie
    is reused across many queries.
    """

    depth: int
    children: dict[LabelStep, "TrieNode"] = field(default_factory=dict)
    payload: list[str] = field(default_factory=list)
    leaf_count: int = 0
    memo: dict[object, object] = field(default_factory=dict, repr=False, compare=False)

    # -- structure ----------------------------------------------------------------

    def is_leaf(self) -> bool:
        return not self.children

    def is_recursive(self) -> bool:
        """True when this node is an ``R`` node of the compressed parse tree
        (its outgoing edges are recursion steps)."""
        return any(isinstance(step, RecursionStep) for step in self.children)

    def child(self, step: LabelStep) -> "TrieNode | None":
        return self.children.get(step)

    def sorted_children(self) -> list[tuple[LabelStep, "TrieNode"]]:
        def key(item: tuple[LabelStep, TrieNode]) -> tuple[int, int, int, int]:
            step = item[0]
            if isinstance(step, ProductionStep):
                return (0, step.production, step.position, 0)
            return (1, step.cycle, step.start, step.ordinal)

        return sorted(self.children.items(), key=key)

    # -- leaves ---------------------------------------------------------------------

    def iter_leaf_payloads(self) -> Iterator[str]:
        """All payload identifiers in the subtree rooted here."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield from node.payload
            stack.extend(node.children.values())

    def leaves(self) -> list[str]:
        return list(self.iter_leaf_payloads())


class LabelTrie:
    """A trie over node labels (the tree representation of a node list)."""

    def __init__(self, entries: Iterable[tuple[Label, str]] = ()) -> None:
        self._root = TrieNode(depth=0)
        self._size = 0
        for label, identifier in entries:
            self.insert(label, identifier)

    @classmethod
    def from_run_nodes(cls, run: "Run", node_ids: Iterable[str]) -> "LabelTrie":
        """Build a trie for a list of node ids of a run."""
        return cls((run.label_of(node_id), node_id) for node_id in node_ids)

    # -- construction -----------------------------------------------------------------

    def insert(self, label: Label, identifier: str) -> None:
        node = self._root
        node.leaf_count += 1
        for step in label:
            child = node.children.get(step)
            if child is None:
                child = TrieNode(depth=node.depth + 1)
                node.children[step] = child
            node = child
            node.leaf_count += 1
        node.payload.append(identifier)
        self._size += 1

    # -- observers ----------------------------------------------------------------------

    @property
    def root(self) -> TrieNode:
        return self._root

    def __len__(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        return self._size == 0

    def height(self) -> int:
        best = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            stack.extend((child, depth + 1) for child in node.children.values())
        return best

    def clear_memos(self) -> None:
        """Drop every node's decoder scratch space (see :class:`TrieNode`)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            node.memo.clear()
            stack.extend(node.children.values())

    def find(self, label: Label) -> TrieNode | None:
        node = self._root
        for step in label:
            node = node.children.get(step)
            if node is None:
                return None
        return node

    def render(self, max_nodes: int = 200) -> str:
        """A small ASCII rendering, handy for debugging and the CLI."""
        lines: list[str] = []
        count = 0

        def visit(node: TrieNode, step: LabelStep | None, indent: int) -> None:
            nonlocal count
            if count >= max_nodes:
                return
            count += 1
            if step is None:
                text = "<root>"
            elif isinstance(step, ProductionStep):
                text = f"({step.production},{step.position})"
            else:
                text = f"R({step.cycle},{step.start})#{step.ordinal}"
            suffix = f" -> {','.join(node.payload)}" if node.payload else ""
            lines.append("  " * indent + text + suffix)
            for child_step, child in node.sorted_children():
                visit(child, child_step, indent + 1)

        visit(self._root, None, 0)
        if count >= max_nodes:
            lines.append("  ... (truncated)")
        return "\n".join(lines)
