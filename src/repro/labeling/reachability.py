"""Pairwise reachability decoding from labels (the π predicate of [4]).

Given the labels of two run nodes and the specification the run was derived
from, :func:`is_reachable` decides whether a path exists between the nodes in
the run.  The decision only inspects the two labels and the specification —
its running time is bounded by the label length (at most the depth of the
compressed parse tree, which is bounded by the specification size) and is
therefore independent of the run size, matching the constant-time claim of
the paper under the word-RAM convention.

The decode walks the two labels to their divergence point in the compressed
parse tree and then reasons locally:

* divergence under a *composite* parse-tree node at body positions ``i`` and
  ``j`` of production ``k``: reachable iff position ``i`` reaches position
  ``j`` in the body DAG;
* divergence under a *recursive* (``R``) node at chain ordinals ``i < j``:
  reachable iff the position of ``u``'s branch inside chain child ``i``'s
  cycle production reaches that production's recursive position (a "red"
  branch in the paper's Algorithm 2 terminology);
* symmetrically for ``i > j`` with the "blue" condition.

The soundness of this local reasoning relies on the structural constraints
enforced by :class:`repro.workflow.simple.SimpleWorkflow` (single-entry /
single-exit, spanning bodies).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import LabelError
from repro.labeling.labels import (
    Label,
    ProductionStep,
    RecursionStep,
    common_prefix_length,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workflow.spec import Specification

__all__ = ["is_reachable"]


def _expect_production_step(label: Label, index: int, context: str) -> ProductionStep:
    if index >= len(label) or not isinstance(label[index], ProductionStep):
        raise LabelError(f"malformed label near {context}: expected a production step")
    return label[index]  # type: ignore[return-value]


def is_reachable(label_u: Label, label_v: Label, spec: "Specification") -> bool:
    """Decide ``u ⤳ v`` (a path of length >= 0) from labels alone.

    ``label_u == label_v`` is treated as reachable (the empty path), matching
    the convention that reachability ``_*`` is reflexive.
    """
    if label_u == label_v:
        return True

    split = common_prefix_length(label_u, label_v)
    if split == len(label_u) or split == len(label_v):
        raise LabelError(
            "one label is a prefix of the other; labels of run nodes (atomic module "
            "executions) can never be nested"
        )

    step_u = label_u[split]
    step_v = label_v[split]

    if isinstance(step_u, ProductionStep) and isinstance(step_v, ProductionStep):
        if step_u.production != step_v.production:
            raise LabelError(
                "labels diverge with different productions under the same parse-tree "
                f"node ({step_u.production} vs {step_v.production}); the labels do not "
                "belong to the same run"
            )
        body = spec.production(step_u.production).body
        return body.reaches(step_u.position, step_v.position)

    if isinstance(step_u, RecursionStep) and isinstance(step_v, RecursionStep):
        if step_u.cycle != step_v.cycle or step_u.start != step_v.start:
            raise LabelError(
                "labels diverge with inconsistent recursion chains; the labels do not "
                "belong to the same run"
            )
        cycle = spec.production_graph.cycles[step_u.cycle]
        if step_u.ordinal < step_v.ordinal:
            # u lives under an earlier chain member; it reaches v iff its branch
            # reaches the recursive position of that member's cycle production.
            branch = _expect_production_step(label_u, split + 1, "recursion divergence")
            offset = cycle.chain_offset(step_u.start, step_u.ordinal)
            cycle_production, recursive_position = cycle.step(offset)
            if branch.production != cycle_production:
                raise LabelError(
                    "a non-terminal chain member did not use its cycle production; "
                    "the labels are inconsistent with the specification"
                )
            body = spec.production(cycle_production).body
            return body.reaches(branch.position, recursive_position)
        # u lives under a later (more deeply nested) chain member than v; it
        # reaches v iff the recursive position of v's chain member reaches v's
        # branch position.
        branch = _expect_production_step(label_v, split + 1, "recursion divergence")
        offset = cycle.chain_offset(step_v.start, step_v.ordinal)
        cycle_production, recursive_position = cycle.step(offset)
        if branch.production != cycle_production:
            raise LabelError(
                "a non-terminal chain member did not use its cycle production; "
                "the labels are inconsistent with the specification"
            )
        body = spec.production(cycle_production).body
        return body.reaches(recursive_position, branch.position)

    raise LabelError(
        "labels diverge with mixed step kinds under the same parse-tree node; the "
        "labels do not belong to the same run"
    )
