"""Label assignment during derivation.

The :class:`Labeler` encapsulates the rules of Section II-B for building the
compressed parse tree *incrementally, as productions fire*:

* replacing a composite node with production ``k`` gives each body position
  ``i`` the label of the replaced node extended with ``ProductionStep(k, i)``;
* except that a body position holding a *recursive* module starts a new
  recursion chain: an implicit ``R`` node is created at
  ``parent + ProductionStep(k, i)`` and the new module execution becomes its
  first child, labeled ``... + RecursionStep(cycle, start_offset, 0)``;
* and except that when a *chain member* fires its cycle production, the body
  position holding the next cycle module does not descend under the chain
  member but becomes the next child of the same ``R`` node,
  ``r_label + RecursionStep(cycle, start_offset, ordinal + 1)``.

The labeler never looks at the run graph: the information needed is carried
in a small :class:`ChainContext` attached to each live composite node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import DerivationError
from repro.labeling.labels import Label, ProductionStep, RecursionStep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workflow.spec import Specification

__all__ = ["ChainContext", "ChildLabel", "Labeler"]


@dataclass(frozen=True)
class ChainContext:
    """Recursion-chain bookkeeping for a live composite node.

    ``r_label`` is the label of the chain's ``R`` parse-tree node, ``cycle``
    and ``start`` identify the cycle and the offset at which the chain entered
    it, and ``ordinal`` is this node's (0-based) position along the chain.
    """

    r_label: Label
    cycle: int
    start: int
    ordinal: int


@dataclass(frozen=True)
class ChildLabel:
    """The label and chain context computed for one body position."""

    position: int
    module: str
    label: Label
    chain: ChainContext | None


class Labeler:
    """Computes labels for the nodes created by each derivation step."""

    def __init__(self, spec: "Specification") -> None:
        self._spec = spec
        self._graph = spec.production_graph

    # -- the root -----------------------------------------------------------------

    def root(self) -> tuple[Label, ChainContext | None]:
        """Label and chain context of the initial start-module node.

        If the start module is itself recursive, the root of the compressed
        parse tree is an ``R`` node with the empty label and the start node is
        its first chain child.
        """
        start = self._spec.start
        cycle = self._graph.cycle_of(start)
        if cycle is None:
            return (), None
        offset = self._graph.cycle_offset_of(start)
        context = ChainContext(r_label=(), cycle=cycle.index, start=offset, ordinal=0)
        return ((RecursionStep(cycle.index, offset, 0),), context)

    # -- children of a replacement ---------------------------------------------------

    def children(
        self,
        parent_label: Label,
        parent_chain: ChainContext | None,
        production_index: int,
    ) -> list[ChildLabel]:
        """Labels for every body position of the production replacing a node."""
        production = self._spec.production(production_index)
        body = production.body

        chain_position: int | None = None
        chain_cycle = None
        if parent_chain is not None:
            chain_cycle = self._graph.cycles[parent_chain.cycle]
            chain_offset = chain_cycle.chain_offset(parent_chain.start, parent_chain.ordinal)
            cycle_production, recursive_position = chain_cycle.step(chain_offset)
            if production_index == cycle_production:
                chain_position = recursive_position

        children: list[ChildLabel] = []
        for position, module in enumerate(body.nodes):
            if chain_position is not None and position == chain_position:
                # The next module execution of the current recursion chain.
                assert parent_chain is not None
                next_ordinal = parent_chain.ordinal + 1
                step = RecursionStep(parent_chain.cycle, parent_chain.start, next_ordinal)
                label = parent_chain.r_label + (step,)
                context = ChainContext(
                    r_label=parent_chain.r_label,
                    cycle=parent_chain.cycle,
                    start=parent_chain.start,
                    ordinal=next_ordinal,
                )
                children.append(ChildLabel(position, module, label, context))
                continue

            cycle = self._graph.cycle_of(module)
            base = parent_label + (ProductionStep(production_index, position),)
            if cycle is None:
                children.append(ChildLabel(position, module, base, None))
                continue
            # A recursive module reached from outside its cycle: start a new
            # chain under an implicit R node located at ``base``.
            offset = self._graph.cycle_offset_of(module)
            step = RecursionStep(cycle.index, offset, 0)
            context = ChainContext(r_label=base, cycle=cycle.index, start=offset, ordinal=0)
            children.append(ChildLabel(position, module, base + (step,), context))
        return children

    # -- validation helper ------------------------------------------------------------

    def check_production_applicable(
        self, module: str, production_index: int
    ) -> None:
        """Raise :class:`DerivationError` when the production cannot replace a
        node of the given module."""
        if production_index < 0 or production_index >= len(self._spec.productions):
            raise DerivationError(f"production index {production_index} out of range")
        head = self._spec.production(production_index).head
        if head != module:
            raise DerivationError(
                f"production {production_index} rewrites {head!r}, not {module!r}"
            )
