"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands cover the typical workflow of the library:

* ``repro spec``      — inspect a built-in or stored specification,
* ``repro derive``    — derive a labeled run and store it as JSON,
* ``repro safety``    — check whether a query is safe for a specification,
* ``repro query``     — answer a pairwise or all-pairs query over a stored run,
* ``repro batch``     — stream a JSONL batch of queries through the query service,
* ``repro bench``     — run the paper's experiments (same as ``python -m repro.bench``).

Library errors (unsafe queries, malformed regexes, broken input files) exit
non-zero with a one-line ``repro: error: ...`` message instead of a
traceback, so the CLI composes cleanly in shell pipelines and CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import __version__
from repro.core.engine import ProvenanceQueryEngine
from repro.datasets.myexperiment import bioaid_specification, qblast_specification
from repro.datasets.paper_example import paper_specification
from repro.datasets.synthetic import generate_synthetic_specification
from repro.errors import ReproError
from repro.service import IndexCache, QueryService, read_requests_jsonl, result_to_dict
from repro.workflow.serialization import (
    load_run,
    load_specification,
    save_run,
    save_specification,
)
from repro.workflow.spec import Specification

__all__ = ["main"]

_BUILTIN_SPECS = {
    "paper-example": paper_specification,
    "bioaid": bioaid_specification,
    "qblast": qblast_specification,
}


def _resolve_spec(name_or_path: str) -> Specification:
    """A built-in specification name, a JSON file, or ``synthetic:<size>``."""
    if name_or_path in _BUILTIN_SPECS:
        return _BUILTIN_SPECS[name_or_path]()
    if name_or_path.startswith("synthetic:"):
        size = int(name_or_path.split(":", 1)[1])
        return generate_synthetic_specification(size)
    path = Path(name_or_path)
    if path.exists():
        return load_specification(path)
    raise SystemExit(
        f"unknown specification {name_or_path!r}; use one of {sorted(_BUILTIN_SPECS)}, "
        "'synthetic:<size>', or a path to a specification JSON file"
    )


def _cmd_spec(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.spec)
    print(spec.describe())
    if args.output:
        save_specification(spec, args.output)
        print(f"written to {args.output}")
    return 0


def _cmd_derive(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.spec)
    engine = ProvenanceQueryEngine(spec)
    run = engine.derive(seed=args.seed, target_edges=args.edges)
    print(run.describe())
    if args.output:
        save_run(run, args.output)
        print(f"written to {args.output}")
    return 0


def _cmd_safety(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.spec)
    engine = ProvenanceQueryEngine(spec)
    report = engine.safety_report(args.query)
    if report.is_safe:
        print(f"SAFE: {args.query!r} is safe for {spec.name!r}")
        return 0
    modules = sorted({violation.module for violation in report.violations})
    print(f"UNSAFE: {args.query!r} is not safe for {spec.name!r}")
    print(f"  modules with execution-dependent behaviour: {modules}")
    plan = engine.plan(args.query)
    print(f"  {plan.describe()}")
    return 1


def _cmd_query(args: argparse.Namespace) -> int:
    if (args.source is None) != (args.target is None):
        given, missing = ("--source", "--target") if args.target is None else ("--target", "--source")
        raise SystemExit(
            f"repro query: {given} also needs {missing} (a pairwise query names both "
            "endpoints; use --sources/--targets for one-sided all-pairs lists)"
        )
    run = load_run(args.run)
    engine = ProvenanceQueryEngine(run.spec)
    if args.source is not None:
        if args.stream:
            raise SystemExit(
                "repro query: --stream only applies to all-pairs queries, not "
                "--source/--target pairwise queries"
            )
        answer = (
            engine.pairwise(run, args.source, args.target, args.query)
            if engine.is_safe(args.query)
            else (args.source, args.target) in engine.evaluate(
                run, args.query, [args.source], [args.target]
            )
        )
        print(f"{args.source} -[{args.query}]-> {args.target} : {answer}")
        return 0
    l1 = args.sources.split(",") if args.sources else None
    l2 = args.targets.split(",") if args.targets else None
    if args.stream:
        # Pairs go to stdout as the evaluator finds them (unsorted); the
        # count goes to stderr so piped output stays pure.
        count = 0
        for source, target in engine.evaluate_iter(run, args.query, l1, l2):
            print(
                json.dumps([source, target]) if args.json else f"{source} -> {target}",
                flush=True,
            )
            count += 1
        print(f"{count} matching pairs", file=sys.stderr)
        return 0
    matches = engine.evaluate(run, args.query, l1, l2, strategy=args.strategy)
    if args.json:
        print(json.dumps(sorted(matches)))
    else:
        print(f"{len(matches)} matching pairs")
        for source, target in sorted(matches)[: args.limit]:
            print(f"  {source} -> {target}")
        if len(matches) > args.limit:
            print(f"  ... ({len(matches) - args.limit} more; use --json for all)")
    return 0


def _parse_run_entry(entry: str) -> tuple[str | None, str]:
    """Split one ``--run [ID=]PATH`` flag into ``(run id, path)``.

    A bare path wins even when the file name itself contains ``=``
    (``runs/a=b.json`` is a path, not id ``runs/a`` + file ``b.json``);
    otherwise everything before the *first* ``=`` is the id, so an explicit
    id still composes with ``=`` in the file name (``mine=runs/a=b.json``).
    """
    if "=" not in entry or Path(entry).exists():
        return None, entry
    run_id, _, path = entry.partition("=")
    return run_id or None, path


def _cmd_batch(args: argparse.Namespace) -> int:
    if not args.run:
        raise SystemExit("repro batch needs at least one --run RUN.json to query against")
    service = QueryService(
        cache=IndexCache(max_entries=args.cache_entries), max_workers=args.workers
    )
    for entry in args.run:
        run_id, path = _parse_run_entry(entry)
        service.load_run_file(path, run_id=run_id)

    # Both sources hand raw lines (trailing newlines and all) to
    # read_requests_jsonl, which normalizes whitespace and skips blanks —
    # stdin and file input see identical parsing, and files stream instead
    # of being read whole.
    request_source = sys.stdin if args.requests == "-" else Path(args.requests).open()
    requests = read_requests_jsonl(request_source)

    output = open(args.output, "w") if args.output else sys.stdout
    ok_count = failed = 0
    try:
        for result in service.iter_batch(requests):
            print(json.dumps(result_to_dict(result)), file=output, flush=True)
            if result.ok:
                ok_count += 1
            else:
                failed += 1
    finally:
        if args.output:
            output.close()
        if request_source is not sys.stdin:
            request_source.close()
    stats = service.cache_stats
    print(
        f"repro batch: {ok_count + failed} requests ({failed} failed), "
        f"{stats.index_builds} index builds, cache hit rate {stats.hit_rate:.1%}",
        file=sys.stderr,
    )
    return 0 if failed == 0 else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.__main__ import main as bench_main

    forwarded = list(args.experiments)
    if args.scale:
        forwarded += ["--scale", args.scale]
    return bench_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regular path queries on workflow provenance (ICDE 2015 reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    spec_parser = sub.add_parser("spec", help="inspect a specification")
    spec_parser.add_argument("spec", help="built-in name, synthetic:<size>, or JSON path")
    spec_parser.add_argument("--output", help="write the specification to a JSON file")
    spec_parser.set_defaults(handler=_cmd_spec)

    derive_parser = sub.add_parser("derive", help="derive a labeled run")
    derive_parser.add_argument("spec")
    derive_parser.add_argument("--edges", type=int, default=1000, help="target edge count")
    derive_parser.add_argument("--seed", type=int, default=0)
    derive_parser.add_argument("--output", help="write the run to a JSON file")
    derive_parser.set_defaults(handler=_cmd_derive)

    safety_parser = sub.add_parser("safety", help="check query safety")
    safety_parser.add_argument("spec")
    safety_parser.add_argument("query")
    safety_parser.set_defaults(handler=_cmd_safety)

    query_parser = sub.add_parser("query", help="answer a query over a stored run")
    query_parser.add_argument("run", help="path to a run JSON file (see 'repro derive')")
    query_parser.add_argument("query")
    query_parser.add_argument("--source", help="pairwise query: source node id")
    query_parser.add_argument("--target", help="pairwise query: target node id")
    query_parser.add_argument("--sources", help="all-pairs: comma-separated source ids")
    query_parser.add_argument("--targets", help="all-pairs: comma-separated target ids")
    query_parser.add_argument("--limit", type=int, default=20, help="pairs to print")
    query_parser.add_argument("--json", action="store_true", help="print all pairs as JSON")
    query_parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "all-pairs only: print pairs as they are found (one per line, "
            "unsorted, no limit) instead of materializing the result set; "
            "unsafe queries stream too, with memory bounded by the region "
            "reachable from --sources rather than by the run"
        ),
    )
    query_parser.add_argument(
        "--strategy",
        choices=["auto", "frontier", "join"],
        default="auto",
        help=(
            "unsafe-remainder evaluation strategy for non-streamed all-pairs "
            "queries: per-source frontier search, join-based relations, or "
            "cost-based choice (default)"
        ),
    )
    query_parser.set_defaults(handler=_cmd_query)

    batch_parser = sub.add_parser(
        "batch",
        help="evaluate a JSONL batch of queries through the shared-cache service",
        description=(
            "Read one JSON request per line (op/run/query/source/target fields; "
            "see repro.service.requests) and stream one JSON result per line, "
            "in request order.  Runs are registered with --run; requests refer "
            "to them by id (default: the file stem)."
        ),
    )
    batch_parser.add_argument("requests", help="JSONL request file, or '-' for stdin")
    batch_parser.add_argument(
        "--run",
        action="append",
        default=[],
        metavar="[ID=]PATH",
        help=(
            "register a run JSON file under ID (repeatable; default ID is the "
            "file stem, and an existing path containing '=' is taken as-is)"
        ),
    )
    batch_parser.add_argument("--output", help="write JSONL results here instead of stdout")
    batch_parser.add_argument(
        "--workers", type=int, default=None, help="evaluation thread count"
    )
    batch_parser.add_argument(
        "--cache-entries", type=int, default=512, help="index cache entry bound"
    )
    batch_parser.set_defaults(handler=_cmd_batch)

    bench_parser = sub.add_parser("bench", help="run the paper's experiments")
    bench_parser.add_argument("experiments", nargs="*", default=["all"])
    bench_parser.add_argument("--scale", choices=["small", "paper"])
    bench_parser.set_defaults(handler=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError, ValueError) as error:
        # ValueError covers json.JSONDecodeError plus bad CLI values that
        # surface from the library (duplicate run ids, zero workers, ...).
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
