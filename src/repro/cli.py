"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands cover the typical workflow of the library:

* ``repro spec``      — inspect a built-in or stored specification,
* ``repro derive``    — derive a labeled run and store it as JSON,
* ``repro safety``    — check whether a query is safe for a specification,
* ``repro query``     — answer a pairwise or all-pairs query over a stored run,
* ``repro batch``     — stream a JSONL batch of queries through the query service,
* ``repro trace``     — evaluate a query under the tracer and write a Chrome
  trace-event JSON (loads in Perfetto / ``chrome://tracing``),
* ``repro metrics``   — print the metrics registry in Prometheus text
  exposition format, optionally after replaying a JSONL batch,
* ``repro store``     — manage a persistent index store (build/warm/ls/stats/gc),
* ``repro cache``     — inspect a warmed service's cache/store statistics,
* ``repro bench``     — benchmark scenarios and trajectory gating (``run`` /
  ``gate`` / ``check`` / ``list`` / ``figures``; same as ``python -m repro.bench``),
* ``repro lint``      — the project's own static-analysis rules
  (:mod:`repro.analysis`), with ``--json`` output and a committed baseline,
* ``repro analyze``   — the whole-program semantic model behind the lint
  rules (``call-graph`` / ``lock-graph`` / ``effects``), with ``--json``
  and Graphviz ``--dot`` output.

Library errors (unsafe queries, malformed regexes, broken input files) exit
non-zero with a one-line ``repro: error: ...`` message instead of a
traceback, so the CLI composes cleanly in shell pipelines and CI.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro import __version__
from repro.core.engine import ProvenanceQueryEngine
from repro.datasets.myexperiment import bioaid_specification, qblast_specification
from repro.datasets.paper_example import paper_specification
from repro.datasets.synthetic import generate_synthetic_specification
from repro.errors import ReproError
from repro.obs import (
    NULL_TRACER,
    ExecutionProfile,
    Tracer,
    chrome_trace,
    get_registry,
    prometheus_text,
    use_tracer,
)
from repro.service import IndexCache, QueryService, read_requests_jsonl, result_to_dict
from repro.store import IndexStore
from repro.workflow.run import Run
from repro.workflow.serialization import (
    load_run,
    load_specification,
    save_run,
    save_specification,
)
from repro.workflow.spec import Specification

__all__ = ["main"]

_BUILTIN_SPECS = {
    "paper-example": paper_specification,
    "bioaid": bioaid_specification,
    "qblast": qblast_specification,
}


def _resolve_spec(name_or_path: str) -> Specification:
    """A built-in specification name, a JSON file, or ``synthetic:<size>``."""
    if name_or_path in _BUILTIN_SPECS:
        return _BUILTIN_SPECS[name_or_path]()
    if name_or_path.startswith("synthetic:"):
        size = int(name_or_path.split(":", 1)[1])
        return generate_synthetic_specification(size)
    path = Path(name_or_path)
    if path.exists():
        return load_specification(path)
    raise SystemExit(
        f"unknown specification {name_or_path!r}; use one of {sorted(_BUILTIN_SPECS)}, "
        "'synthetic:<size>', or a path to a specification JSON file"
    )


def _cmd_spec(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.spec)
    print(spec.describe())
    if args.output:
        save_specification(spec, args.output)
        print(f"written to {args.output}")
    return 0


def _cmd_derive(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.spec)
    engine = ProvenanceQueryEngine(spec)
    run = engine.derive(seed=args.seed, target_edges=args.edges)
    print(run.describe())
    if args.output:
        save_run(run, args.output)
        print(f"written to {args.output}")
    return 0


def _cmd_safety(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.spec)
    engine = ProvenanceQueryEngine(spec)
    report = engine.safety_report(args.query)
    if report.is_safe:
        print(f"SAFE: {args.query!r} is safe for {spec.name!r}")
        return 0
    modules = sorted({violation.module for violation in report.violations})
    print(f"UNSAFE: {args.query!r} is not safe for {spec.name!r}")
    print(f"  modules with execution-dependent behaviour: {modules}")
    plan = engine.plan(args.query)
    print(f"  {plan.describe()}")
    return 1


def _cmd_query(args: argparse.Namespace) -> int:
    if (args.source is None) != (args.target is None):
        given, missing = ("--source", "--target") if args.target is None else ("--target", "--source")
        raise SystemExit(
            f"repro query: {given} also needs {missing} (a pairwise query names both "
            "endpoints; use --sources/--targets for one-sided all-pairs lists)"
        )
    run = load_run(args.run)
    engine = ProvenanceQueryEngine(run.spec)
    observing = bool(args.profile or args.trace_json or args.save_profile)
    if not observing:
        return _evaluate_query(args, run, engine)
    tracer = Tracer()
    with use_tracer(tracer):
        code = _evaluate_query(args, run, engine)
    _emit_query_observability(args, tracer, run_id=Path(args.run).stem)
    return code


def _emit_query_observability(
    args: argparse.Namespace, tracer: Tracer, *, run_id: str
) -> None:
    """Profile/trace output for ``repro query``; everything human-oriented
    goes to stderr so piped pair output stays pure."""
    spans = tracer.spans()
    if args.trace_json:
        document = chrome_trace(spans, process_name=f"repro query {run_id}")
        Path(args.trace_json).write_text(json.dumps(document) + "\n")
        print(f"trace: {len(spans)} spans -> {args.trace_json}", file=sys.stderr)
    if args.profile or args.save_profile:
        profile = ExecutionProfile.from_spans(
            spans, query=args.query, run=run_id, meta={"command": "query"}
        )
        if args.profile:
            print(profile.render(), file=sys.stderr)
        if args.save_profile:
            store = IndexStore(args.save_profile)
            store.save_profile(profile)
            print(f"profile saved to store {args.save_profile}", file=sys.stderr)


def _evaluate_query(
    args: argparse.Namespace, run: Run, engine: ProvenanceQueryEngine
) -> int:
    if args.source is not None:
        if args.stream:
            raise SystemExit(
                "repro query: --stream only applies to all-pairs queries, not "
                "--source/--target pairwise queries"
            )
        answer = (
            engine.pairwise(run, args.source, args.target, args.query)
            if engine.is_safe(args.query)
            else (args.source, args.target) in engine.evaluate(
                run, args.query, [args.source], [args.target]
            )
        )
        print(f"{args.source} -[{args.query}]-> {args.target} : {answer}")
        return 0
    l1 = args.sources.split(",") if args.sources else None
    l2 = args.targets.split(",") if args.targets else None
    from repro.core.exec import ExecutorConfig

    executor = ExecutorConfig(
        direction=args.direction, workers=args.workers, kernel=args.kernel
    )
    if args.stream:
        # Pairs go to stdout as the evaluator finds them (unsorted); the
        # count goes to stderr so piped output stays pure.
        count = 0
        for source, target in engine.evaluate_iter(
            run, args.query, l1, l2, executor=executor
        ):
            print(
                json.dumps([source, target]) if args.json else f"{source} -> {target}",
                flush=True,
            )
            count += 1
        print(f"{count} matching pairs", file=sys.stderr)
        return 0
    matches = engine.evaluate(
        run, args.query, l1, l2, strategy=args.strategy, executor=executor
    )
    if args.json:
        print(json.dumps(sorted(matches)))
    else:
        print(f"{len(matches)} matching pairs")
        for source, target in sorted(matches)[: args.limit]:
            print(f"  {source} -> {target}")
        if len(matches) > args.limit:
            print(f"  ... ({len(matches) - args.limit} more; use --json for all)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    run = load_run(args.run)
    engine = ProvenanceQueryEngine(run.spec)
    l1 = args.sources.split(",") if args.sources else None
    l2 = args.targets.split(",") if args.targets else None
    from repro.core.exec import ExecutorConfig

    executor = ExecutorConfig(
        direction=args.direction, workers=args.workers, kernel=args.kernel
    )
    tracer = Tracer()
    with use_tracer(tracer):
        matches = engine.evaluate(run, args.query, l1, l2, executor=executor)
    spans = tracer.spans()
    document = chrome_trace(
        spans, process_name=f"repro trace {Path(args.run).stem}"
    )
    text = json.dumps(document)
    if args.output == "-":
        print(text)
    else:
        Path(args.output).write_text(text + "\n")
    print(
        f"repro trace: {len(matches)} matching pairs, {len(spans)} spans"
        + ("" if args.output == "-" else f" -> {args.output}"),
        file=sys.stderr,
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.requests:
        service = QueryService(
            cache=IndexCache(max_entries=args.cache_entries, store=None),
            store_dir=args.store,
        )
        _register_cli_runs(service, args.run)
        if not service.run_ids():
            raise SystemExit(
                "repro metrics --requests needs at least one run (--run RUN.json, "
                "or --store pointing at a store with a persisted run registry)"
            )
        request_source = (
            sys.stdin if args.requests == "-" else Path(args.requests).open()
        )
        # --trace swaps in a recording tracer so span counters tick too;
        # installing the null tracer otherwise is a no-op re-install.
        tracer = Tracer() if args.trace else NULL_TRACER
        try:
            with use_tracer(tracer):
                for _ in service.iter_batch(read_requests_jsonl(request_source)):
                    pass
        finally:
            if request_source is not sys.stdin:
                request_source.close()
    print(prometheus_text(get_registry()), end="")
    return 0


def _parse_run_entry(entry: str) -> tuple[str | None, str]:
    """Split one ``--run [ID=]PATH`` flag into ``(run id, path)``.

    A bare path wins even when the file name itself contains ``=``
    (``runs/a=b.json`` is a path, not id ``runs/a`` + file ``b.json``);
    otherwise everything before the *first* ``=`` is the id, so an explicit
    id still composes with ``=`` in the file name (``mine=runs/a=b.json``).
    """
    if "=" not in entry or Path(entry).exists():
        return None, entry
    run_id, _, path = entry.partition("=")
    return run_id or None, path


def _register_cli_runs(service: QueryService, entries: list[str]) -> None:
    for entry in entries:
        run_id, path = _parse_run_entry(entry)
        service.load_run_file(path, run_id=run_id)


def _cmd_batch(args: argparse.Namespace) -> int:
    service = QueryService(
        cache=IndexCache(max_entries=args.cache_entries, store=None),
        max_workers=args.workers,
        store_dir=args.store,
    )
    _register_cli_runs(service, args.run)
    if not service.run_ids():
        raise SystemExit(
            "repro batch needs at least one run: pass --run RUN.json, or --store "
            "pointing at a store with a persisted run registry"
        )

    # Both sources hand raw lines (trailing newlines and all) to
    # read_requests_jsonl, which normalizes whitespace and skips blanks —
    # stdin and file input see identical parsing, and files stream instead
    # of being read whole.
    request_source = sys.stdin if args.requests == "-" else Path(args.requests).open()
    requests = read_requests_jsonl(request_source)

    output = open(args.output, "w") if args.output else sys.stdout
    ok_count = failed = 0
    try:
        for result in service.iter_batch(requests):
            print(json.dumps(result_to_dict(result)), file=output, flush=True)
            if result.ok:
                ok_count += 1
            else:
                failed += 1
    finally:
        if args.output:
            output.close()
        if request_source is not sys.stdin:
            request_source.close()
    stats = service.cache_stats
    print(
        f"repro batch: {ok_count + failed} requests ({failed} failed), "
        f"{stats.index_builds} index builds, cache hit rate {stats.hit_rate:.1%}",
        file=sys.stderr,
    )
    if args.stats_json:
        # A machine-readable run summary, so CI and scripts assert on fields
        # (e.g. index_builds == 0 after a warm restart) instead of grepping
        # the human-oriented stderr line.
        summary = dataclasses.asdict(stats)
        summary.update(
            requests=ok_count + failed,
            ok=ok_count,
            failed=failed,
            hit_rate=stats.hit_rate,
        )
        # The registry snapshot rides along under its own key: process-wide
        # counters (cache hits/misses, store reads/writes, spans recorded)
        # plus live collector samples, without disturbing the flat
        # CacheStats schema scripts already assert on.
        summary["metrics"] = get_registry().snapshot()
        Path(args.stats_json).write_text(json.dumps(summary, sort_keys=True) + "\n")
    return 0 if failed == 0 else 1


def _cmd_store_build(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.spec)
    store = IndexStore(args.dir)
    cache = IndexCache(store=store)
    for query in args.queries:
        try:
            if cache.safety(spec, query).is_safe:
                cache.index(spec, query)
                status = "safe: index stored"
            else:
                cache.plan(spec, query)
                status = "unsafe: safety verdict and plan stored"
        except ReproError as error:
            status = f"error: {error}"
        print(f"  {query} -> {status}")
    print(store.describe())
    return 0


def _cmd_store_warm(args: argparse.Namespace) -> int:
    service = QueryService(store_dir=args.dir)
    _register_cli_runs(service, args.run)
    run_ids = service.run_ids()
    if not run_ids:
        raise SystemExit(
            "repro store warm needs at least one run (--run RUN.json, or a store "
            "with a persisted run registry)"
        )
    for run_id in run_ids:
        print(f"run {run_id}:")
        try:
            statuses = service.warm(run_id, args.queries)
        except KeyError:
            print("  (skipped: persisted run artifact is unreadable)")
            continue
        for query, status in statuses.items():
            print(f"  {query} -> {status}")
    print(service.cache.describe())
    print(service.store.describe())
    return 0


def _existing_store(path: str) -> IndexStore:
    """A store for read-only commands: a missing directory is a user error
    (likely a typo), not a cue to create an empty store."""
    if not Path(path).is_dir():
        raise SystemExit(f"no store directory at {path!r}")
    return IndexStore(path)


def _cmd_store_ls(args: argparse.Namespace) -> int:
    store = _existing_store(args.dir)
    entries = store.entries()
    for info in entries:
        kind = "safe  " if info.is_safe else "unsafe"
        plan = "+plan" if info.has_plan else "     "
        print(f"{info.fingerprint[:12]}  {kind} {plan} {info.bytes:>8}B  {info.query}")
    run_ids = store.run_ids()
    print(f"{len(entries)} entries, {len(run_ids)} runs" + (f": {run_ids}" if run_ids else ""))
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    store = _existing_store(args.dir)
    entries = store.entries()
    fingerprints: dict[str, int] = {}
    safe = plans = 0
    for info in entries:
        fingerprints[info.fingerprint] = fingerprints.get(info.fingerprint, 0) + 1
        safe += info.is_safe
        plans += info.has_plan
    print(f"store         : {store.root}")
    print(f"entries       : {len(entries)} ({safe} safe, {len(entries) - safe} unsafe, {plans} with plans)")
    print(f"entry bytes   : {store.total_bytes()}")
    print(f"runs          : {len(store.run_ids())}")
    print(f"grammars      : {len(fingerprints)}")
    for fingerprint, count in sorted(fingerprints.items()):
        print(f"  {fingerprint[:16]}...: {count} entries")
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = _existing_store(args.dir)
    if args.max_bytes is None and not args.orphans:
        raise SystemExit(
            "repro store gc needs --max-bytes (size-budgeted LRU sweep), "
            "--orphans (drop entries of unregistered grammars), or both"
        )
    if args.orphans:
        result = store.gc_orphans()
        print(
            f"orphans: removed {result.removed} entries ({result.freed_bytes} bytes); "
            f"{result.remaining_bytes} bytes remain"
        )
    if args.max_bytes is not None:
        result = store.gc(args.max_bytes)
        print(
            f"lru: removed {result.removed} entries ({result.freed_bytes} bytes); "
            f"{result.remaining_bytes} bytes remain"
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    service = QueryService(store_dir=args.store)
    _register_cli_runs(service, args.run)
    if args.warm:
        run_ids = service.run_ids()
        if not run_ids:
            raise SystemExit("repro cache --warm needs at least one registered run")
        for run_id in run_ids:
            try:
                service.warm(run_id, args.warm)
            except KeyError:
                continue  # unreadable persisted run: nothing to warm against
    stats = service.cache_stats
    if args.json:
        record = dataclasses.asdict(stats)
        record["hit_rate"] = stats.hit_rate
        print(json.dumps(record, sort_keys=True))
        return 0
    print(service.describe())
    print(service.cache.describe())
    if service.store is not None:
        print(service.store.describe())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(list(args.args))


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import all_rules, analyze_paths
    from repro.analysis.baseline import Baseline

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0
    if args.select:
        wanted = {token.strip() for token in args.select.split(",") if token.strip()}
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        rules = [rule for rule in rules if rule.id in wanted]
    paths = [Path(p) for p in args.paths] if args.paths else [Path("src/repro")]
    cache = Path(args.semantic_cache) if args.semantic_cache else None
    result = analyze_paths(
        paths, root=Path.cwd(), rules=rules, semantic_cache=cache
    )
    findings = result.findings
    baseline_path = Path(args.baseline)
    if args.update_baseline:
        Baseline.from_findings(findings).dump(baseline_path)
        print(f"wrote baseline with {len(findings)} finding(s) to {baseline_path}")
        return 0
    delta = Baseline.load(baseline_path).apply(findings)
    if args.json:
        status = {id(f): "new" for f in delta.new}
        payload = {
            "version": 1,
            "rules": [rule.id for rule in rules],
            "summary": {
                "total": len(findings),
                "new": len(delta.new),
                "suppressed": len(delta.suppressed),
                "stale": len(delta.stale),
            },
            "findings": [
                {**f.to_dict(), "status": status.get(id(f), "baselined")}
                for f in findings
            ],
            "stale": sorted(delta.stale),
        }
        if args.statistics:
            payload["statistics"] = result.statistics.to_payload()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in delta.new:
            print(finding.describe())
        parts = [f"{len(findings)} finding(s)", f"{len(delta.new)} new"]
        if delta.suppressed:
            parts.append(f"{len(delta.suppressed)} baselined")
        if delta.stale:
            parts.append(
                f"{len(delta.stale)} stale baseline entr(y/ies) — "
                "run 'repro lint --update-baseline' to tighten"
            )
        print("; ".join(parts))
        if args.statistics:
            stats = result.statistics
            print(
                f"analyzed {stats.modules} module(s), {stats.functions} "
                f"function(s), {stats.call_edges} call edge(s) "
                f"({stats.unresolved_calls}/{stats.total_calls} calls unresolved)"
            )
            print(
                f"locks: {stats.locks}, lock-order edges: "
                f"{stats.lock_order_edges}, cycles: {stats.lock_cycles}"
            )
            per_rule = ", ".join(
                f"{rule_id}={count}"
                for rule_id, count in sorted(stats.rule_findings.items())
            )
            print(f"findings by rule: {per_rule}")
    return 1 if delta.new else 0


def _analyze_call_graph(args: argparse.Namespace, model: object) -> int:
    from repro.analysis.semantic import SemanticModel

    assert isinstance(model, SemanticModel)
    graph = model.graph
    if args.json:
        payload = {
            "version": 1,
            "functions": [
                {
                    "qualified": info.qualified,
                    "module": info.module,
                    "line": info.lineno,
                    "contextmanager": info.is_contextmanager,
                    "holds_locks": sorted(info.holds_locks),
                    "acquires_locks": sorted(info.acquires_locks),
                }
                for _, info in sorted(graph.functions.items())
            ],
            "calls": [
                {
                    "caller": site.caller,
                    "callee": site.callee,
                    "line": site.line,
                    "held": sorted(site.held),
                }
                for site in sorted(
                    graph.calls, key=lambda s: (s.caller, s.callee, s.line)
                )
            ],
            "summary": {
                "modules": graph.modules,
                "functions": len(graph.functions),
                "call_edges": len(graph.calls),
                "total_calls": graph.total_calls,
                "unresolved_calls": graph.unresolved_calls,
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.dot:
        print("digraph callgraph {")
        print("  rankdir=LR;")
        edges = sorted({(site.caller, site.callee) for site in graph.calls})
        for caller, callee in edges:
            print(f'  "{caller}" -> "{callee}";')
        print("}")
    else:
        print(
            f"{graph.modules} module(s), {len(graph.functions)} "
            f"function(s), {len(graph.calls)} call edge(s) "
            f"({graph.unresolved_calls}/{graph.total_calls} calls unresolved)"
        )
        annotated = [
            info
            for _, info in sorted(graph.functions.items())
            if info.holds_locks or info.acquires_locks
        ]
        for info in annotated:
            notes: list[str] = []
            if info.holds_locks:
                notes.append(f"holds-lock: {', '.join(sorted(info.holds_locks))}")
            if info.acquires_locks:
                notes.append(
                    f"acquires-lock: {', '.join(sorted(info.acquires_locks))}"
                )
            print(f"  {info.qualified}  ({'; '.join(notes)})")
    return 0


def _analyze_lock_graph(args: argparse.Namespace, model: object) -> int:
    from repro.analysis.semantic import SemanticModel

    assert isinstance(model, SemanticModel)
    lock_graph = model.lock_graph
    if args.json:
        payload = {
            "version": 1,
            "locks": {
                name: model.graph.lock_kinds.get(name, "lock")
                for name in sorted(lock_graph.locks)
            },
            "edges": [
                {
                    "source": edge.source,
                    "target": edge.target,
                    "function": edge.function,
                    "line": edge.line,
                    "witness": edge.witness,
                }
                for edge in lock_graph.edges
            ],
            "cycles": [list(cycle) for cycle in lock_graph.cycles],
            "acyclic": lock_graph.acyclic,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.dot:
        print("digraph lockorder {")
        print("  rankdir=LR;")
        cyclic = {name for cycle in lock_graph.cycles for name in cycle}
        for name in sorted(lock_graph.locks):
            color = ' color="red"' if name in cyclic else ""
            kind = model.graph.lock_kinds.get(name, "lock")
            print(f'  "{name}" [label="{name}\\n({kind})"{color}];')
        for edge in lock_graph.edges:
            print(f'  "{edge.source}" -> "{edge.target}";')
        print("}")
    else:
        print(
            f"{len(lock_graph.locks)} lock(s), {len(lock_graph.edges)} "
            f"order edge(s), {len(lock_graph.cycles)} cycle(s)"
        )
        for edge in lock_graph.edges:
            print(f"  {edge.source} -> {edge.target}  [{edge.witness}]")
        for cycle in lock_graph.cycles:
            print(f"  CYCLE: {' -> '.join(cycle)} -> {cycle[0]}")
    return 0 if lock_graph.acyclic else 1


def _analyze_effects(args: argparse.Namespace, model: object) -> int:
    from repro.analysis.semantic import SemanticModel

    assert isinstance(model, SemanticModel)
    impure = {
        qualified: sorted(effects)
        for qualified, effects in sorted(model.effects.items())
        if effects
    }
    if args.json:
        counts: dict[str, int] = {}
        for effects in impure.values():
            for effect in effects:
                counts[effect] = counts.get(effect, 0) + 1
        payload = {
            "version": 1,
            "functions": impure,
            "summary": {
                "total_functions": len(model.effects),
                "impure_functions": len(impure),
                "by_effect": counts,
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"{len(impure)} of {len(model.effects)} function(s) reach an "
            "impure effect"
        )
        for qualified, effects in impure.items():
            print(f"  {qualified}: {', '.join(effects)}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_paths

    paths = [Path(p) for p in args.paths] if args.paths else [Path("src/repro")]
    cache = Path(args.semantic_cache) if args.semantic_cache else None
    result = analyze_paths(
        paths,
        root=Path.cwd(),
        rules=[],
        semantic_cache=cache,
        want_model=True,
    )
    handlers = {
        "call-graph": _analyze_call_graph,
        "lock-graph": _analyze_lock_graph,
        "effects": _analyze_effects,
    }
    return handlers[args.view](args, result.model)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regular path queries on workflow provenance (ICDE 2015 reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    spec_parser = sub.add_parser("spec", help="inspect a specification")
    spec_parser.add_argument("spec", help="built-in name, synthetic:<size>, or JSON path")
    spec_parser.add_argument("--output", help="write the specification to a JSON file")
    spec_parser.set_defaults(handler=_cmd_spec)

    derive_parser = sub.add_parser("derive", help="derive a labeled run")
    derive_parser.add_argument("spec")
    derive_parser.add_argument("--edges", type=int, default=1000, help="target edge count")
    derive_parser.add_argument("--seed", type=int, default=0)
    derive_parser.add_argument("--output", help="write the run to a JSON file")
    derive_parser.set_defaults(handler=_cmd_derive)

    safety_parser = sub.add_parser("safety", help="check query safety")
    safety_parser.add_argument("spec")
    safety_parser.add_argument("query")
    safety_parser.set_defaults(handler=_cmd_safety)

    query_parser = sub.add_parser("query", help="answer a query over a stored run")
    query_parser.add_argument("run", help="path to a run JSON file (see 'repro derive')")
    query_parser.add_argument("query")
    query_parser.add_argument("--source", help="pairwise query: source node id")
    query_parser.add_argument("--target", help="pairwise query: target node id")
    query_parser.add_argument("--sources", help="all-pairs: comma-separated source ids")
    query_parser.add_argument("--targets", help="all-pairs: comma-separated target ids")
    query_parser.add_argument("--limit", type=int, default=20, help="pairs to print")
    query_parser.add_argument("--json", action="store_true", help="print all pairs as JSON")
    query_parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "all-pairs only: print pairs as they are found (one per line, "
            "unsorted, no limit) instead of materializing the result set; "
            "unsafe queries stream too, with memory bounded by the region "
            "reachable from --sources rather than by the run"
        ),
    )
    query_parser.add_argument(
        "--strategy",
        choices=["auto", "frontier", "join"],
        default="auto",
        help=(
            "unsafe-remainder evaluation strategy for non-streamed all-pairs "
            "queries: per-source frontier search, join-based relations, or "
            "cost-based choice (default)"
        ),
    )
    query_parser.add_argument(
        "--direction",
        choices=["auto", "forward", "backward"],
        default="auto",
        help=(
            "frontier search direction for unsafe all-pairs queries: forward "
            "runs one search per requested source, backward runs one per "
            "requested target over the reversed query DFA (wins when "
            "--targets is much smaller than --sources); auto (default) "
            "compares the two seed counts with the cost model"
        ),
    )
    query_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "parallel frontier fan-out for unsafe all-pairs queries: the "
            "per-seed searches are spread over this many workers (process "
            "pool where available); 1 (default) runs serial"
        ),
    )
    query_parser.add_argument(
        "--kernel",
        choices=["auto", "packed", "sets"],
        default="auto",
        help=(
            "relation/search compute kernel: packed runs joins, closures and "
            "frontier searches on uint64-packed bitsets over dense-interned "
            "node ids (process workers attach a shared-memory arena instead "
            "of unpickling adjacency), sets keeps the legacy set-based path "
            "for A/B and fallback; auto (default) honours REPRO_KERNEL and "
            "otherwise picks packed"
        ),
    )
    query_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "record an execution profile: evaluate under the tracer and "
            "print the per-operator span tree (with the coverage line) to "
            "stderr, leaving stdout output unchanged"
        ),
    )
    query_parser.add_argument(
        "--trace-json",
        metavar="PATH",
        help=(
            "record the evaluation's spans and write them as Chrome "
            "trace-event JSON (loads in Perfetto / chrome://tracing)"
        ),
    )
    query_parser.add_argument(
        "--save-profile",
        metavar="STORE_DIR",
        help=(
            "persist the execution profile to this index store directory "
            "(created if missing; see 'repro store')"
        ),
    )
    query_parser.set_defaults(handler=_cmd_query)

    trace_parser = sub.add_parser(
        "trace",
        help="evaluate a query under the tracer and emit Chrome trace JSON",
        description=(
            "Evaluate an all-pairs query with a recording tracer installed "
            "and write the finished spans in Chrome trace-event format; load "
            "the file in Perfetto or chrome://tracing to see the query "
            "lifecycle (planning, frontier searches, decode, cache/store "
            "traffic) on a timeline."
        ),
    )
    trace_parser.add_argument("run", help="path to a run JSON file (see 'repro derive')")
    trace_parser.add_argument("query")
    trace_parser.add_argument("--sources", help="comma-separated source ids")
    trace_parser.add_argument("--targets", help="comma-separated target ids")
    trace_parser.add_argument(
        "--direction", choices=["auto", "forward", "backward"], default="auto"
    )
    trace_parser.add_argument(
        "--workers", type=int, default=1, help="parallel frontier fan-out"
    )
    trace_parser.add_argument(
        "--kernel",
        choices=["auto", "packed", "sets"],
        default="auto",
        help="compute kernel (see 'repro query --kernel')",
    )
    trace_parser.add_argument(
        "--output",
        default="-",
        metavar="PATH",
        help="trace JSON destination (default: stdout)",
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    metrics_parser = sub.add_parser(
        "metrics",
        help="print the metrics registry in Prometheus text format",
        description=(
            "Print every registered counter/gauge/histogram plus live "
            "collector samples in the Prometheus text exposition format. "
            "With --requests, a JSONL batch is replayed through the query "
            "service first so the exposition reflects real traffic."
        ),
    )
    metrics_parser.add_argument(
        "--requests",
        metavar="PATH",
        help="JSONL request file (or '-' for stdin) to replay before reporting",
    )
    metrics_parser.add_argument(
        "--run",
        action="append",
        default=[],
        metavar="[ID=]PATH",
        help="register a run JSON file (repeatable; default ID is the file stem)",
    )
    metrics_parser.add_argument(
        "--store", help="persistent store directory backing the service"
    )
    metrics_parser.add_argument(
        "--cache-entries", type=int, default=512, help="index cache entry bound"
    )
    metrics_parser.add_argument(
        "--trace",
        action="store_true",
        help="install a recording tracer during the replay (span counters tick)",
    )
    metrics_parser.set_defaults(handler=_cmd_metrics)

    batch_parser = sub.add_parser(
        "batch",
        help="evaluate a JSONL batch of queries through the shared-cache service",
        description=(
            "Read one JSON request per line (op/run/query/source/target fields; "
            "see repro.service.requests) and stream one JSON result per line, "
            "in request order.  Runs are registered with --run; requests refer "
            "to them by id (default: the file stem)."
        ),
    )
    batch_parser.add_argument("requests", help="JSONL request file, or '-' for stdin")
    batch_parser.add_argument(
        "--run",
        action="append",
        default=[],
        metavar="[ID=]PATH",
        help=(
            "register a run JSON file under ID (repeatable; default ID is the "
            "file stem, and an existing path containing '=' is taken as-is)"
        ),
    )
    batch_parser.add_argument("--output", help="write JSONL results here instead of stdout")
    batch_parser.add_argument(
        "--workers", type=int, default=None, help="evaluation thread count"
    )
    batch_parser.add_argument(
        "--cache-entries", type=int, default=512, help="index cache entry bound"
    )
    batch_parser.add_argument(
        "--stats-json",
        metavar="PATH",
        help=(
            "write a machine-readable JSON run summary (request/ok/failed "
            "counts plus every cache/store counter) to this file"
        ),
    )
    batch_parser.add_argument(
        "--store",
        help=(
            "persistent index store directory: cached indexes/plans are read "
            "from and written to it, and runs persisted there (see 'repro "
            "store warm') are registered automatically"
        ),
    )
    batch_parser.set_defaults(handler=_cmd_batch)

    store_parser = sub.add_parser(
        "store",
        help="manage a persistent index store (warm service restarts)",
        description=(
            "A store directory holds versioned, checksummed JSON artifacts of "
            "everything the index cache computes (safety reports, query "
            "indexes, decomposition plans with macro DFAs) plus a registry of "
            "labeled runs, keyed by (specification fingerprint, canonical "
            "query).  Services opened with the same store restart warm."
        ),
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)

    store_build = store_sub.add_parser(
        "build", help="build index/plan entries for queries against a specification"
    )
    store_build.add_argument("dir", help="store directory (created if missing)")
    store_build.add_argument("--spec", required=True, help="built-in name, synthetic:<size>, or JSON path")
    store_build.add_argument("queries", nargs="+", metavar="QUERY")
    store_build.set_defaults(handler=_cmd_store_build)

    store_warm = store_sub.add_parser(
        "warm",
        help=(
            "register runs and warm queries through a store-backed service "
            "(persists runs, indexes, plans and routed subquery indexes)"
        ),
    )
    store_warm.add_argument("dir", help="store directory (created if missing)")
    store_warm.add_argument(
        "--run",
        action="append",
        default=[],
        metavar="[ID=]PATH",
        help="register a run JSON file (repeatable; default ID is the file stem)",
    )
    store_warm.add_argument("queries", nargs="+", metavar="QUERY")
    store_warm.set_defaults(handler=_cmd_store_warm)

    store_ls = store_sub.add_parser("ls", help="list stored entries and runs")
    store_ls.add_argument("dir")
    store_ls.set_defaults(handler=_cmd_store_ls)

    store_stats = store_sub.add_parser("stats", help="summarize a store directory")
    store_stats.add_argument("dir")
    store_stats.set_defaults(handler=_cmd_store_stats)

    store_gc = store_sub.add_parser(
        "gc",
        help=(
            "reclaim entries: LRU down to a size budget and/or drop entries "
            "of grammars with no registered run"
        ),
    )
    store_gc.add_argument("dir")
    store_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="entry-tier size budget (LRU sweep); runs are never evicted",
    )
    store_gc.add_argument(
        "--orphans",
        action="store_true",
        help=(
            "drop entries whose specification fingerprint matches no run in "
            "the store's registry (note: a store used only via 'repro store "
            "build', with no registered runs, is all orphans by definition)"
        ),
    )
    store_gc.set_defaults(handler=_cmd_store_gc)

    cache_parser = sub.add_parser(
        "cache",
        help="inspect cache/store statistics of a (optionally warmed) service",
        description=(
            "Build a query service, optionally register runs and warm queries, "
            "then print IndexCache/CacheStats counters (hit rates, builds, "
            "store hits) so operators can inspect cache effectiveness without "
            "writing Python."
        ),
    )
    cache_parser.add_argument(
        "--run",
        action="append",
        default=[],
        metavar="[ID=]PATH",
        help="register a run JSON file (repeatable; default ID is the file stem)",
    )
    cache_parser.add_argument(
        "--store", help="persistent store directory backing the service"
    )
    cache_parser.add_argument(
        "--warm",
        action="append",
        default=[],
        metavar="QUERY",
        help="warm this query on every registered run before reporting (repeatable)",
    )
    cache_parser.add_argument(
        "--json", action="store_true", help="print the statistics as one JSON object"
    )
    cache_parser.set_defaults(handler=_cmd_cache)

    bench_parser = sub.add_parser(
        "bench",
        help="benchmark scenarios, trajectory gating, and the paper's figures",
        description=(
            "Everything after 'bench' is forwarded to the benchmark front-end: "
            "'run' executes catalog scenarios, 'gate' compares a run against "
            "the stored trajectory, 'check' validates the catalog, 'list' "
            "prints it, 'figures' (or a bare figure name like fig13a) runs "
            "the legacy paper experiments."
        ),
    )
    bench_parser.add_argument("args", nargs=argparse.REMAINDER)
    bench_parser.set_defaults(handler=_cmd_bench)

    lint_parser = sub.add_parser(
        "lint",
        help="run the project's static-analysis rules (repro.analysis)",
        description=(
            "Run the project-specific AST rules (lock discipline, process-pool "
            "picklability, planner determinism, exception discipline, "
            "streaming discipline, operator protocol, typed defs) over the "
            "given paths. Findings already recorded in the baseline file pass; "
            "new findings exit 1."
        ),
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    lint_parser.add_argument(
        "--baseline",
        default="lint-baseline.json",
        help="baseline file of accepted findings (default: lint-baseline.json)",
    )
    lint_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept all current findings",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON output"
    )
    lint_parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.add_argument(
        "--rules",
        dest="list_rules",
        action="store_true",
        help="list the rule catalog and exit",
    )
    lint_parser.add_argument(
        "--statistics",
        action="store_true",
        help="report per-rule finding counts and call/lock-graph totals",
    )
    lint_parser.add_argument(
        "--semantic-cache",
        metavar="PATH",
        help=(
            "digest-keyed semantic-model cache file shared with "
            "'repro analyze' (rebuilt automatically when sources change)"
        ),
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    analyze_parser = sub.add_parser(
        "analyze",
        help="inspect the whole-program semantic model (repro.analysis.semantic)",
        description=(
            "Build (or load from --semantic-cache) the whole-program semantic "
            "model behind REP108/REP109 and print one of its views: the "
            "cross-module call graph, the lock-order graph (exit 1 on a "
            "deadlock cycle), or per-function transitive effects."
        ),
    )
    analyze_parser.add_argument(
        "view",
        choices=("call-graph", "lock-graph", "effects"),
        help="which view of the semantic model to print",
    )
    analyze_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    analyze_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON output"
    )
    analyze_parser.add_argument(
        "--dot",
        action="store_true",
        help="emit a Graphviz digraph (call-graph and lock-graph views)",
    )
    analyze_parser.add_argument(
        "--semantic-cache",
        metavar="PATH",
        help="digest-keyed semantic-model cache file shared with 'repro lint'",
    )
    analyze_parser.set_defaults(handler=_cmd_analyze)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError, ValueError) as error:
        # ValueError covers json.JSONDecodeError plus bad CLI values that
        # surface from the library (duplicate run ids, zero workers, ...).
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
