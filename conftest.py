"""Pytest bootstrap and the ``--repro-sanitize`` plugin.

Makes the ``src`` layout importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` cannot
build editable wheels).  When the package *is* installed the inserted path is
harmless because it points at the same source tree.

``pytest --repro-sanitize`` additionally activates the runtime lockset
sanitizer (:mod:`repro.analysis.runtime`) for the whole session: every
``threading.Lock``/``RLock`` created by ``repro`` code is tracked, writes to
``# guarded-by:`` attributes are checked against the declared lock, and any
violation fails the run.  CI's sanitize arm runs the tier-1 suite under this
flag.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--repro-sanitize",
        action="store_true",
        default=False,
        help=(
            "activate the repro lockset sanitizer: track repro-created locks, "
            "check guarded-attribute writes, fail the run on violations"
        ),
    )


def pytest_configure(config):
    if not config.getoption("--repro-sanitize"):
        return
    from repro.analysis.runtime import get_sanitizer

    sanitizer = get_sanitizer()
    if not sanitizer.active:
        sanitizer.activate()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not config.getoption("--repro-sanitize"):
        return
    from repro.analysis.runtime import get_sanitizer

    sanitizer = get_sanitizer()
    violations = sanitizer.violations
    terminalreporter.section("repro sanitize")
    terminalreporter.write_line(
        f"{len(sanitizer.guarded)} guarded class(es) instrumented, "
        f"{len(violations)} lockset violation(s)"
    )
    for violation in violations:
        terminalreporter.write_line(violation.describe(), red=True)


def pytest_sessionfinish(session, exitstatus):
    config = session.config
    if not config.getoption("--repro-sanitize"):
        return
    from repro.analysis.runtime import get_sanitizer

    if get_sanitizer().violations and session.exitstatus == 0:
        session.exitstatus = 1
