"""Pytest bootstrap.

Makes the ``src`` layout importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` cannot
build editable wheels).  When the package *is* installed the inserted path is
harmless because it points at the same source tree.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
