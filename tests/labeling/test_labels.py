"""Tests for label step types and helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LabelError
from repro.labeling.labels import (
    ProductionStep,
    RecursionStep,
    common_prefix_length,
    ensure_label,
    format_label,
    is_strict_prefix,
    label_sort_key,
    parse_label,
)


def steps():
    production = st.builds(
        ProductionStep, st.integers(0, 20), st.integers(0, 20)
    )
    recursion = st.builds(
        RecursionStep, st.integers(0, 5), st.integers(0, 5), st.integers(0, 50)
    )
    return st.one_of(production, recursion)


labels = st.lists(steps(), max_size=8).map(tuple)


class TestHelpers:
    def test_common_prefix_length(self):
        a = (ProductionStep(0, 1), RecursionStep(0, 0, 0), ProductionStep(1, 0))
        b = (ProductionStep(0, 1), RecursionStep(0, 0, 1), ProductionStep(1, 2))
        assert common_prefix_length(a, b) == 1
        assert common_prefix_length(a, a) == 3
        assert common_prefix_length((), a) == 0

    def test_is_strict_prefix(self):
        a = (ProductionStep(0, 1),)
        b = (ProductionStep(0, 1), ProductionStep(1, 0))
        assert is_strict_prefix(a, b)
        assert not is_strict_prefix(b, a)
        assert not is_strict_prefix(a, a)
        assert is_strict_prefix((), a)

    def test_sort_key_is_deterministic(self):
        entries = [
            (ProductionStep(0, 2),),
            (ProductionStep(0, 1), RecursionStep(0, 0, 3)),
            (RecursionStep(1, 0, 0),),
        ]
        assert sorted(entries, key=label_sort_key) == sorted(entries, key=label_sort_key)

    def test_ensure_label_rejects_foreign_objects(self):
        with pytest.raises(LabelError):
            ensure_label([("not", "a", "step")])

    def test_steps_are_ordered_and_hashable(self):
        assert ProductionStep(0, 1) < ProductionStep(0, 2) < ProductionStep(1, 0)
        assert RecursionStep(0, 0, 1) < RecursionStep(0, 0, 2)
        assert len({ProductionStep(0, 1), ProductionStep(0, 1)}) == 1


class TestTextualForm:
    def test_format(self):
        label = (ProductionStep(0, 1), RecursionStep(0, 0, 2), ProductionStep(2, 1))
        assert format_label(label) == "0.1/r:0.0.2/2.1"

    def test_parse(self):
        assert parse_label("0.1/r:0.0.2/2.1") == (
            ProductionStep(0, 1),
            RecursionStep(0, 0, 2),
            ProductionStep(2, 1),
        )

    def test_empty(self):
        assert format_label(()) == ""
        assert parse_label("") == ()

    def test_malformed_rejected(self):
        with pytest.raises(LabelError):
            parse_label("banana")
        with pytest.raises(LabelError):
            parse_label("1.2.3.4")

    @given(labels)
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, label):
        assert parse_label(format_label(label)) == label
