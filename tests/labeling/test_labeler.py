"""Tests for label assignment: the compressed parse tree of Fig. 7."""

from repro.datasets.paper_example import paper_run, paper_specification
from repro.labeling.labels import ProductionStep as P
from repro.labeling.labels import RecursionStep as R
from repro.labeling.parse_tree import LabelTrie
from repro.labeling.labeler import Labeler


class TestPaperParseTreeLabels:
    """The labels of Fig. 7, shifted to 0-based indices.

    The paper writes, for example, ψV(b:2) = (1,3)(4,1) and
    ψV(a:1) = (1,2)(1,1,1)(2,1); with 0-based production/position/ordinal
    indices these become (0,2)(3,0) and (0,1)(0,0,0)(1,0).
    """

    def test_w1_children(self):
        run = paper_run()
        assert run.label_of("c:1") == (P(0, 0),)
        assert run.label_of("b:1") == (P(0, 3),)

    def test_b_children(self):
        run = paper_run()
        assert run.label_of("b:2") == (P(0, 2), P(3, 0))
        assert run.label_of("b:3") == (P(0, 2), P(3, 1))

    def test_recursion_chain_labels(self):
        run = paper_run()
        assert run.label_of("a:1") == (P(0, 1), R(0, 0, 0), P(1, 0))
        assert run.label_of("d:1") == (P(0, 1), R(0, 0, 0), P(1, 2))
        assert run.label_of("a:2") == (P(0, 1), R(0, 0, 1), P(1, 0))
        assert run.label_of("d:2") == (P(0, 1), R(0, 0, 1), P(1, 2))
        assert run.label_of("e:1") == (P(0, 1), R(0, 0, 2), P(2, 0))
        assert run.label_of("e:2") == (P(0, 1), R(0, 0, 2), P(2, 1))

    def test_labels_are_unique(self):
        run = paper_run(recursion_depth=4)
        labels = [node.label for node in run]
        assert len(labels) == len(set(labels))

    def test_label_depth_is_bounded_by_specification(self):
        # The compressed parse tree has depth bounded by the grammar, not the
        # run: deep recursion does not lengthen labels.
        shallow = paper_run(recursion_depth=1)
        deep = paper_run(recursion_depth=40)
        max_shallow = max(len(node.label) for node in shallow)
        max_deep = max(len(node.label) for node in deep)
        assert max_deep == max_shallow == 3


class TestLabelerRoot:
    def test_non_recursive_start(self):
        labeler = Labeler(paper_specification())
        label, chain = labeler.root()
        assert label == ()
        assert chain is None

    def test_recursive_start_module(self):
        from repro.workflow.simple import chain as chain_body
        from repro.workflow.spec import Production, Specification

        spec = Specification(
            start="S",
            productions=[
                Production("S", chain_body(["x", "S", "y"])),
                Production("S", chain_body(["x", "y"])),
            ],
        )
        labeler = Labeler(spec)
        label, context = labeler.root()
        assert label == (R(0, 0, 0),)
        assert context is not None
        assert context.ordinal == 0


class TestLabelTrie:
    def test_trie_mirrors_the_compressed_parse_tree(self):
        run = paper_run()
        trie = LabelTrie.from_run_nodes(run, run.node_ids())
        assert len(trie) == run.node_count
        # The root has four children: positions 0..3 of W1 (the recursion
        # chain of A hangs under the edge (0, 1)).
        assert len(trie.root.children) == 4
        r_node = trie.root.child(P(0, 1))
        assert r_node is not None
        assert r_node.is_recursive()
        assert len(r_node.children) == 3  # A:1, A:2, A:3
        assert not trie.root.is_recursive()

    def test_leaves(self):
        run = paper_run()
        trie = LabelTrie.from_run_nodes(run, run.node_ids())
        r_node = trie.root.child(P(0, 1))
        assert set(r_node.leaves()) == {"a:1", "a:2", "d:1", "d:2", "e:1", "e:2"}
        assert set(trie.root.leaves()) == set(run.node_ids())

    def test_find_and_height(self):
        run = paper_run()
        trie = LabelTrie.from_run_nodes(run, run.node_ids())
        node = trie.find(run.label_of("e:2"))
        assert node is not None
        assert node.payload == ['e:2']
        assert trie.find((P(9, 9),)) is None
        assert trie.height() == 3

    def test_partial_list(self):
        run = paper_run()
        trie = LabelTrie.from_run_nodes(run, ["d:1", "b:3"])
        assert len(trie) == 2
        assert set(trie.root.leaves()) == {"d:1", "b:3"}

    def test_render_smoke(self):
        run = paper_run()
        trie = LabelTrie.from_run_nodes(run, run.node_ids())
        text = trie.render()
        assert '<root>' in text
        assert 'R(0,0)#0' in text

    def test_memo_hooks(self):
        run = paper_run()
        trie = LabelTrie.from_run_nodes(run, run.node_ids())
        r_node = trie.root.child(P(0, 1))
        trie.root.memo[("token", 1)] = ["scratch"]
        r_node.memo["other"] = 42
        trie.clear_memos()
        assert not trie.root.memo
        assert not r_node.memo

    def test_memo_does_not_affect_node_equality(self):
        run = paper_run()
        trie1 = LabelTrie.from_run_nodes(run, ["d:1"])
        trie2 = LabelTrie.from_run_nodes(run, ["d:1"])
        trie1.root.memo["token"] = object()
        assert trie1.root == trie2.root
