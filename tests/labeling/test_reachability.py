"""Tests for the label-based reachability decode against ground truth."""

import itertools

import networkx
import pytest

from repro.datasets.myexperiment import bioaid_specification, qblast_specification
from repro.datasets.paper_example import paper_run, paper_specification
from repro.datasets.synthetic import generate_synthetic_specification
from repro.errors import LabelError
from repro.labeling.labels import ProductionStep
from repro.labeling.reachability import is_reachable
from repro.workflow.derivation import derive_run


def ground_truth_reachability(run):
    graph = networkx.DiGraph()
    graph.add_nodes_from(run.node_ids())
    graph.add_edges_from((edge.source, edge.target) for edge in run.edges)
    return {
        node: networkx.descendants(graph, node) | {node} for node in graph.nodes
    }


def assert_decode_matches(run, node_ids=None):
    spec = run.spec
    truth = ground_truth_reachability(run)
    nodes = list(node_ids or run.node_ids())
    for u, v in itertools.product(nodes, nodes):
        expected = v in truth[u]
        actual = is_reachable(run.label_of(u), run.label_of(v), spec)
        assert actual == expected, f"decode mismatch for ({u}, {v})"


class TestPaperExample:
    def test_all_pairs_match_ground_truth(self):
        assert_decode_matches(paper_run())

    def test_known_facts_from_the_figure(self):
        run = paper_run()
        spec = run.spec
        # d:1 (inside A's expansion) reaches b:1 (the join of W1) ...
        assert is_reachable(run.label_of("d:1"), run.label_of("b:1"), spec)
        # ... but not b:2 (B's branch of the diamond).
        assert not is_reachable(run.label_of("d:1"), run.label_of("b:2"), spec)
        # a:1 reaches every node of the nested recursion.
        for target in ("a:2", "e:1", "e:2", "d:2", "d:1"):
            assert is_reachable(run.label_of("a:1"), run.label_of(target), spec)
        # Deeper chain members do not reach earlier distributors.
        assert not is_reachable(run.label_of("a:2"), run.label_of("a:1"), spec)
        assert not is_reachable(run.label_of("d:2"), run.label_of("a:1"), spec)
        # d:2 (level 2 of the chain) reaches d:1 (level 1 aggregator).
        assert is_reachable(run.label_of("d:2"), run.label_of("d:1"), spec)

    def test_reflexive(self):
        run = paper_run()
        for node in run.node_ids():
            assert is_reachable(run.label_of(node), run.label_of(node), run.spec)

    def test_deep_recursion(self):
        assert_decode_matches(paper_run(recursion_depth=6))


class TestErrorHandling:
    def test_prefix_labels_rejected(self):
        run = paper_run()
        label = run.label_of("a:1")
        with pytest.raises(LabelError):
            is_reachable(label[:1], label, run.spec)

    def test_inconsistent_labels_rejected(self):
        run = paper_run()
        spec = run.spec
        fake = (ProductionStep(3, 0),)  # diverges from (0, 0) with a different production
        with pytest.raises(LabelError):
            is_reachable(run.label_of("c:1"), fake, spec)


class TestRandomRuns:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_paper_spec_random_runs(self, seed):
        run = derive_run(paper_specification(), seed=seed, target_edges=60)
        assert_decode_matches(run)

    @pytest.mark.parametrize("seed", [10, 11])
    def test_synthetic_spec_random_runs(self, seed):
        spec = generate_synthetic_specification(200, seed=seed)
        run = derive_run(spec, seed=seed, target_edges=120)
        assert_decode_matches(run)

    def test_bioaid_run(self):
        spec = bioaid_specification()
        run = derive_run(spec, seed=0, target_edges=150)
        nodes = run.node_ids()[::3]
        assert_decode_matches(run, nodes)

    def test_qblast_run(self):
        spec = qblast_specification()
        run = derive_run(spec, seed=0, target_edges=150)
        nodes = run.node_ids()[::3]
        assert_decode_matches(run, nodes)
