"""Tests for the shared LRU index cache (eviction, statistics, sharing)."""

import threading

import pytest

from repro.core.decomposition import warm_frontier_dfa
from repro.datasets.paper_example import paper_specification
from repro.errors import UnsafeQueryError
from repro.service import IndexCache
from repro.store import IndexStore
from repro.workflow.derivation import derive_run
from repro.workflow.serialization import specification_from_dict, specification_to_dict

SAFE_QUERIES = ["_* e _*", "_*", "A+", "_* b _*", "_* c _*"]


@pytest.fixture
def spec():
    return paper_specification()


class TestLookups:
    def test_equivalent_spellings_share_one_entry(self, spec):
        cache = IndexCache()
        first = cache.index(spec, "_*  e  _*")
        second = cache.index(spec, "(_)* . e . (_)*")
        assert first is second
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.index_builds) == (1, 1, 1)
        assert stats.entries == 1

    def test_safety_and_index_share_the_analysis(self, spec):
        cache = IndexCache()
        report = cache.safety(spec, "_* e _*")
        index = cache.index(spec, "_* e _*")
        assert index.dfa is report.dfa
        assert cache.stats.safety_checks == 1

    def test_unsafe_verdict_is_cached(self, spec):
        cache = IndexCache()
        with pytest.raises(UnsafeQueryError):
            cache.index(spec, "e")
        with pytest.raises(UnsafeQueryError):
            cache.index(spec, "(e)")
        stats = cache.stats
        assert stats.safety_checks == 1
        assert stats.index_builds == 0
        assert stats.hits == 1
        assert not cache.safety(spec, "e").is_safe

    def test_identical_reconstructed_specs_share_entries(self, spec):
        reloaded = specification_from_dict(specification_to_dict(spec))
        assert reloaded is not spec
        assert reloaded.fingerprint == spec.fingerprint
        cache = IndexCache()
        cache.index(spec, "_* e _*")
        cache.index(reloaded, "_* e _*")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_contains_does_not_touch_statistics(self, spec):
        cache = IndexCache()
        assert not cache.contains(spec, "_*")
        cache.index(spec, "_*")
        assert cache.contains(spec, "( _ )*")
        assert cache.stats.lookups == 1


class TestPlans:
    def test_plan_cached_per_canonical_query(self, spec):
        cache = IndexCache()
        first = cache.plan(spec, "_* a _*")
        second = cache.plan(spec, "(_)* . a . (_)*")
        assert first is second
        assert cache.stats.plan_builds == 1
        assert not first.is_fully_safe

    def test_plan_for_safe_query_is_fully_safe(self, spec):
        cache = IndexCache()
        plan = cache.plan(spec, "_* e _*")
        assert plan.is_fully_safe

    def test_planning_warms_safe_subquery_entries(self, spec):
        cache = IndexCache()
        plan = cache.plan(spec, "(A)+ . e")
        assert not plan.is_fully_safe
        # The safe subtree's safety analysis (and index) landed in the cache
        # as a side effect of planning: probing it again is a pure hit.
        hits_before = cache.stats.hits
        cache.index(spec, "A+")
        assert cache.stats.hits == hits_before + 1

    def test_plan_entry_survives_repeated_lookups(self, spec):
        cache = IndexCache()
        plan = cache.plan(spec, "_* a _*")
        cache.safety(spec, "_* a _*")
        assert cache.plan(spec, "_* a _*") is plan
        assert cache.stats.plan_builds == 1

    def test_plan_sticks_even_when_probing_evicts_the_entry(self, spec):
        # Planning probes subtree safety through the cache; in a tightly
        # bounded cache those probes can evict the root query's own entry.
        # The plan must still end up attached to a live entry so repeated
        # requests do not re-plan forever.
        cache = IndexCache(max_entries=2)
        cache.plan(spec, "_* a _*")
        cache.plan(spec, "_* a _*")
        assert cache.stats.plan_builds == 1


class TestBounds:
    def test_entry_bound_evicts_least_recently_used(self, spec):
        cache = IndexCache(max_entries=2)
        cache.index(spec, SAFE_QUERIES[0])
        cache.index(spec, SAFE_QUERIES[1])
        cache.index(spec, SAFE_QUERIES[0])  # touch: queries[1] is now LRU
        cache.index(spec, SAFE_QUERIES[2])  # evicts queries[1]
        assert len(cache) == 2
        assert cache.contains(spec, SAFE_QUERIES[0])
        assert not cache.contains(spec, SAFE_QUERIES[1])
        assert cache.stats.evictions == 1

    def test_evicted_entry_rebuilds_on_next_request(self, spec):
        cache = IndexCache(max_entries=1)
        cache.index(spec, SAFE_QUERIES[0])
        cache.index(spec, SAFE_QUERIES[1])
        cache.index(spec, SAFE_QUERIES[0])
        assert cache.stats.index_builds == 3
        assert cache.stats.misses == 3

    def test_cost_bound(self, spec):
        unbounded = IndexCache()
        for query in SAFE_QUERIES:
            unbounded.index(spec, query)
        total = unbounded.stats.total_cost
        bounded = IndexCache(max_entries=100, max_cost=total // 2)
        for query in SAFE_QUERIES:
            bounded.index(spec, query)
        stats = bounded.stats
        assert stats.total_cost <= total // 2
        assert stats.evictions > 0
        assert len(bounded) >= 1

    def test_oversized_single_entry_is_still_cached(self, spec):
        cache = IndexCache(max_entries=4, max_cost=1)
        cache.index(spec, SAFE_QUERIES[0])
        assert len(cache) == 1
        cache.index(spec, SAFE_QUERIES[0])
        assert cache.stats.hits == 1

    def test_invalid_bounds_are_rejected(self):
        with pytest.raises(ValueError, match="max_entries must be at least 1"):
            IndexCache(max_entries=0)
        with pytest.raises(ValueError, match="max_cost must be positive"):
            IndexCache(max_cost=0)

    def test_clear_keeps_statistics(self, spec):
        cache = IndexCache()
        cache.index(spec, "_*")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1
        assert cache.stats.total_cost == 0


class TestPlanCostAccounting:
    """A plan (and its memoized macro DFAs) attached after insertion must
    count against the ``max_cost`` budget, not ride along for free."""

    def test_plan_attach_grows_entry_cost(self, spec):
        cache = IndexCache()
        cache.safety(spec, "_* a _*")
        base = cache.stats.total_cost
        cache.plan(spec, "_* a _*")
        run = derive_run(spec, seed=0, target_edges=40)
        plan = cache.plan(spec, "_* a _*")
        warm_frontier_dfa(plan, run)
        cache.sync(spec, "_* a _*")
        assert plan.cost() > 0
        assert cache.stats.total_cost >= base + plan.cost()

    def test_plan_attach_triggers_eviction_over_budget(self, spec):
        probe = IndexCache()
        probe.safety(spec, "_* a _*")
        plan = probe.plan(spec, "_* a _*")
        run = derive_run(spec, seed=0, target_edges=40)
        warm_frontier_dfa(plan, run)
        probe.sync(spec, "_* a _*")
        budget = probe.stats.total_cost  # fits the planned entry, barely

        cache = IndexCache(max_entries=100, max_cost=budget)
        for query in SAFE_QUERIES:
            cache.index(spec, query)
        cache.safety(spec, "_* a _*")
        evictions_before = cache.stats.evictions
        plan = cache.plan(spec, "_* a _*")
        warm_frontier_dfa(plan, run)
        cache.sync(spec, "_* a _*")
        stats = cache.stats
        assert stats.evictions > evictions_before
        assert stats.total_cost <= budget

    def test_sync_on_unknown_key_is_a_noop(self, spec):
        cache = IndexCache()
        cache.sync(spec, "_* a _*")
        assert cache.stats.lookups == 0


class TestStoreTier:
    def test_miss_writes_back_and_restores(self, spec, tmp_path):
        store = IndexStore(tmp_path)
        cache = IndexCache(store=store)
        cache.index(spec, "_* e _*")
        assert cache.stats.store_writes == 1
        warm = IndexCache(store=IndexStore(tmp_path))
        warm.index(spec, "_* e _*")
        stats = warm.stats
        assert (stats.store_hits, stats.index_builds, stats.safety_checks) == (1, 0, 0)

    def test_store_survives_memory_eviction(self, spec, tmp_path):
        cache = IndexCache(max_entries=1, store=IndexStore(tmp_path))
        cache.index(spec, SAFE_QUERIES[0])
        cache.index(spec, SAFE_QUERIES[1])  # evicts [0] from memory only
        cache.index(spec, SAFE_QUERIES[0])
        stats = cache.stats
        assert stats.evictions >= 1
        assert stats.index_builds == 2  # second request for [0] was a store hit
        assert stats.store_hits == 1

    def test_attach_store_after_construction(self, spec, tmp_path):
        store = IndexStore(tmp_path)
        cache = IndexCache()
        cache.attach_store(store)
        cache.index(spec, "_*")
        assert cache.stats.store_writes == 1
        with pytest.raises(ValueError, match="different store attached"):
            cache.attach_store(IndexStore(tmp_path / "other"))


class TestStats:
    def test_hit_rate(self, spec):
        cache = IndexCache()
        assert cache.stats.hit_rate == 0.0
        cache.index(spec, "_*")
        cache.index(spec, "_*")
        cache.index(spec, "_*")
        stats = cache.stats
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert "hit_rate" in stats.describe()
        assert "IndexCache" in cache.describe()

    def test_concurrent_requests_build_once(self, spec):
        cache = IndexCache()
        barrier = threading.Barrier(8)
        results = []

        def worker():
            barrier.wait()
            results.append(cache.index(spec, "_* e _*"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(index) for index in results}) == 1
        assert cache.stats.index_builds == 1
